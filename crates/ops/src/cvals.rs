//! CompCert-style machine values, types and operators.
//!
//! This module mirrors the fragment of CompCert's value and type language
//! that the paper's generation pass instantiates the operator interface
//! with (§4.1): integer, boolean and floating-point types — but not
//! pointers, arrays or structs — with the stricter typing rules the paper
//! imposes (booleans are exactly the integers 0 and 1; assignments never
//! cast implicitly).
//!
//! Operator semantics are *partial*, `None` standing for CompCert's
//! undefined results (division by zero, `INT_MIN / -1`, a float-to-int
//! cast out of range, shift-free by construction).

use std::fmt;

/// The scalar types of the Clight instantiation.
///
/// `I8`/`U8`/`I16`/`U16`/`I32`/`U32` are represented at run time by a
/// 32-bit machine integer (CompCert's `Vint`), `I64`/`U64` by a 64-bit one
/// (`Vlong`), and the two float types by `Vsingle`/`Vfloat`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CTy {
    /// Booleans; well-typed values are exactly `0` and `1`.
    Bool,
    /// Signed 8-bit integers.
    I8,
    /// Unsigned 8-bit integers.
    U8,
    /// Signed 16-bit integers.
    I16,
    /// Unsigned 16-bit integers.
    U16,
    /// Signed 32-bit integers (Lustre's `int`).
    I32,
    /// Unsigned 32-bit integers.
    U32,
    /// Signed 64-bit integers.
    I64,
    /// Unsigned 64-bit integers.
    U64,
    /// IEEE-754 single-precision floats.
    F32,
    /// IEEE-754 double-precision floats (Lustre's `real`).
    F64,
}

impl CTy {
    /// All scalar types, for exhaustive testing.
    pub const ALL: [CTy; 11] = [
        CTy::Bool,
        CTy::I8,
        CTy::U8,
        CTy::I16,
        CTy::U16,
        CTy::I32,
        CTy::U32,
        CTy::I64,
        CTy::U64,
        CTy::F32,
        CTy::F64,
    ];

    /// Whether this is an integer type (booleans excluded).
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            CTy::I8 | CTy::U8 | CTy::I16 | CTy::U16 | CTy::I32 | CTy::U32 | CTy::I64 | CTy::U64
        )
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, CTy::F32 | CTy::F64)
    }

    /// Whether this is a numeric (integer or float) type.
    pub fn is_numeric(self) -> bool {
        self.is_integer() || self.is_float()
    }

    /// Whether integer values of this type are interpreted as signed.
    pub fn is_signed(self) -> bool {
        matches!(self, CTy::I8 | CTy::I16 | CTy::I32 | CTy::I64)
    }

    /// Size of the type in bytes, as laid out by the C back end (armv7
    /// ABI: no scalar is larger than 8 bytes).
    pub fn size(self) -> u32 {
        match self {
            CTy::Bool | CTy::I8 | CTy::U8 => 1,
            CTy::I16 | CTy::U16 => 2,
            CTy::I32 | CTy::U32 | CTy::F32 => 4,
            CTy::I64 | CTy::U64 | CTy::F64 => 8,
        }
    }

    /// Alignment of the type in bytes (equal to its size on armv7).
    pub fn align(self) -> u32 {
        self.size()
    }

    /// Width in bits for integer types, `None` for floats.
    pub fn bit_width(self) -> Option<u32> {
        match self {
            CTy::Bool => Some(1),
            CTy::I8 | CTy::U8 => Some(8),
            CTy::I16 | CTy::U16 => Some(16),
            CTy::I32 | CTy::U32 => Some(32),
            CTy::I64 | CTy::U64 => Some(64),
            CTy::F32 | CTy::F64 => None,
        }
    }

    /// The C99 type name used by the pretty printer.
    pub fn c_name(self) -> &'static str {
        match self {
            CTy::Bool => "_Bool",
            CTy::I8 => "int8_t",
            CTy::U8 => "uint8_t",
            CTy::I16 => "int16_t",
            CTy::U16 => "uint16_t",
            CTy::I32 => "int32_t",
            CTy::U32 => "uint32_t",
            CTy::I64 => "int64_t",
            CTy::U64 => "uint64_t",
            CTy::F32 => "float",
            CTy::F64 => "double",
        }
    }
}

impl fmt::Display for CTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CTy::Bool => "bool",
            CTy::I8 => "int8",
            CTy::U8 => "uint8",
            CTy::I16 => "int16",
            CTy::U16 => "uint16",
            CTy::I32 => "int",
            CTy::U32 => "uint32",
            CTy::I64 => "int64",
            CTy::U64 => "uint64",
            CTy::F32 => "float32",
            CTy::F64 => "real",
        };
        f.write_str(s)
    }
}

/// Machine values (CompCert's `Vint`/`Vlong`/`Vsingle`/`Vfloat`).
///
/// Equality is structural, with floats compared *bitwise* so that traces
/// containing NaNs still compare reliably; this matches CompCert's use of
/// binary float representations.
#[derive(Debug, Clone, Copy)]
pub enum CVal {
    /// A 32-bit machine integer, carrier for all integer types of width
    /// ≤ 32 and for booleans.
    Int(i32),
    /// A 64-bit machine integer.
    Long(i64),
    /// A single-precision float.
    Single(f32),
    /// A double-precision float.
    Float(f64),
}

impl PartialEq for CVal {
    fn eq(&self, other: &CVal) -> bool {
        match (self, other) {
            (CVal::Int(a), CVal::Int(b)) => a == b,
            (CVal::Long(a), CVal::Long(b)) => a == b,
            (CVal::Single(a), CVal::Single(b)) => a.to_bits() == b.to_bits(),
            (CVal::Float(a), CVal::Float(b)) => a.to_bits() == b.to_bits(),
            _ => false,
        }
    }
}

impl Eq for CVal {}

impl CVal {
    /// The boolean `true` (the integer 1).
    pub const TRUE: CVal = CVal::Int(1);
    /// The boolean `false` (the integer 0).
    pub const FALSE: CVal = CVal::Int(0);

    /// A 32-bit integer value.
    pub fn int(v: i32) -> CVal {
        CVal::Int(v)
    }

    /// A 64-bit integer value.
    pub fn long(v: i64) -> CVal {
        CVal::Long(v)
    }

    /// A boolean value.
    pub fn bool(b: bool) -> CVal {
        if b {
            CVal::TRUE
        } else {
            CVal::FALSE
        }
    }

    /// A double-precision value.
    pub fn float(v: f64) -> CVal {
        CVal::Float(v)
    }

    /// A single-precision value.
    pub fn single(v: f32) -> CVal {
        CVal::Single(v)
    }

    /// Reads the value as a signed 64-bit integer when it is an integer
    /// carrier (`Int` or `Long`).
    pub fn as_i64(self) -> Option<i64> {
        match self {
            CVal::Int(v) => Some(v as i64),
            CVal::Long(v) => Some(v),
            _ => None,
        }
    }
}

impl fmt::Display for CVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CVal::Int(v) => write!(f, "{v}"),
            CVal::Long(v) => write!(f, "{v}"),
            CVal::Single(v) => write!(f, "{v:?}f"),
            CVal::Float(v) => write!(f, "{v:?}"),
        }
    }
}

/// Truncates/extends a raw 64-bit pattern into a well-typed value of the
/// integer (or boolean) type `ty`.
///
/// This is where two's-complement wrap-around happens: arithmetic is done
/// wide and the result is normalized to the type's width.
///
/// # Panics
///
/// Panics if `ty` is a float type.
pub(crate) fn normalize_int(ty: CTy, raw: i64) -> CVal {
    match ty {
        CTy::Bool => CVal::Int((raw != 0) as i32),
        CTy::I8 => CVal::Int(raw as i8 as i32),
        CTy::U8 => CVal::Int(raw as u8 as i32),
        CTy::I16 => CVal::Int(raw as i16 as i32),
        CTy::U16 => CVal::Int(raw as u16 as i32),
        CTy::I32 => CVal::Int(raw as i32),
        // U32 keeps the 32-bit pattern; the signed carrier is a detail.
        CTy::U32 => CVal::Int(raw as u32 as i32),
        CTy::I64 | CTy::U64 => CVal::Long(raw),
        CTy::F32 | CTy::F64 => panic!("normalize_int on float type {ty}"),
    }
}

/// Reads a well-typed integer value of type `ty` as a signed 64-bit
/// integer respecting the type's signedness.
pub(crate) fn read_signed(ty: CTy, v: CVal) -> Option<i64> {
    match (ty, v) {
        (CTy::Bool, CVal::Int(n)) => Some(n as i64),
        (CTy::I8 | CTy::I16 | CTy::I32, CVal::Int(n)) => Some(n as i64),
        (CTy::U8 | CTy::U16, CVal::Int(n)) => Some(n as i64), // stored zero-extended
        (CTy::U32, CVal::Int(n)) => Some(n as u32 as i64),
        (CTy::I64, CVal::Long(n)) => Some(n),
        (CTy::U64, CVal::Long(n)) => Some(n), // raw pattern; caller reinterprets
        _ => None,
    }
}

/// Unary operators of the Clight instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CUnOp {
    /// Boolean negation (`!` restricted to booleans).
    Not,
    /// Arithmetic negation.
    Neg,
    /// Explicit scalar cast to the given type.
    Cast(CTy),
}

impl fmt::Display for CUnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CUnOp::Not => f.write_str("not"),
            CUnOp::Neg => f.write_str("-"),
            CUnOp::Cast(ty) => write!(f, "(: {ty})"),
        }
    }
}

/// Binary operators of the Clight instantiation.
///
/// Both operands must have the *same* type (the paper requires explicit
/// casts; elaboration never inserts implicit conversions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CBinOp {
    /// Addition (wrap-around on integers).
    Add,
    /// Subtraction (wrap-around on integers).
    Sub,
    /// Multiplication (wrap-around on integers).
    Mul,
    /// Division; undefined on zero divisors and on signed overflow.
    Div,
    /// Remainder; integers only, same undefinedness as division.
    Mod,
    /// Conjunction on booleans, bitwise-and on integers.
    And,
    /// Disjunction on booleans, bitwise-or on integers.
    Or,
    /// Exclusive or on booleans, bitwise-xor on integers.
    Xor,
    /// Equality, any scalar type; result is boolean.
    Eq,
    /// Disequality.
    Ne,
    /// Strictly less, numeric types; result is boolean.
    Lt,
    /// Less or equal.
    Le,
    /// Strictly greater.
    Gt,
    /// Greater or equal.
    Ge,
}

impl CBinOp {
    /// Whether the operator yields a boolean regardless of operand type.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            CBinOp::Eq | CBinOp::Ne | CBinOp::Lt | CBinOp::Le | CBinOp::Gt | CBinOp::Ge
        )
    }
}

impl fmt::Display for CBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CBinOp::Add => "+",
            CBinOp::Sub => "-",
            CBinOp::Mul => "*",
            CBinOp::Div => "/",
            CBinOp::Mod => "%",
            CBinOp::And => "&",
            CBinOp::Or => "|",
            CBinOp::Xor => "^",
            CBinOp::Eq => "==",
            CBinOp::Ne => "!=",
            CBinOp::Lt => "<",
            CBinOp::Le => "<=",
            CBinOp::Gt => ">",
            CBinOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A typed compile-time constant.
///
/// The constructor enforces the typing invariant, so a `CConst` is always
/// well typed by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CConst {
    ty: CTy,
    val: CVal,
}

impl CConst {
    /// Creates a constant, checking `⊢wt val : ty`.
    pub fn new(val: CVal, ty: CTy) -> Option<CConst> {
        if crate::cops::wt(&val, &ty) {
            Some(CConst { ty, val })
        } else {
            None
        }
    }

    /// The constant's type.
    pub fn ty(&self) -> CTy {
        self.ty
    }

    /// The constant's value.
    pub fn val(&self) -> CVal {
        self.val
    }

    /// Shorthand for a 32-bit integer constant.
    pub fn int(v: i32) -> CConst {
        CConst {
            ty: CTy::I32,
            val: CVal::Int(v),
        }
    }

    /// Shorthand for a boolean constant.
    pub fn bool(b: bool) -> CConst {
        CConst {
            ty: CTy::Bool,
            val: CVal::bool(b),
        }
    }

    /// Shorthand for a double-precision constant.
    pub fn float(v: f64) -> CConst {
        CConst {
            ty: CTy::F64,
            val: CVal::Float(v),
        }
    }
}

impl fmt::Display for CConst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ty == CTy::Bool {
            f.write_str(if self.val == CVal::TRUE {
                "true"
            } else {
                "false"
            })
        } else {
            write!(f, "{}", self.val)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_alignments() {
        assert_eq!(CTy::Bool.size(), 1);
        assert_eq!(CTy::I32.size(), 4);
        assert_eq!(CTy::F64.size(), 8);
        for ty in CTy::ALL {
            assert_eq!(ty.size(), ty.align());
            assert!(ty.size().is_power_of_two());
        }
    }

    #[test]
    fn normalization_wraps() {
        assert_eq!(normalize_int(CTy::I8, 130), CVal::Int(-126));
        assert_eq!(normalize_int(CTy::U8, 260), CVal::Int(4));
        assert_eq!(
            normalize_int(CTy::I32, i64::from(i32::MAX) + 1),
            CVal::Int(i32::MIN)
        );
        assert_eq!(normalize_int(CTy::Bool, 42), CVal::Int(1));
    }

    #[test]
    fn float_equality_is_bitwise() {
        let nan1 = CVal::Float(f64::NAN);
        let nan2 = CVal::Float(f64::NAN);
        assert_eq!(nan1, nan2);
        assert_ne!(CVal::Float(0.0), CVal::Float(-0.0));
    }

    #[test]
    fn const_constructor_checks_typing() {
        assert!(CConst::new(CVal::Int(2), CTy::Bool).is_none());
        assert!(CConst::new(CVal::Int(1), CTy::Bool).is_some());
        assert!(CConst::new(CVal::Int(300), CTy::U8).is_none());
        assert!(CConst::new(CVal::Long(1), CTy::I32).is_none());
    }

    #[test]
    fn const_display() {
        assert_eq!(CConst::bool(true).to_string(), "true");
        assert_eq!(CConst::int(-3).to_string(), "-3");
    }
}
