//! The Clight instantiation of the operator interface.

use crate::cvals::{normalize_int, read_signed, CBinOp, CConst, CTy, CUnOp, CVal};
use crate::interface::{Literal, Ops, SurfaceBinOp, SurfaceUnOp};

/// The CompCert/Clight-style instantiation of the [`Ops`] interface.
///
/// This is the instantiation the compiler pipeline uses to produce C code:
/// machine integers with wrap-around, IEEE floats, booleans as 0/1, and
/// partial semantics for the undefined corners of C arithmetic.
///
/// # Examples
///
/// ```
/// use velus_ops::{ClightOps, Ops, CBinOp, CTy, CVal};
///
/// // INT_MIN / -1 is undefined, as in CompCert.
/// let min = CVal::int(i32::MIN);
/// let minus1 = CVal::int(-1);
/// assert_eq!(ClightOps::sem_binop(CBinOp::Div, &min, &CTy::I32, &minus1, &CTy::I32), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ClightOps;

/// The typing judgment `⊢wt v : ty` for machine values.
pub(crate) fn wt(v: &CVal, ty: &CTy) -> bool {
    match (*ty, *v) {
        (CTy::Bool, CVal::Int(n)) => n == 0 || n == 1,
        (CTy::I8, CVal::Int(n)) => n == (n as i8 as i32),
        (CTy::U8, CVal::Int(n)) => n == (n as u8 as i32),
        (CTy::I16, CVal::Int(n)) => n == (n as i16 as i32),
        (CTy::U16, CVal::Int(n)) => n == (n as u16 as i32),
        (CTy::I32 | CTy::U32, CVal::Int(_)) => true,
        (CTy::I64 | CTy::U64, CVal::Long(_)) => true,
        (CTy::F32, CVal::Single(_)) => true,
        (CTy::F64, CVal::Float(_)) => true,
        _ => false,
    }
}

fn float_binop(op: CBinOp, a: f64, b: f64) -> Option<f64> {
    Some(match op {
        CBinOp::Add => a + b,
        CBinOp::Sub => a - b,
        CBinOp::Mul => a * b,
        CBinOp::Div => a / b,
        _ => return None,
    })
}

fn float_cmp(op: CBinOp, a: f64, b: f64) -> Option<bool> {
    Some(match op {
        CBinOp::Eq => a == b,
        CBinOp::Ne => a != b,
        CBinOp::Lt => a < b,
        CBinOp::Le => a <= b,
        CBinOp::Gt => a > b,
        CBinOp::Ge => a >= b,
        _ => return None,
    })
}

fn int_arith(op: CBinOp, ty: CTy, a: i64, b: i64) -> Option<CVal> {
    let width = ty.bit_width().expect("integer type");
    let signed = ty.is_signed();
    let raw = match op {
        CBinOp::Add => a.wrapping_add(b),
        CBinOp::Sub => a.wrapping_sub(b),
        CBinOp::Mul => a.wrapping_mul(b),
        CBinOp::Div | CBinOp::Mod => {
            if signed {
                if b == 0 {
                    return None;
                }
                // Signed overflow (MIN / -1) is undefined at every width.
                let min = if width == 64 {
                    i64::MIN
                } else {
                    -(1i64 << (width - 1))
                };
                if a == min && b == -1 {
                    return None;
                }
                if op == CBinOp::Div {
                    a / b
                } else {
                    a % b
                }
            } else {
                let mask = if width == 64 {
                    u64::MAX
                } else {
                    (1u64 << width) - 1
                };
                let ua = (a as u64) & mask;
                let ub = (b as u64) & mask;
                if ub == 0 {
                    return None;
                }
                (if op == CBinOp::Div { ua / ub } else { ua % ub }) as i64
            }
        }
        CBinOp::And => a & b,
        CBinOp::Or => a | b,
        CBinOp::Xor => a ^ b,
        _ => return None,
    };
    Some(normalize_int(ty, raw))
}

fn int_cmp(op: CBinOp, ty: CTy, a: i64, b: i64) -> Option<bool> {
    let width = ty.bit_width().expect("integer type");
    if ty.is_signed() || ty == CTy::Bool {
        Some(match op {
            CBinOp::Eq => a == b,
            CBinOp::Ne => a != b,
            CBinOp::Lt => a < b,
            CBinOp::Le => a <= b,
            CBinOp::Gt => a > b,
            CBinOp::Ge => a >= b,
            _ => return None,
        })
    } else {
        let mask = if width == 64 {
            u64::MAX
        } else {
            (1u64 << width) - 1
        };
        let ua = (a as u64) & mask;
        let ub = (b as u64) & mask;
        Some(match op {
            CBinOp::Eq => ua == ub,
            CBinOp::Ne => ua != ub,
            CBinOp::Lt => ua < ub,
            CBinOp::Le => ua <= ub,
            CBinOp::Gt => ua > ub,
            CBinOp::Ge => ua >= ub,
            _ => return None,
        })
    }
}

/// Casts a well-typed value of type `from` to type `to`.
///
/// Float-to-integer casts are undefined (`None`) when the truncated value
/// does not fit the target, as in CompCert.
fn cast(v: &CVal, from: CTy, to: CTy) -> Option<CVal> {
    // Read the source as a wide number.
    if from.is_float() {
        let x = match (from, v) {
            (CTy::F32, CVal::Single(s)) => *s as f64,
            (CTy::F64, CVal::Float(d)) => *d,
            _ => return None,
        };
        return match to {
            CTy::F32 => Some(CVal::Single(x as f32)),
            CTy::F64 => Some(CVal::Float(x)),
            CTy::Bool => Some(CVal::bool(x != 0.0)),
            _ => {
                let t = x.trunc();
                if !t.is_finite() {
                    return None;
                }
                if to.is_signed() {
                    let width = to.bit_width()?;
                    let (lo, hi) = if width == 64 {
                        (i64::MIN as f64, i64::MAX as f64)
                    } else {
                        (
                            -((1i64 << (width - 1)) as f64),
                            ((1i64 << (width - 1)) as f64) - 1.0,
                        )
                    };
                    if t < lo || t > hi {
                        return None;
                    }
                    Some(normalize_int(to, t as i64))
                } else {
                    let width = to.bit_width()?;
                    let hi = if width == 64 {
                        u64::MAX as f64
                    } else {
                        ((1u64 << width) as f64) - 1.0
                    };
                    if t < 0.0 || t > hi {
                        return None;
                    }
                    Some(normalize_int(to, t as u64 as i64))
                }
            }
        };
    }
    // Integer (or boolean) source.
    let raw = read_signed(from, *v)?;
    match to {
        CTy::F32 => {
            let x = if from.is_signed() || from == CTy::Bool {
                raw as f32
            } else if from == CTy::U64 {
                (raw as u64) as f32
            } else {
                raw as f32 // u8/u16/u32 read_signed already yields the nonneg value
            };
            Some(CVal::Single(x))
        }
        CTy::F64 => {
            let x = if from.is_signed() || from == CTy::Bool {
                raw as f64
            } else if from == CTy::U64 {
                (raw as u64) as f64
            } else {
                raw as f64
            };
            Some(CVal::Float(x))
        }
        CTy::Bool => Some(CVal::bool(raw != 0)),
        _ => Some(normalize_int(to, raw)),
    }
}

impl Ops for ClightOps {
    type Val = CVal;
    type Ty = CTy;
    type Const = CConst;
    type UnOp = CUnOp;
    type BinOp = CBinOp;

    fn bool_type() -> CTy {
        CTy::Bool
    }

    fn true_val() -> CVal {
        CVal::TRUE
    }

    fn false_val() -> CVal {
        CVal::FALSE
    }

    fn well_typed(v: &CVal, ty: &CTy) -> bool {
        wt(v, ty)
    }

    fn type_of_const(c: &CConst) -> CTy {
        c.ty()
    }

    fn sem_const(c: &CConst) -> CVal {
        c.val()
    }

    fn type_unop(op: CUnOp, ty: &CTy) -> Option<CTy> {
        match op {
            CUnOp::Not => (*ty == CTy::Bool).then_some(CTy::Bool),
            CUnOp::Neg => ty.is_numeric().then_some(*ty),
            CUnOp::Cast(to) => Some(to),
        }
    }

    fn sem_unop(op: CUnOp, v: &CVal, ty: &CTy) -> Option<CVal> {
        if !wt(v, ty) {
            return None;
        }
        match op {
            CUnOp::Not => match v {
                CVal::Int(0) => Some(CVal::TRUE),
                CVal::Int(1) => Some(CVal::FALSE),
                _ => None,
            },
            CUnOp::Neg => match (*ty, *v) {
                (CTy::F32, CVal::Single(x)) => Some(CVal::Single(-x)),
                (CTy::F64, CVal::Float(x)) => Some(CVal::Float(-x)),
                _ if ty.is_integer() => {
                    let raw = read_signed(*ty, *v)?;
                    Some(normalize_int(*ty, raw.wrapping_neg()))
                }
                _ => None,
            },
            CUnOp::Cast(to) => cast(v, *ty, to),
        }
    }

    fn type_binop(op: CBinOp, ty1: &CTy, ty2: &CTy) -> Option<CTy> {
        if ty1 != ty2 {
            return None;
        }
        let ty = *ty1;
        match op {
            CBinOp::Add | CBinOp::Sub | CBinOp::Mul | CBinOp::Div => ty.is_numeric().then_some(ty),
            CBinOp::Mod => ty.is_integer().then_some(ty),
            CBinOp::And | CBinOp::Or | CBinOp::Xor => {
                (ty == CTy::Bool || ty.is_integer()).then_some(ty)
            }
            CBinOp::Eq | CBinOp::Ne => Some(CTy::Bool),
            CBinOp::Lt | CBinOp::Le | CBinOp::Gt | CBinOp::Ge => {
                (ty.is_numeric() || ty == CTy::Bool).then_some(CTy::Bool)
            }
        }
    }

    fn sem_binop(op: CBinOp, v1: &CVal, ty1: &CTy, v2: &CVal, ty2: &CTy) -> Option<CVal> {
        if ty1 != ty2 || !wt(v1, ty1) || !wt(v2, ty2) {
            return None;
        }
        let ty = *ty1;
        match ty {
            CTy::F64 => {
                let (a, b) = match (v1, v2) {
                    (CVal::Float(a), CVal::Float(b)) => (*a, *b),
                    _ => return None,
                };
                if op.is_comparison() {
                    float_cmp(op, a, b).map(CVal::bool)
                } else {
                    float_binop(op, a, b).map(CVal::Float)
                }
            }
            CTy::F32 => {
                let (a, b) = match (v1, v2) {
                    (CVal::Single(a), CVal::Single(b)) => (*a, *b),
                    _ => return None,
                };
                if op.is_comparison() {
                    float_cmp(op, a as f64, b as f64).map(CVal::bool)
                } else {
                    // Single-precision arithmetic rounds at every step.
                    Some(CVal::Single(match op {
                        CBinOp::Add => a + b,
                        CBinOp::Sub => a - b,
                        CBinOp::Mul => a * b,
                        CBinOp::Div => a / b,
                        _ => return None,
                    }))
                }
            }
            CTy::Bool => {
                let a = read_signed(ty, *v1)?;
                let b = read_signed(ty, *v2)?;
                match op {
                    CBinOp::And => Some(CVal::bool(a != 0 && b != 0)),
                    CBinOp::Or => Some(CVal::bool(a != 0 || b != 0)),
                    CBinOp::Xor => Some(CVal::bool((a != 0) ^ (b != 0))),
                    _ if op.is_comparison() => int_cmp(op, ty, a, b).map(CVal::bool),
                    _ => None,
                }
            }
            _ => {
                let a = read_signed(ty, *v1)?;
                let b = read_signed(ty, *v2)?;
                if op.is_comparison() {
                    int_cmp(op, ty, a, b).map(CVal::bool)
                } else {
                    int_arith(op, ty, a, b)
                }
            }
        }
    }

    fn as_bool(v: &CVal) -> Option<bool> {
        match v {
            CVal::Int(0) => Some(false),
            CVal::Int(1) => Some(true),
            _ => None,
        }
    }

    fn default_const(ty: &CTy) -> CConst {
        let val = match ty {
            CTy::F32 => CVal::Single(0.0),
            CTy::F64 => CVal::Float(0.0),
            CTy::I64 | CTy::U64 => CVal::Long(0),
            _ => CVal::Int(0),
        };
        CConst::new(val, *ty).expect("zero is well typed at every scalar type")
    }

    fn type_of_name(name: &str) -> Option<CTy> {
        Some(match name {
            "bool" => CTy::Bool,
            "int" | "int32" => CTy::I32,
            "real" | "double" | "float64" => CTy::F64,
            "float" | "float32" => CTy::F32,
            "int8" => CTy::I8,
            "uint8" => CTy::U8,
            "int16" => CTy::I16,
            "uint16" => CTy::U16,
            "uint32" | "uint" => CTy::U32,
            "int64" => CTy::I64,
            "uint64" => CTy::U64,
            _ => return None,
        })
    }

    fn const_of_literal(lit: &Literal, ty: &CTy) -> Option<CConst> {
        match (lit, *ty) {
            (Literal::Bool(b), CTy::Bool) => Some(CConst::bool(*b)),
            (Literal::Int(i), t) if t.is_integer() => {
                let width = t.bit_width()?;
                let fits = if t.is_signed() {
                    let (lo, hi) = if width == 64 {
                        (i64::MIN as i128, i64::MAX as i128)
                    } else {
                        (-(1i128 << (width - 1)), (1i128 << (width - 1)) - 1)
                    };
                    *i >= lo && *i <= hi
                } else {
                    let hi = if width == 64 {
                        u64::MAX as i128
                    } else {
                        (1i128 << width) - 1
                    };
                    *i >= 0 && *i <= hi
                };
                if !fits {
                    return None;
                }
                CConst::new(normalize_int(t, *i as i64), t)
            }
            (Literal::Int(i), CTy::F64) => CConst::new(CVal::Float(*i as f64), CTy::F64),
            (Literal::Int(i), CTy::F32) => CConst::new(CVal::Single(*i as f32), CTy::F32),
            (Literal::Float(x), CTy::F64) => CConst::new(CVal::Float(*x), CTy::F64),
            (Literal::Float(x), CTy::F32) => CConst::new(CVal::Single(*x as f32), CTy::F32),
            _ => None,
        }
    }

    fn elab_unop(op: SurfaceUnOp, ty: &CTy) -> Option<(CUnOp, CTy)> {
        match op {
            SurfaceUnOp::Not => (*ty == CTy::Bool).then_some((CUnOp::Not, CTy::Bool)),
            SurfaceUnOp::Neg => ty.is_numeric().then_some((CUnOp::Neg, *ty)),
        }
    }

    fn elab_binop(op: SurfaceBinOp, ty1: &CTy, ty2: &CTy) -> Option<(CBinOp, CTy)> {
        if ty1 != ty2 {
            return None;
        }
        let ty = *ty1;
        let cop = match op {
            SurfaceBinOp::Add => CBinOp::Add,
            SurfaceBinOp::Sub => CBinOp::Sub,
            SurfaceBinOp::Mul => CBinOp::Mul,
            SurfaceBinOp::Div => CBinOp::Div,
            SurfaceBinOp::Mod => CBinOp::Mod,
            // The surface boolean connectives are boolean-only.
            SurfaceBinOp::And => {
                return (ty == CTy::Bool).then_some((CBinOp::And, CTy::Bool));
            }
            SurfaceBinOp::Or => {
                return (ty == CTy::Bool).then_some((CBinOp::Or, CTy::Bool));
            }
            SurfaceBinOp::Xor => {
                return (ty == CTy::Bool).then_some((CBinOp::Xor, CTy::Bool));
            }
            SurfaceBinOp::Eq => CBinOp::Eq,
            SurfaceBinOp::Ne => CBinOp::Ne,
            SurfaceBinOp::Lt => CBinOp::Lt,
            SurfaceBinOp::Le => CBinOp::Le,
            SurfaceBinOp::Gt => CBinOp::Gt,
            SurfaceBinOp::Ge => CBinOp::Ge,
        };
        let rty = <ClightOps as Ops>::type_binop(cop, ty1, ty2)?;
        Some((cop, rty))
    }

    fn elab_cast(from: &CTy, to: &CTy) -> Option<CUnOp> {
        // All scalar-to-scalar casts are expressible.
        let _ = from;
        Some(CUnOp::Cast(*to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn booleans_are_zero_and_one() {
        assert_ne!(ClightOps::true_val(), ClightOps::false_val());
        assert!(wt(&ClightOps::true_val(), &CTy::Bool));
        assert!(wt(&ClightOps::false_val(), &CTy::Bool));
        assert!(!wt(&CVal::Int(2), &CTy::Bool));
    }

    #[test]
    fn integer_arithmetic_wraps() {
        let max = CVal::int(i32::MAX);
        let one = CVal::int(1);
        let r = ClightOps::sem_binop(CBinOp::Add, &max, &CTy::I32, &one, &CTy::I32).unwrap();
        assert_eq!(r, CVal::int(i32::MIN));
    }

    #[test]
    fn division_partiality() {
        let z = CVal::int(0);
        let x = CVal::int(7);
        assert_eq!(
            ClightOps::sem_binop(CBinOp::Div, &x, &CTy::I32, &z, &CTy::I32),
            None
        );
        assert_eq!(
            ClightOps::sem_binop(CBinOp::Mod, &x, &CTy::I32, &z, &CTy::I32),
            None
        );
        let min = CVal::int(i32::MIN);
        let m1 = CVal::int(-1);
        assert_eq!(
            ClightOps::sem_binop(CBinOp::Div, &min, &CTy::I32, &m1, &CTy::I32),
            None
        );
    }

    #[test]
    fn unsigned_comparison_differs_from_signed() {
        let a = CVal::int(-1); // 0xFFFFFFFF as u32
        let b = CVal::int(1);
        let signed = ClightOps::sem_binop(CBinOp::Lt, &a, &CTy::I32, &b, &CTy::I32).unwrap();
        let unsigned = ClightOps::sem_binop(CBinOp::Lt, &a, &CTy::U32, &b, &CTy::U32).unwrap();
        assert_eq!(signed, CVal::TRUE);
        assert_eq!(unsigned, CVal::FALSE);
    }

    #[test]
    fn mixed_types_are_rejected() {
        assert_eq!(
            ClightOps::type_binop(CBinOp::Add, &CTy::I32, &CTy::I64),
            None
        );
        let a = CVal::int(1);
        let b = CVal::long(1);
        assert_eq!(
            ClightOps::sem_binop(CBinOp::Add, &a, &CTy::I32, &b, &CTy::I64),
            None
        );
    }

    #[test]
    fn casts() {
        // int -> int8 truncates with sign extension.
        let v = ClightOps::sem_unop(CUnOp::Cast(CTy::I8), &CVal::int(200), &CTy::I32).unwrap();
        assert_eq!(v, CVal::Int(-56));
        // float -> int truncates toward zero.
        let v = ClightOps::sem_unop(CUnOp::Cast(CTy::I32), &CVal::float(-2.9), &CTy::F64).unwrap();
        assert_eq!(v, CVal::Int(-2));
        // out-of-range float -> int is undefined.
        assert_eq!(
            ClightOps::sem_unop(CUnOp::Cast(CTy::I32), &CVal::float(1e20), &CTy::F64),
            None
        );
        // anything -> bool tests against zero.
        let v = ClightOps::sem_unop(CUnOp::Cast(CTy::Bool), &CVal::int(7), &CTy::I32).unwrap();
        assert_eq!(v, CVal::TRUE);
    }

    #[test]
    fn boolean_connectives_are_strict_on_booleans() {
        let t = CVal::TRUE;
        let f = CVal::FALSE;
        let and = ClightOps::sem_binop(CBinOp::And, &t, &CTy::Bool, &f, &CTy::Bool).unwrap();
        assert_eq!(and, CVal::FALSE);
        let xor = ClightOps::sem_binop(CBinOp::Xor, &t, &CTy::Bool, &f, &CTy::Bool).unwrap();
        assert_eq!(xor, CVal::TRUE);
    }

    #[test]
    fn literal_elaboration_checks_ranges() {
        assert!(ClightOps::const_of_literal(&Literal::Int(255), &CTy::U8).is_some());
        assert!(ClightOps::const_of_literal(&Literal::Int(256), &CTy::U8).is_none());
        assert!(ClightOps::const_of_literal(&Literal::Int(-1), &CTy::U32).is_none());
        assert!(ClightOps::const_of_literal(&Literal::Float(1.5), &CTy::I32).is_none());
        assert!(ClightOps::const_of_literal(&Literal::Int(3), &CTy::F64).is_some());
    }

    #[test]
    fn surface_elaboration_dispatches_on_type() {
        assert_eq!(
            ClightOps::elab_binop(SurfaceBinOp::Add, &CTy::I32, &CTy::I32),
            Some((CBinOp::Add, CTy::I32))
        );
        assert_eq!(
            ClightOps::elab_binop(SurfaceBinOp::And, &CTy::I32, &CTy::I32),
            None
        );
        assert_eq!(
            ClightOps::elab_binop(SurfaceBinOp::Lt, &CTy::F64, &CTy::F64),
            Some((CBinOp::Lt, CTy::Bool))
        );
        assert_eq!(ClightOps::elab_unop(SurfaceUnOp::Not, &CTy::I32), None);
    }

    #[test]
    fn defaults_are_well_typed() {
        for ty in CTy::ALL {
            let c = ClightOps::default_const(&ty);
            assert_eq!(ClightOps::type_of_const(&c), ty);
            assert!(wt(&ClightOps::sem_const(&c), &ty));
        }
    }
}
