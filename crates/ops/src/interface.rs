//! The operator interface (paper Fig. 10) and the surface-syntax operators
//! that the front end maps onto it.

use std::fmt;
use std::hash::Hash;

/// A literal as it appears in Lustre source text, before elaboration
/// assigns it a machine type.
///
/// The front end is parametric in the operator interface, so it cannot
/// construct `O::Const` values directly; it hands literals to
/// [`Ops::const_of_literal`] together with the expected type.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Literal {
    /// A boolean literal: `true` or `false`.
    Bool(bool),
    /// An integer literal. The value is kept wide; the operator interface
    /// decides whether it fits the expected type.
    Int(i128),
    /// A floating-point literal.
    Float(f64),
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
        }
    }
}

/// Unary operators of the Lustre surface syntax.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SurfaceUnOp {
    /// Boolean negation `not`.
    Not,
    /// Arithmetic negation `-`.
    Neg,
}

impl fmt::Display for SurfaceUnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SurfaceUnOp::Not => f.write_str("not"),
            SurfaceUnOp::Neg => f.write_str("-"),
        }
    }
}

/// Binary operators of the Lustre surface syntax.
///
/// Both operands of the boolean connectives are always evaluated in a
/// dataflow language, so there is no short-circuit distinction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SurfaceBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` on reals, `div` on integers (elaboration dispatches on type).
    Div,
    /// `mod`
    Mod,
    /// `and`
    And,
    /// `or`
    Or,
    /// `xor`
    Xor,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for SurfaceBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SurfaceBinOp::Add => "+",
            SurfaceBinOp::Sub => "-",
            SurfaceBinOp::Mul => "*",
            SurfaceBinOp::Div => "/",
            SurfaceBinOp::Mod => "mod",
            SurfaceBinOp::And => "and",
            SurfaceBinOp::Or => "or",
            SurfaceBinOp::Xor => "xor",
            SurfaceBinOp::Eq => "=",
            SurfaceBinOp::Ne => "<>",
            SurfaceBinOp::Lt => "<",
            SurfaceBinOp::Le => "<=",
            SurfaceBinOp::Gt => ">",
            SurfaceBinOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// The abstract operator interface (paper Fig. 10).
///
/// An implementation supplies the value domain, the type system fragment,
/// constants and operators together with their (partial) typing and
/// semantic functions. All IRs and passes up to (and excluding) Clight
/// generation are parametric in this trait, exactly like the Coq functors
/// of the paper.
///
/// # Required properties
///
/// Implementations must satisfy the interface laws stated in the paper
/// (checked by property tests for the instantiations shipped here):
///
/// * `true_val() != false_val()`;
/// * `well_typed(true_val(), bool_type())` and likewise for `false`;
/// * `well_typed(sem_const(c), type_of_const(c))` for every constant `c`;
/// * *type preservation*: if `type_unop(op, ty) = Some(ty')` and
///   `well_typed(v, ty)` and `sem_unop(op, v, ty) = Some(v')` then
///   `well_typed(v', ty')`, and the analogous property for binary
///   operators.
///
/// Semantic functions are partial: `None` models an undefined result (the
/// compiled program would exhibit undefined behaviour). The compiler's
/// correctness argument requires source programs to apply operators only
/// within their domain; the dataflow interpreter reports such applications
/// as runtime errors.
///
/// Implementors are zero-sized marker types (the interface is a bundle of
/// associated items), hence the blanket `Copy + Default` supertraits.
pub trait Ops: Copy + Default + PartialEq + fmt::Debug + Sized + 'static {
    /// Machine values.
    type Val: Clone + PartialEq + fmt::Debug + fmt::Display;
    /// Value types.
    type Ty: Clone + Eq + Hash + fmt::Debug + fmt::Display;
    /// Compile-time constants.
    type Const: Clone + PartialEq + fmt::Debug + fmt::Display;
    /// Unary operators.
    type UnOp: Copy + PartialEq + fmt::Debug + fmt::Display;
    /// Binary operators.
    type BinOp: Copy + PartialEq + fmt::Debug + fmt::Display;

    /// The distinguished boolean type, required to define the semantics of
    /// sampling, merges, muxes and clocks.
    fn bool_type() -> Self::Ty;
    /// The value of `true`.
    fn true_val() -> Self::Val;
    /// The value of `false`.
    fn false_val() -> Self::Val;

    /// The typing judgment `⊢wt v : ty`.
    fn well_typed(v: &Self::Val, ty: &Self::Ty) -> bool;
    /// The type of a constant.
    fn type_of_const(c: &Self::Const) -> Self::Ty;
    /// The value of a constant.
    fn sem_const(c: &Self::Const) -> Self::Val;

    /// Result type of a unary operator, if the application is well typed.
    fn type_unop(op: Self::UnOp, ty: &Self::Ty) -> Option<Self::Ty>;
    /// Value of a unary operator application, `None` when undefined.
    fn sem_unop(op: Self::UnOp, v: &Self::Val, ty: &Self::Ty) -> Option<Self::Val>;
    /// Result type of a binary operator, if the application is well typed.
    fn type_binop(op: Self::BinOp, ty1: &Self::Ty, ty2: &Self::Ty) -> Option<Self::Ty>;
    /// Value of a binary operator application, `None` when undefined.
    fn sem_binop(
        op: Self::BinOp,
        v1: &Self::Val,
        ty1: &Self::Ty,
        v2: &Self::Val,
        ty2: &Self::Ty,
    ) -> Option<Self::Val>;

    /// Interprets a value of the boolean type as a Rust `bool`.
    ///
    /// Returns `None` if `v` is not a well-typed boolean. Used by the
    /// semantics of clocks, merges and conditionals.
    fn as_bool(v: &Self::Val) -> Option<bool>;

    /// A default (zero-like) constant of type `ty`, used to desugar
    /// uninitialized delays (`pre e` becomes `default fby e`).
    fn default_const(ty: &Self::Ty) -> Self::Const;

    /// Resolves a source-level type name (`int`, `bool`, `real`, …).
    fn type_of_name(name: &str) -> Option<Self::Ty>;

    /// Elaborates a literal at the given expected type.
    ///
    /// Returns `None` when the literal does not fit the type (e.g. an
    /// out-of-range integer or a float literal at integer type).
    fn const_of_literal(lit: &Literal, ty: &Self::Ty) -> Option<Self::Const>;

    /// Maps a surface unary operator onto the interface at argument type
    /// `ty`. Returns the interface operator and its result type.
    fn elab_unop(op: SurfaceUnOp, ty: &Self::Ty) -> Option<(Self::UnOp, Self::Ty)>;

    /// Maps a surface binary operator onto the interface at the given
    /// argument types. Returns the interface operator and its result type.
    fn elab_binop(
        op: SurfaceBinOp,
        ty1: &Self::Ty,
        ty2: &Self::Ty,
    ) -> Option<(Self::BinOp, Self::Ty)>;

    /// Produces the unary operator implementing an explicit cast from
    /// `from` to `to`, if the instantiation supports one. The default
    /// supports no casts (suitable for minimal instantiations).
    fn elab_cast(from: &Self::Ty, to: &Self::Ty) -> Option<Self::UnOp> {
        let _ = (from, to);
        None
    }
}
