//! A deliberately small second instantiation of the operator interface.
//!
//! The paper emphasizes that the front end "can be instantiated to any
//! suitable language or for different variations of a given language"
//! (§4.1). `I64Ops` — two types (`bool`, `int`), `i64` arithmetic without
//! partiality except division by zero — exists to keep that claim honest:
//! the test suites run the N-Lustre and Obc interpreters over it.

use std::fmt;

use crate::interface::{Literal, Ops, SurfaceBinOp, SurfaceUnOp};

/// Types of the toy instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToyTy {
    /// Booleans.
    Bool,
    /// 64-bit signed integers.
    Int,
}

impl fmt::Display for ToyTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToyTy::Bool => f.write_str("bool"),
            ToyTy::Int => f.write_str("int"),
        }
    }
}

/// Values of the toy instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToyVal {
    /// A boolean.
    Bool(bool),
    /// A 64-bit integer.
    Int(i64),
}

impl fmt::Display for ToyVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToyVal::Bool(b) => write!(f, "{b}"),
            ToyVal::Int(i) => write!(f, "{i}"),
        }
    }
}

/// Constants of the toy instantiation (identical to values).
pub type ToyConst = ToyVal;

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToyUnOp {
    /// Boolean negation.
    Not,
    /// Integer negation.
    Neg,
}

impl fmt::Display for ToyUnOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ToyUnOp::Not => f.write_str("not"),
            ToyUnOp::Neg => f.write_str("-"),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ToyBinOp {
    /// Integer addition (wrapping).
    Add,
    /// Integer subtraction (wrapping).
    Sub,
    /// Integer multiplication (wrapping).
    Mul,
    /// Integer division (undefined on zero).
    Div,
    /// Boolean conjunction.
    And,
    /// Boolean disjunction.
    Or,
    /// Equality at either type.
    Eq,
    /// Integer strict comparison.
    Lt,
}

impl fmt::Display for ToyBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ToyBinOp::Add => "+",
            ToyBinOp::Sub => "-",
            ToyBinOp::Mul => "*",
            ToyBinOp::Div => "/",
            ToyBinOp::And => "and",
            ToyBinOp::Or => "or",
            ToyBinOp::Eq => "=",
            ToyBinOp::Lt => "<",
        };
        f.write_str(s)
    }
}

/// The toy instantiation of [`Ops`]; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct I64Ops;

impl Ops for I64Ops {
    type Val = ToyVal;
    type Ty = ToyTy;
    type Const = ToyConst;
    type UnOp = ToyUnOp;
    type BinOp = ToyBinOp;

    fn bool_type() -> ToyTy {
        ToyTy::Bool
    }

    fn true_val() -> ToyVal {
        ToyVal::Bool(true)
    }

    fn false_val() -> ToyVal {
        ToyVal::Bool(false)
    }

    fn well_typed(v: &ToyVal, ty: &ToyTy) -> bool {
        matches!(
            (v, ty),
            (ToyVal::Bool(_), ToyTy::Bool) | (ToyVal::Int(_), ToyTy::Int)
        )
    }

    fn type_of_const(c: &ToyConst) -> ToyTy {
        match c {
            ToyVal::Bool(_) => ToyTy::Bool,
            ToyVal::Int(_) => ToyTy::Int,
        }
    }

    fn sem_const(c: &ToyConst) -> ToyVal {
        *c
    }

    fn type_unop(op: ToyUnOp, ty: &ToyTy) -> Option<ToyTy> {
        match (op, ty) {
            (ToyUnOp::Not, ToyTy::Bool) => Some(ToyTy::Bool),
            (ToyUnOp::Neg, ToyTy::Int) => Some(ToyTy::Int),
            _ => None,
        }
    }

    fn sem_unop(op: ToyUnOp, v: &ToyVal, _ty: &ToyTy) -> Option<ToyVal> {
        match (op, v) {
            (ToyUnOp::Not, ToyVal::Bool(b)) => Some(ToyVal::Bool(!b)),
            (ToyUnOp::Neg, ToyVal::Int(i)) => Some(ToyVal::Int(i.wrapping_neg())),
            _ => None,
        }
    }

    fn type_binop(op: ToyBinOp, ty1: &ToyTy, ty2: &ToyTy) -> Option<ToyTy> {
        if ty1 != ty2 {
            return None;
        }
        match (op, ty1) {
            (ToyBinOp::Add | ToyBinOp::Sub | ToyBinOp::Mul | ToyBinOp::Div, ToyTy::Int) => {
                Some(ToyTy::Int)
            }
            (ToyBinOp::And | ToyBinOp::Or, ToyTy::Bool) => Some(ToyTy::Bool),
            (ToyBinOp::Eq, _) => Some(ToyTy::Bool),
            (ToyBinOp::Lt, ToyTy::Int) => Some(ToyTy::Bool),
            _ => None,
        }
    }

    fn sem_binop(
        op: ToyBinOp,
        v1: &ToyVal,
        _ty1: &ToyTy,
        v2: &ToyVal,
        _ty2: &ToyTy,
    ) -> Option<ToyVal> {
        match (op, v1, v2) {
            (ToyBinOp::Add, ToyVal::Int(a), ToyVal::Int(b)) => {
                Some(ToyVal::Int(a.wrapping_add(*b)))
            }
            (ToyBinOp::Sub, ToyVal::Int(a), ToyVal::Int(b)) => {
                Some(ToyVal::Int(a.wrapping_sub(*b)))
            }
            (ToyBinOp::Mul, ToyVal::Int(a), ToyVal::Int(b)) => {
                Some(ToyVal::Int(a.wrapping_mul(*b)))
            }
            (ToyBinOp::Div, ToyVal::Int(a), ToyVal::Int(b)) => {
                if *b == 0 || (*a == i64::MIN && *b == -1) {
                    None
                } else {
                    Some(ToyVal::Int(a / b))
                }
            }
            (ToyBinOp::And, ToyVal::Bool(a), ToyVal::Bool(b)) => Some(ToyVal::Bool(*a && *b)),
            (ToyBinOp::Or, ToyVal::Bool(a), ToyVal::Bool(b)) => Some(ToyVal::Bool(*a || *b)),
            (ToyBinOp::Eq, a, b) => Some(ToyVal::Bool(a == b)),
            (ToyBinOp::Lt, ToyVal::Int(a), ToyVal::Int(b)) => Some(ToyVal::Bool(a < b)),
            _ => None,
        }
    }

    fn as_bool(v: &ToyVal) -> Option<bool> {
        match v {
            ToyVal::Bool(b) => Some(*b),
            ToyVal::Int(_) => None,
        }
    }

    fn default_const(ty: &ToyTy) -> ToyConst {
        match ty {
            ToyTy::Bool => ToyVal::Bool(false),
            ToyTy::Int => ToyVal::Int(0),
        }
    }

    fn type_of_name(name: &str) -> Option<ToyTy> {
        match name {
            "bool" => Some(ToyTy::Bool),
            "int" => Some(ToyTy::Int),
            _ => None,
        }
    }

    fn const_of_literal(lit: &Literal, ty: &ToyTy) -> Option<ToyConst> {
        match (lit, ty) {
            (Literal::Bool(b), ToyTy::Bool) => Some(ToyVal::Bool(*b)),
            (Literal::Int(i), ToyTy::Int) => i64::try_from(*i).ok().map(ToyVal::Int),
            _ => None,
        }
    }

    fn elab_unop(op: SurfaceUnOp, ty: &ToyTy) -> Option<(ToyUnOp, ToyTy)> {
        let o = match op {
            SurfaceUnOp::Not => ToyUnOp::Not,
            SurfaceUnOp::Neg => ToyUnOp::Neg,
        };
        Self::type_unop(o, ty).map(|t| (o, t))
    }

    fn elab_binop(op: SurfaceBinOp, ty1: &ToyTy, ty2: &ToyTy) -> Option<(ToyBinOp, ToyTy)> {
        let o = match op {
            SurfaceBinOp::Add => ToyBinOp::Add,
            SurfaceBinOp::Sub => ToyBinOp::Sub,
            SurfaceBinOp::Mul => ToyBinOp::Mul,
            SurfaceBinOp::Div => ToyBinOp::Div,
            SurfaceBinOp::And => ToyBinOp::And,
            SurfaceBinOp::Or => ToyBinOp::Or,
            SurfaceBinOp::Eq => ToyBinOp::Eq,
            SurfaceBinOp::Lt => ToyBinOp::Lt,
            _ => return None,
        };
        Self::type_binop(o, ty1, ty2).map(|t| (o, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interface_laws_hold() {
        assert_ne!(I64Ops::true_val(), I64Ops::false_val());
        assert!(I64Ops::well_typed(
            &I64Ops::true_val(),
            &I64Ops::bool_type()
        ));
        let c = ToyVal::Int(42);
        assert!(I64Ops::well_typed(
            &I64Ops::sem_const(&c),
            &I64Ops::type_of_const(&c)
        ));
    }

    #[test]
    fn division_by_zero_is_undefined() {
        let a = ToyVal::Int(1);
        let z = ToyVal::Int(0);
        assert_eq!(
            I64Ops::sem_binop(ToyBinOp::Div, &a, &ToyTy::Int, &z, &ToyTy::Int),
            None
        );
    }
}
