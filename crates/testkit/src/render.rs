//! Rendering N-Lustre programs back to parseable Lustre source.
//!
//! The N-Lustre `Display` impls print the *internal* notation (clocks on
//! the equals sign, C-style operators); this module prints the *surface*
//! syntax the front end accepts, so generated and shrunk programs can be
//! written out as `.lus` reproducers and fed back through the whole
//! pipeline. Operators are mapped to their surface spellings (`and`,
//! `or`, `xor`, `=`, `<>`, `mod`), sampling prints as postfix
//! `when [not] x`, and declaration clocks print as `when [not] x`
//! annotation chains.
//!
//! The renderer is total on the fragment the generators and the shrinker
//! produce (everything expressible in surface Lustre). The only
//! constructs with no surface spelling are bitwise integer `and`/`or`/
//! `xor` — which the front end cannot produce, so they cannot occur in a
//! round-tripped program.

use std::fmt::Write as _;

use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program, VarDecl};
use velus_nlustre::clock::Clock;
use velus_ops::{CBinOp, CUnOp, ClightOps};

fn binop_surface(op: CBinOp) -> &'static str {
    match op {
        CBinOp::Add => "+",
        CBinOp::Sub => "-",
        CBinOp::Mul => "*",
        CBinOp::Div => "/",
        CBinOp::Mod => "mod",
        CBinOp::And => "and",
        CBinOp::Or => "or",
        CBinOp::Xor => "xor",
        CBinOp::Eq => "=",
        CBinOp::Ne => "<>",
        CBinOp::Lt => "<",
        CBinOp::Le => "<=",
        CBinOp::Gt => ">",
        CBinOp::Ge => ">=",
    }
}

fn expr_into(e: &Expr<ClightOps>, out: &mut String) {
    match e {
        Expr::Var(x, _) => {
            let _ = write!(out, "{x}");
        }
        Expr::Const(c) => {
            let _ = write!(out, "{c}");
        }
        Expr::Unop(CUnOp::Cast(ty), e, _) => {
            let _ = write!(out, "{ty}(");
            expr_into(e, out);
            out.push(')');
        }
        Expr::Unop(op, e, _) => {
            let _ = write!(out, "({op} ");
            expr_into(e, out);
            out.push(')');
        }
        Expr::Binop(op, a, b, _) => {
            out.push('(');
            expr_into(a, out);
            let _ = write!(out, " {} ", binop_surface(*op));
            expr_into(b, out);
            out.push(')');
        }
        Expr::When(e, x, polarity) => {
            out.push('(');
            expr_into(e, out);
            if *polarity {
                let _ = write!(out, " when {x})");
            } else {
                let _ = write!(out, " when not {x})");
            }
        }
    }
}

fn cexpr_into(ce: &CExpr<ClightOps>, out: &mut String) {
    match ce {
        CExpr::Merge(x, t, e) => {
            let _ = write!(out, "merge {x} (");
            cexpr_into(t, out);
            out.push_str(") (");
            cexpr_into(e, out);
            out.push(')');
        }
        CExpr::If(c, t, e) => {
            out.push_str("if ");
            expr_into(c, out);
            out.push_str(" then ");
            cexpr_into(t, out);
            out.push_str(" else ");
            cexpr_into(e, out);
        }
        CExpr::Expr(e) => expr_into(e, out),
    }
}

/// The declaration-clock annotation chain: `" when x when not y"`.
fn clock_annotation(ck: &Clock, out: &mut String) {
    if let Clock::On(parent, x, polarity) = ck {
        clock_annotation(parent, out);
        let _ = write!(out, " when {}{x}", if *polarity { "" } else { "not " });
    }
}

fn decls_into(ds: &[VarDecl<ClightOps>], out: &mut String) {
    for (i, d) in ds.iter().enumerate() {
        if i > 0 {
            out.push_str("; ");
        }
        let _ = write!(out, "{}: {}", d.name, d.ty);
        clock_annotation(&d.ck, out);
    }
}

/// Renders one node in surface syntax.
pub fn node_source(node: &Node<ClightOps>) -> String {
    let mut out = String::new();
    node_into(node, &mut out);
    out
}

fn node_into(node: &Node<ClightOps>, out: &mut String) {
    let _ = write!(out, "node {}(", node.name);
    decls_into(&node.inputs, out);
    out.push_str(") returns (");
    decls_into(&node.outputs, out);
    out.push_str(")\n");
    if !node.locals.is_empty() {
        out.push_str("var ");
        decls_into(&node.locals, out);
        out.push_str(";\n");
    }
    out.push_str("let\n");
    for eq in &node.eqs {
        out.push_str("  ");
        match eq {
            Equation::Def { x, rhs, .. } => {
                let _ = write!(out, "{x} = ");
                cexpr_into(rhs, out);
            }
            Equation::Fby { x, init, rhs, .. } => {
                let _ = write!(out, "{x} = {init} fby ");
                expr_into(rhs, out);
            }
            Equation::Call {
                xs, node: f, args, ..
            } => {
                if xs.len() == 1 {
                    let _ = write!(out, "{} = {f}(", xs[0]);
                } else {
                    out.push('(');
                    for (i, x) in xs.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{x}");
                    }
                    let _ = write!(out, ") = {f}(");
                }
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    expr_into(a, out);
                }
                out.push(')');
            }
        }
        out.push_str(";\n");
    }
    out.push_str("tel\n");
}

/// Renders a whole program as surface Lustre source, nodes in their
/// (dependency) order.
pub fn lustre_source(prog: &Program<ClightOps>) -> String {
    let mut out = String::new();
    for (i, node) in prog.nodes.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        node_into(node, &mut out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gen_program, GenConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Every generated program — including clock-heavy and float ones —
    /// renders to source the front end accepts, and the elaborated
    /// result is well-formed again.
    #[test]
    fn generated_programs_round_trip_through_the_surface_syntax() {
        let configs = [
            GenConfig::default(),
            GenConfig {
                nodes: 4,
                eqs_per_node: 8,
                expr_depth: 4,
                subclock_pct: 70,
                ..GenConfig::default()
            },
            GenConfig {
                floats: true,
                ..GenConfig::default()
            },
        ];
        for (k, cfg) in configs.iter().enumerate() {
            for seed in 0..25u64 {
                let mut rng = StdRng::seed_from_u64(seed + 7000 * k as u64);
                let prog = gen_program(&mut rng, cfg);
                let root = prog.nodes.last().expect("non-empty").name;
                let src = lustre_source(&prog);
                let fe = velus_lustre::frontend::<velus_ops::ClightOps>(&src).unwrap_or_else(|e| {
                    panic!("cfg {k} seed {seed}: frontend rejected:\n{src}\n{e}")
                });
                assert!(
                    fe.program.node(root).is_some(),
                    "cfg {k} seed {seed}: root {root} lost in round trip\n{src}"
                );
            }
        }
    }
}
