//! The differential-semantics campaign engine.
//!
//! One seed = one experiment on the paper's end-to-end theorem: generate
//! a random well-formed program ([`crate::gen`]), optionally corrupt its
//! source ([`crate::mutate`]), compile it, and run the full oracle set —
//! unscheduled vs scheduled dataflow, memory semantics with `MemCorres`,
//! Obc unfused and fused, step-driven Clight with `staterep`, the
//! volatile trace of the generated `main`
//! ([`velus::run_oracles`]), plus a campaign-level oracle comparing
//! staged pass-by-pass compilation against the one-shot pipeline.
//!
//! On a divergence or a panic the engine **shrinks** the failing case —
//! deleting nodes, inputs, and equations, simplifying expressions, and
//! truncating the input prefix, re-checking the oracle after every step —
//! and packages a [`Reproducer`]: the minimized `.lus` source plus a JSON
//! record (seed, generator configuration, divergence point, oracle pair,
//! exact input streams). Records live in `tests/diff_seeds/` and are
//! replayed as regressions by `tests/diff_seeds.rs`.
//!
//! The proptest suite (`tests/differential.rs`), the campaign CLI
//! (`velus-bench --bin diff`), and CI all drive this one implementation.
//!
//! # Float policy
//!
//! Floats are compared **bit-exactly**: [`velus_ops::CVal`] equality is
//! `to_bits()` equality, and every level of the chain evaluates the same
//! `f64`/`f32` operations in the same order, so any bit difference is a
//! genuine semantic divergence, not rounding noise. Records carry
//! `"float_policy": "bit-exact"` and serialize float inputs as hex bit
//! patterns so replay is exact.

use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use velus::passes::{
    CheckPass, ElaboratePass, EmitInput, EmitPass, FrontendInput, FusePass, GenerateInput,
    GeneratePass, PassManager, SchedulePass, TranslatePass,
};
use velus::{Compiled, TestIo, VelusError};
use velus_common::{Ident, SpanMap};
use velus_nlustre::ast::{CExpr, Equation, Expr, Program};
use velus_nlustre::streams::{SVal, StreamSet};
use velus_ops::{CConst, CTy, CVal, ClightOps, Literal, Ops};

use crate::gen::{gen_inputs, gen_program, GenConfig};
use crate::json::{escape_into, Json};
use crate::mutate::mutate;
use crate::render::lustre_source;

/// The record-format version written into every JSON reproducer.
pub const RECORD_FORMAT: u64 = 1;

/// The float comparison policy of the whole campaign (see the module
/// docs): bit-pattern equality, no tolerance.
pub const FLOAT_POLICY: &str = "bit-exact";

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// A named generator shape the campaign cycles through.
#[derive(Debug, Clone)]
pub struct Profile {
    /// Stable name, recorded in reproducers (`"default"`, `"clock-heavy"`,
    /// `"floats"`).
    pub name: &'static str,
    /// The generator tunables.
    pub gen: GenConfig,
    /// Input-prefix length checked per seed.
    pub steps: usize,
}

/// The five stock profiles: the default shape, a clock-heavy shape
/// (deep sampling, merges), a float-arithmetic shape (compared
/// bit-exactly, see the module docs), a deep-nesting shape whose
/// towering `if`/binop/`when` trees stress arena growth and deep
/// front-end traversals, and a lint-rich shape seasoned with the
/// generator's *total* lint bait (unused locals, constant conditions,
/// dead sub-clocks, interval-opaque divisors — see
/// [`GenConfig::lint_bait_pct`]), which the static analyses flag but
/// the dataflow semantics shrugs off. Seeds rotate over profiles
/// (`seed % len`), so every profile is exercised by any contiguous
/// seed block.
pub fn default_profiles() -> Vec<Profile> {
    vec![
        Profile {
            name: "default",
            gen: GenConfig::default(),
            steps: 12,
        },
        Profile {
            name: "clock-heavy",
            gen: GenConfig {
                nodes: 4,
                eqs_per_node: 8,
                expr_depth: 4,
                subclock_pct: 70,
                ..GenConfig::default()
            },
            steps: 10,
        },
        Profile {
            name: "floats",
            gen: GenConfig {
                floats: true,
                ..GenConfig::default()
            },
            steps: 10,
        },
        Profile {
            name: "deep-nesting",
            gen: GenConfig {
                nodes: 3,
                eqs_per_node: 4,
                expr_depth: 9,
                subclock_pct: 25,
                ..GenConfig::default()
            },
            steps: 10,
        },
        Profile {
            name: "lint-rich",
            gen: GenConfig {
                lint_bait_pct: 70,
                ..GenConfig::default()
            },
            steps: 10,
        },
    ]
}

/// Campaign tunables.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Generator profiles; seed `s` uses `profiles[s % len]`.
    pub profiles: Vec<Profile>,
    /// Percentage (0–100) of seeds whose source is mutated before
    /// compilation. Mutants that no longer compile count as rejected,
    /// not as failures.
    pub mutate_pct: u32,
    /// Maximum shrink attempts (recompile-and-recheck cycles) per
    /// failing seed.
    pub shrink_budget: usize,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            profiles: default_profiles(),
            mutate_pct: 10,
            shrink_budget: 400,
        }
    }
}

// ---------------------------------------------------------------------------
// Checking one case
// ---------------------------------------------------------------------------

/// The located failure of one oracle pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailureInfo {
    /// Which oracle pair disagreed: one of the [`velus::OracleId`] names,
    /// or `"staged-emit"` for the staged-vs-one-shot C comparison, or
    /// `"harness"` for an internal rig error.
    pub oracle: String,
    /// The first disagreeing instant, when the oracle is per-instant.
    pub instant: Option<usize>,
    /// The output stream index, when the disagreement is per-output.
    pub output: Option<usize>,
    /// What the reference side produced.
    pub left: String,
    /// What the later stage produced.
    pub right: String,
}

/// The classified result of checking one program against the oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Every oracle pair agreed on the whole prefix.
    Pass,
    /// The compiler rejected the source with a coded diagnostic.
    CompileFail {
        /// The first diagnostic code (e.g. `"E0201"`).
        code: String,
        /// The rendered error.
        detail: String,
    },
    /// The program has no dataflow semantics on these inputs (e.g. a
    /// division by zero) — the theorem is vacuous, nothing to compare.
    SemFail {
        /// The rendered semantic error.
        detail: String,
    },
    /// Two stages of the chain disagreed: the theorem failed.
    Diverged(FailureInfo),
    /// Some stage panicked instead of returning.
    Panicked {
        /// The panic payload.
        detail: String,
    },
}

impl CheckOutcome {
    /// Whether this outcome is acceptable when *replaying* a checked-in
    /// reproducer: the bug must no longer manifest, but a fix may
    /// legitimately turn a once-accepted mutant into a compile or
    /// semantic failure.
    pub fn acceptable_on_replay(&self) -> bool {
        !matches!(
            self,
            CheckOutcome::Diverged(_) | CheckOutcome::Panicked { .. }
        )
    }

    /// Whether this outcome reproduces a failure (used as the default
    /// shrink predicate).
    pub fn is_failure(&self) -> bool {
        !self.acceptable_on_replay()
    }
}

pub(crate) fn panic_message(e: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

fn compile_outcome(source: &str, root: Option<&str>) -> Result<Compiled, CheckOutcome> {
    match catch_unwind(AssertUnwindSafe(|| velus::compile(source, root))) {
        Ok(Ok(c)) => Ok(c),
        Ok(Err(e)) => {
            let code = e
                .diagnostics(&SpanMap::new())
                .iter()
                .next()
                .map_or("E0000", |d| d.code.id)
                .to_owned();
            Err(CheckOutcome::CompileFail {
                code,
                detail: e.to_string(),
            })
        }
        Err(p) => Err(CheckOutcome::Panicked {
            detail: format!("compile panicked: {}", panic_message(p)),
        }),
    }
}

/// Drives every pipeline pass individually through a [`PassManager`] and
/// returns the emitted C — the staged half of the staged-vs-one-shot
/// campaign oracle.
///
/// # Errors
///
/// Whatever pass fails first.
pub fn stagewise_c(source: &str, root: Option<&str>) -> Result<String, VelusError> {
    let mut observe = |_: velus::Stage, _: std::time::Duration| {};
    let mut pm = PassManager::new(&mut observe);
    let elaborated = pm.run(
        &ElaboratePass,
        FrontendInput { source, root },
        &SpanMap::new(),
    )?;
    let root = elaborated.root;
    let spans = elaborated.spans;
    let nlustre = pm.run(&CheckPass, elaborated.nlustre, &spans)?;
    let snlustre = pm.run(&SchedulePass, nlustre, &spans)?;
    let obc = pm.run(&TranslatePass, &snlustre, &spans)?;
    let obc_fused = pm.run(&FusePass, &obc, &spans)?;
    let clight = pm.run(
        &GeneratePass,
        GenerateInput {
            obc_fused: &obc_fused,
            root,
        },
        &spans,
    )?;
    pm.run(
        &EmitPass,
        EmitInput {
            clight: &clight,
            io: TestIo::Volatile,
        },
        &spans,
    )
}

fn clip(s: &str) -> String {
    const MAX: usize = 2000;
    if s.len() <= MAX {
        return s.to_owned();
    }
    let mut end = MAX;
    while !s.is_char_boundary(end) {
        end -= 1;
    }
    format!("{}… [{} bytes clipped]", &s[..end], s.len() - end)
}

fn staged_emit_divergence(source: &str, root: Ident, oneshot: &Compiled) -> Option<FailureInfo> {
    let expected = velus::emit_c(oneshot, TestIo::Volatile);
    let root_s = root.to_string();
    let staged = match catch_unwind(AssertUnwindSafe(|| stagewise_c(source, Some(&root_s)))) {
        Ok(Ok(c)) => c,
        Ok(Err(e)) => {
            return Some(FailureInfo {
                oracle: "staged-emit".to_owned(),
                instant: None,
                output: None,
                left: "staged pipeline succeeds like the one-shot pipeline".to_owned(),
                right: format!("staged pipeline failed: {e}"),
            })
        }
        Err(p) => {
            return Some(FailureInfo {
                oracle: "staged-emit".to_owned(),
                instant: None,
                output: None,
                left: "staged pipeline succeeds like the one-shot pipeline".to_owned(),
                right: format!("staged pipeline panicked: {}", panic_message(p)),
            })
        }
    };
    if staged == expected {
        return None;
    }
    let line = staged
        .lines()
        .zip(expected.lines())
        .position(|(a, b)| a != b)
        .unwrap_or_else(|| staged.lines().count().min(expected.lines().count()));
    Some(FailureInfo {
        oracle: "staged-emit".to_owned(),
        instant: Some(line),
        output: None,
        left: clip(expected.lines().nth(line).unwrap_or("<end of file>")),
        right: clip(staged.lines().nth(line).unwrap_or("<end of file>")),
    })
}

/// Compiles `source` and runs the complete oracle set — the semantic
/// chain of [`velus::run_oracles`] plus the staged-vs-one-shot C
/// comparison — on `steps` instants of `inputs`, classifying the result.
/// Panics at any stage are caught and reported as
/// [`CheckOutcome::Panicked`].
pub fn check(
    source: &str,
    root: Option<&str>,
    inputs: &StreamSet<ClightOps>,
    steps: usize,
) -> CheckOutcome {
    let compiled = match compile_outcome(source, root) {
        Ok(c) => c,
        Err(out) => return out,
    };
    let report = match catch_unwind(AssertUnwindSafe(|| {
        velus::run_oracles(&compiled, inputs, steps)
    })) {
        Ok(Ok(rep)) => rep,
        Ok(Err(VelusError::Sem(e))) => {
            return CheckOutcome::SemFail {
                detail: e.to_string(),
            }
        }
        Ok(Err(e)) => {
            return CheckOutcome::Diverged(FailureInfo {
                oracle: "harness".to_owned(),
                instant: None,
                output: None,
                left: "a structured oracle report".to_owned(),
                right: clip(&e.to_string()),
            })
        }
        Err(p) => {
            return CheckOutcome::Panicked {
                detail: format!("oracle run panicked: {}", panic_message(p)),
            }
        }
    };
    if let Some(d) = report.divergence {
        return CheckOutcome::Diverged(FailureInfo {
            oracle: d.oracle.name().to_owned(),
            instant: Some(d.instant),
            output: d.output,
            left: clip(&d.left),
            right: clip(&d.right),
        });
    }
    match staged_emit_divergence(source, compiled.root, &compiled) {
        Some(info) => CheckOutcome::Diverged(info),
        None => CheckOutcome::Pass,
    }
}

// ---------------------------------------------------------------------------
// Shrinking
// ---------------------------------------------------------------------------

/// A failing case in shrinkable form: the program AST, its root, the
/// input streams (index-aligned with the root's input declarations), and
/// the prefix length.
#[derive(Debug, Clone)]
pub struct ShrinkCase {
    /// The program (mutated in place by the shrinker).
    pub prog: Program<ClightOps>,
    /// The root node name (never deleted).
    pub root: Ident,
    /// Input streams for the root node.
    pub inputs: StreamSet<ClightOps>,
    /// Checked prefix length.
    pub steps: usize,
}

impl ShrinkCase {
    fn set_steps(&mut self, steps: usize) {
        self.steps = steps;
        for s in &mut self.inputs {
            s.truncate(steps);
        }
    }

    /// Renders the case back to surface Lustre.
    pub fn source(&self) -> String {
        lustre_source(&self.prog)
    }
}

/// What the shrinker did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Candidate cases tried (predicate invocations).
    pub attempts: usize,
    /// Candidates accepted (each one strictly smaller).
    pub accepted: usize,
}

fn default_const(ty: CTy) -> Option<CConst> {
    match ty {
        CTy::Bool => Some(CConst::bool(false)),
        CTy::F32 | CTy::F64 => ClightOps::const_of_literal(&Literal::Float(0.0), &ty),
        _ => ClightOps::const_of_literal(&Literal::Int(0), &ty),
    }
}

fn expr_ty(e: &Expr<ClightOps>) -> CTy {
    match e {
        Expr::Var(_, ty) => *ty,
        Expr::Const(c) => c.ty(),
        Expr::Unop(_, _, ty) => *ty,
        Expr::Binop(_, _, _, ty) => *ty,
        Expr::When(inner, _, _) => expr_ty(inner),
    }
}

/// Pre-order walk over every expression node; `f` returns `true` to stop.
fn walk_expr(e: &mut Expr<ClightOps>, f: &mut dyn FnMut(&mut Expr<ClightOps>) -> bool) -> bool {
    if f(e) {
        return true;
    }
    match e {
        Expr::Unop(_, inner, _) => walk_expr(inner, f),
        Expr::Binop(_, a, b, _) => walk_expr(a, f) || walk_expr(b, f),
        Expr::When(inner, _, _) => walk_expr(inner, f),
        Expr::Var(..) | Expr::Const(_) => false,
    }
}

fn walk_cexpr(ce: &mut CExpr<ClightOps>, f: &mut dyn FnMut(&mut Expr<ClightOps>) -> bool) -> bool {
    match ce {
        CExpr::Merge(_, t, e) => walk_cexpr(t, f) || walk_cexpr(e, f),
        CExpr::If(c, t, e) => walk_expr(c, f) || walk_cexpr(t, f) || walk_cexpr(e, f),
        CExpr::Expr(e) => walk_expr(e, f),
    }
}

fn walk_program(
    prog: &mut Program<ClightOps>,
    f: &mut dyn FnMut(&mut Expr<ClightOps>) -> bool,
) -> bool {
    for node in &mut prog.nodes {
        for eq in &mut node.eqs {
            let stopped = match eq {
                Equation::Def { rhs, .. } => walk_cexpr(rhs, f),
                Equation::Fby { rhs, .. } => walk_expr(rhs, f),
                Equation::Call { args, .. } => args.iter_mut().any(|a| walk_expr(a, f)),
            };
            if stopped {
                return true;
            }
        }
    }
    false
}

fn count_expr_sites(prog: &mut Program<ClightOps>) -> usize {
    let mut n = 0;
    walk_program(prog, &mut |_| {
        n += 1;
        false
    });
    n
}

/// Replaces the `target`-th expression site (pre-order) with the
/// type-default constant; returns whether anything changed (the site may
/// already be a constant, or have no default for its type).
fn replace_expr_site(prog: &mut Program<ClightOps>, target: usize) -> bool {
    let mut k = 0;
    let mut replaced = false;
    walk_program(prog, &mut |e| {
        if k == target {
            k += 1;
            if !matches!(e, Expr::Const(_)) {
                if let Some(c) = default_const(expr_ty(e)) {
                    *e = Expr::Const(c);
                    replaced = true;
                }
            }
            true
        } else {
            k += 1;
            false
        }
    });
    replaced
}

fn count_if_sites(prog: &mut Program<ClightOps>) -> usize {
    let mut n = 0;
    for node in &mut prog.nodes {
        for eq in &mut node.eqs {
            if let Equation::Def { rhs, .. } = eq {
                count_ifs(rhs, &mut n);
            }
        }
    }
    n
}

fn count_ifs(ce: &CExpr<ClightOps>, n: &mut usize) {
    match ce {
        CExpr::If(_, t, e) => {
            *n += 1;
            count_ifs(t, n);
            count_ifs(e, n);
        }
        CExpr::Merge(_, t, e) => {
            count_ifs(t, n);
            count_ifs(e, n);
        }
        CExpr::Expr(_) => {}
    }
}

/// Collapses the `target`-th `if` (pre-order over `Def` right-hand
/// sides) to its then- or else-branch.
fn collapse_if_site(prog: &mut Program<ClightOps>, target: usize, keep_then: bool) -> bool {
    let mut k = 0;
    for node in &mut prog.nodes {
        for eq in &mut node.eqs {
            if let Equation::Def { rhs, .. } = eq {
                if collapse_ifs(rhs, target, keep_then, &mut k) {
                    return true;
                }
            }
        }
    }
    false
}

fn collapse_ifs(ce: &mut CExpr<ClightOps>, target: usize, keep_then: bool, k: &mut usize) -> bool {
    if let CExpr::If(_, t, e) = ce {
        if *k == target {
            *ce = if keep_then {
                (**t).clone()
            } else {
                (**e).clone()
            };
            return true;
        }
        *k += 1;
        let (t, e) = match ce {
            CExpr::If(_, t, e) => (t, e),
            _ => unreachable!("just matched"),
        };
        return collapse_ifs(t, target, keep_then, k) || collapse_ifs(e, target, keep_then, k);
    }
    if let CExpr::Merge(_, t, e) = ce {
        return collapse_ifs(t, target, keep_then, k) || collapse_ifs(e, target, keep_then, k);
    }
    false
}

/// Deletes equation `eq_idx` of node `node_idx` along with the local
/// declarations of the variables it defines; refuses to delete
/// output-defining equations.
fn delete_equation(prog: &mut Program<ClightOps>, node_idx: usize, eq_idx: usize) -> bool {
    let node = &mut prog.nodes[node_idx];
    let defined: Vec<Ident> = match &node.eqs[eq_idx] {
        Equation::Def { x, .. } | Equation::Fby { x, .. } => vec![*x],
        Equation::Call { xs, .. } => xs.clone(),
    };
    if defined
        .iter()
        .any(|x| node.outputs.iter().any(|d| d.name == *x))
    {
        return false;
    }
    node.eqs.remove(eq_idx);
    node.locals.retain(|d| !defined.contains(&d.name));
    true
}

/// Shrinks `case` in place while `still_fails` keeps returning `true`
/// for candidates, spending at most `budget` predicate calls.
///
/// Passes, repeated to a fixpoint: truncate the checked prefix (halving
/// then decrementing, truncating the input streams with it), delete
/// non-root nodes, delete root inputs (declaration and stream together),
/// delete equations (with their local declarations; output definitions
/// are kept), collapse `if`s to one branch, and replace subexpressions
/// by type-default constants. Invalid candidates — e.g. deleting a node
/// something still calls — are rejected naturally because the predicate
/// recompiles and the compile failure is not the original failure.
pub fn shrink(
    case: &mut ShrinkCase,
    budget: usize,
    still_fails: &mut dyn FnMut(&ShrinkCase) -> bool,
) -> ShrinkStats {
    let mut stats = ShrinkStats::default();
    let mut try_candidate =
        |case: &mut ShrinkCase, cand: ShrinkCase, stats: &mut ShrinkStats| -> bool {
            stats.attempts += 1;
            if still_fails(&cand) {
                *case = cand;
                stats.accepted += 1;
                true
            } else {
                false
            }
        };

    let mut improved = true;
    while improved && stats.attempts < budget {
        improved = false;

        // 1. Prefix truncation: halve while it keeps failing, then step.
        while case.steps > 1 && stats.attempts < budget {
            let mut cand = case.clone();
            cand.set_steps(case.steps / 2);
            if try_candidate(case, cand, &mut stats) {
                improved = true;
            } else {
                break;
            }
        }
        while case.steps > 1 && stats.attempts < budget {
            let mut cand = case.clone();
            cand.set_steps(case.steps - 1);
            if try_candidate(case, cand, &mut stats) {
                improved = true;
            } else {
                break;
            }
        }

        // 2. Delete whole nodes (never the root).
        let mut i = 0;
        while i < case.prog.nodes.len() && stats.attempts < budget {
            if case.prog.nodes[i].name == case.root {
                i += 1;
                continue;
            }
            let mut cand = case.clone();
            cand.prog.nodes.remove(i);
            if try_candidate(case, cand, &mut stats) {
                improved = true;
            } else {
                i += 1;
            }
        }

        // 3. Delete root inputs, declaration and stream together.
        let root_idx = case.prog.nodes.iter().position(|n| n.name == case.root);
        if let Some(root_idx) = root_idx {
            let mut k = 0;
            while k < case.prog.nodes[root_idx].inputs.len() && stats.attempts < budget {
                let mut cand = case.clone();
                cand.prog.nodes[root_idx].inputs.remove(k);
                if k < cand.inputs.len() {
                    cand.inputs.remove(k);
                }
                if try_candidate(case, cand, &mut stats) {
                    improved = true;
                } else {
                    k += 1;
                }
            }
        }

        // 4. Delete equations (and their local declarations).
        for node_idx in 0..case.prog.nodes.len() {
            let mut eq_idx = 0;
            while node_idx < case.prog.nodes.len()
                && eq_idx < case.prog.nodes[node_idx].eqs.len()
                && stats.attempts < budget
            {
                let mut cand = case.clone();
                if !delete_equation(&mut cand.prog, node_idx, eq_idx) {
                    eq_idx += 1;
                    continue;
                }
                if try_candidate(case, cand, &mut stats) {
                    improved = true;
                } else {
                    eq_idx += 1;
                }
            }
        }

        // 5. Collapse ifs to a single branch.
        let mut site = 0;
        while site < count_if_sites(&mut case.prog) && stats.attempts < budget {
            let mut advanced = true;
            for keep_then in [true, false] {
                let mut cand = case.clone();
                if !collapse_if_site(&mut cand.prog, site, keep_then) {
                    continue;
                }
                if try_candidate(case, cand, &mut stats) {
                    improved = true;
                    advanced = false;
                    break;
                }
            }
            if advanced {
                site += 1;
            }
        }

        // 6. Replace subexpressions by type-default constants.
        let mut site = 0;
        while site < count_expr_sites(&mut case.prog) && stats.attempts < budget {
            let mut cand = case.clone();
            if !replace_expr_site(&mut cand.prog, site) {
                site += 1;
                continue;
            }
            if try_candidate(case, cand, &mut stats) {
                improved = true;
                site += 1; // The site is now a constant; move on.
            } else {
                site += 1;
            }
        }
    }
    stats
}

/// Source-level shrinking for cases with no usable AST (a mutant whose
/// *compilation* panics): delete line blocks (halving, then single
/// lines) while `still_fails` holds.
pub fn shrink_source(
    source: &mut String,
    budget: usize,
    still_fails: &mut dyn FnMut(&str) -> bool,
) -> ShrinkStats {
    let mut stats = ShrinkStats::default();
    let mut chunk = {
        let lines = source.lines().count();
        (lines / 2).max(1)
    };
    loop {
        let lines: Vec<&str> = source.lines().collect();
        let mut removed_any = false;
        let mut start = 0;
        let mut next: Option<String> = None;
        while start < lines.len() && stats.attempts < budget {
            let end = (start + chunk).min(lines.len());
            let candidate: String =
                lines[..start]
                    .iter()
                    .chain(&lines[end..])
                    .fold(String::new(), |mut acc, l| {
                        acc.push_str(l);
                        acc.push('\n');
                        acc
                    });
            stats.attempts += 1;
            if still_fails(&candidate) {
                stats.accepted += 1;
                next = Some(candidate);
                removed_any = true;
                break;
            }
            start = end;
        }
        if let Some(n) = next {
            *source = n;
            continue;
        }
        if stats.attempts >= budget || (!removed_any && chunk == 1) {
            return stats;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }
}

// ---------------------------------------------------------------------------
// Reproducers
// ---------------------------------------------------------------------------

/// How a seed failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// Two stages of the chain disagreed.
    Divergence,
    /// Some stage panicked.
    Panic,
    /// An *unmutated* generated program failed to compile — a bug in the
    /// generator or the compiler, not a finding about the theorem.
    RigCompileFail,
    /// An *unmutated* generated program had no dataflow semantics — the
    /// generator's totality-by-construction guarantee broke.
    RigSemantics,
}

impl FailureKind {
    /// The JSON token (`"divergence"`, `"panic"`, …).
    pub fn token(self) -> &'static str {
        match self {
            FailureKind::Divergence => "divergence",
            FailureKind::Panic => "panic",
            FailureKind::RigCompileFail => "rig-compile-fail",
            FailureKind::RigSemantics => "rig-semantics",
        }
    }
}

/// A packaged failing case: everything needed to reproduce, stored as a
/// `.lus` + `.json` pair under `tests/diff_seeds/`.
#[derive(Debug, Clone)]
pub struct Reproducer {
    /// The failing seed.
    pub seed: u64,
    /// The profile name the seed used.
    pub profile: String,
    /// The generator configuration.
    pub gen: GenConfig,
    /// Whether the source was mutated before compilation.
    pub mutated: bool,
    /// The failure class.
    pub kind: FailureKind,
    /// The located oracle failure, for divergences.
    pub info: Option<FailureInfo>,
    /// Free-form detail (panic message, compile error, …).
    pub detail: String,
    /// The (minimized) surface source.
    pub source: String,
    /// The root node, when known.
    pub root: Option<String>,
    /// The checked prefix length.
    pub steps: usize,
    /// The exact (possibly shrunk) input streams; `None` when the
    /// failure precedes input generation (compile-time panic).
    pub inputs: Option<StreamSet<ClightOps>>,
    /// Shrinker statistics.
    pub shrink: ShrinkStats,
}

/// The stable base name of a reproducer record: `seed-<zero-padded>`.
pub fn record_name(seed: u64) -> String {
    format!("seed-{seed:020}")
}

/// Serializes one stream value as a typed token: `"abs"`, `"i32:<n>"`,
/// `"i64:<n>"`, or the bit patterns `"f32:<8 hex>"` / `"f64:<16 hex>"`
/// (floats are compared — and therefore stored — bit-exactly).
pub fn sval_token(v: &SVal<ClightOps>) -> String {
    match v {
        SVal::Abs => "abs".to_owned(),
        SVal::Pres(CVal::Int(x)) => format!("i32:{x}"),
        SVal::Pres(CVal::Long(x)) => format!("i64:{x}"),
        SVal::Pres(CVal::Single(x)) => format!("f32:{:08x}", x.to_bits()),
        SVal::Pres(CVal::Float(x)) => format!("f64:{:016x}", x.to_bits()),
    }
}

/// Parses a [`sval_token`] back.
///
/// # Errors
///
/// A message naming the malformed token.
pub fn parse_sval(tok: &str) -> Result<SVal<ClightOps>, String> {
    if tok == "abs" {
        return Ok(SVal::Abs);
    }
    let bad = || format!("malformed stream value token {tok:?}");
    let (tag, rest) = tok.split_once(':').ok_or_else(bad)?;
    let val = match tag {
        "i32" => CVal::int(rest.parse().map_err(|_| bad())?),
        "i64" => CVal::long(rest.parse().map_err(|_| bad())?),
        "f32" => CVal::single(f32::from_bits(
            u32::from_str_radix(rest, 16).map_err(|_| bad())?,
        )),
        "f64" => CVal::float(f64::from_bits(
            u64::from_str_radix(rest, 16).map_err(|_| bad())?,
        )),
        _ => return Err(bad()),
    };
    Ok(SVal::Pres(val))
}

/// Renders the JSON record of a reproducer (the `.lus` source itself is
/// stored next to it, named by the `source_file` field).
pub fn render_record(rep: &Reproducer) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n");
    let field = |out: &mut String, key: &str, val: &str, last: bool| {
        out.push_str("  ");
        escape_into(key, out);
        out.push_str(": ");
        out.push_str(val);
        if !last {
            out.push(',');
        }
        out.push('\n');
    };
    let s = |v: &str| {
        let mut b = String::new();
        escape_into(v, &mut b);
        b
    };
    field(&mut out, "format", &RECORD_FORMAT.to_string(), false);
    field(&mut out, "seed", &rep.seed.to_string(), false);
    field(&mut out, "profile", &s(&rep.profile), false);
    let g = &rep.gen;
    field(
        &mut out,
        "gen",
        &format!(
            "{{\"nodes\": {}, \"eqs_per_node\": {}, \"expr_depth\": {}, \"subclock_pct\": {}, \"floats\": {}}}",
            g.nodes, g.eqs_per_node, g.expr_depth, g.subclock_pct, g.floats
        ),
        false,
    );
    field(&mut out, "mutated", &rep.mutated.to_string(), false);
    field(&mut out, "float_policy", &s(FLOAT_POLICY), false);
    field(&mut out, "kind", &s(rep.kind.token()), false);
    if let Some(info) = &rep.info {
        field(&mut out, "oracle", &s(&info.oracle), false);
        if let Some(i) = info.instant {
            field(&mut out, "instant", &i.to_string(), false);
        }
        if let Some(k) = info.output {
            field(&mut out, "output", &k.to_string(), false);
        }
        field(&mut out, "left", &s(&info.left), false);
        field(&mut out, "right", &s(&info.right), false);
    }
    field(&mut out, "detail", &s(&rep.detail), false);
    if let Some(root) = &rep.root {
        field(&mut out, "root", &s(root), false);
    }
    field(&mut out, "steps", &rep.steps.to_string(), false);
    match &rep.inputs {
        None => field(&mut out, "inputs", "null", false),
        Some(streams) => {
            let mut b = String::from("[");
            for (k, stream) in streams.iter().enumerate() {
                if k > 0 {
                    b.push_str(", ");
                }
                b.push('[');
                for (i, v) in stream.iter().enumerate() {
                    if i > 0 {
                        b.push_str(", ");
                    }
                    escape_into(&sval_token(v), &mut b);
                }
                b.push(']');
            }
            b.push(']');
            field(&mut out, "inputs", &b, false);
        }
    }
    field(
        &mut out,
        "shrink",
        &format!(
            "{{\"attempts\": {}, \"accepted\": {}}}",
            rep.shrink.attempts, rep.shrink.accepted
        ),
        false,
    );
    field(
        &mut out,
        "source_file",
        &s(&format!("{}.lus", record_name(rep.seed))),
        true,
    );
    out.push_str("}\n");
    out
}

/// Writes the `.lus` + `.json` pair for `rep` under `dir` (created if
/// missing); returns the two paths.
///
/// # Errors
///
/// Filesystem errors.
pub fn write_reproducer(dir: &Path, rep: &Reproducer) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let base = record_name(rep.seed);
    let lus = dir.join(format!("{base}.lus"));
    let json = dir.join(format!("{base}.json"));
    std::fs::write(&lus, &rep.source)?;
    std::fs::write(&json, render_record(rep))?;
    Ok((lus, json))
}

/// Replays a reproducer record against the current compiler: parses the
/// JSON, decodes the stored inputs, and re-runs [`check`] on `source`.
/// Records without inputs (compile-time panics) only re-compile.
///
/// # Errors
///
/// A malformed record (bad JSON, bad stream token).
pub fn replay(record_json: &str, source: &str) -> Result<CheckOutcome, String> {
    let record = crate::json::parse(record_json)?;
    let root = record.get("root").and_then(Json::as_str).map(str::to_owned);
    let steps = record
        .get("steps")
        .and_then(Json::as_usize)
        .ok_or("record has no usable \"steps\" field")?;
    match record.get("inputs") {
        None | Some(Json::Null) => match compile_outcome(source, root.as_deref()) {
            Ok(_) => Ok(CheckOutcome::Pass),
            Err(out) => Ok(out),
        },
        Some(streams) => {
            let streams = streams.as_arr().ok_or("\"inputs\" is not an array")?;
            let mut inputs: StreamSet<ClightOps> = Vec::with_capacity(streams.len());
            for stream in streams {
                let toks = stream.as_arr().ok_or("input stream is not an array")?;
                let mut vals = Vec::with_capacity(toks.len());
                for tok in toks {
                    let tok = tok.as_str().ok_or("stream value is not a string")?;
                    vals.push(parse_sval(tok)?);
                }
                inputs.push(vals);
            }
            Ok(check(source, root.as_deref(), &inputs, steps))
        }
    }
}

// ---------------------------------------------------------------------------
// The campaign
// ---------------------------------------------------------------------------

/// What one seed produced.
#[derive(Debug, Clone)]
pub enum SeedOutcome {
    /// Every oracle agreed.
    Agreed,
    /// The mutated source was rejected with a coded diagnostic — the
    /// expected fate of most mutants.
    MutantRejected {
        /// The first diagnostic code.
        code: String,
    },
    /// The (mutated) program compiled but has no dataflow semantics on
    /// the generated inputs; the theorem is vacuous there.
    Vacuous,
    /// A divergence, panic, or rig failure, with its shrunk reproducer.
    Failure(Box<Reproducer>),
}

/// One seed's result.
#[derive(Debug, Clone)]
pub struct SeedResult {
    /// The seed.
    pub seed: u64,
    /// The profile name it used.
    pub profile: String,
    /// What happened.
    pub outcome: SeedOutcome,
    /// Wall-clock nanoseconds the seed took end to end.
    pub nanos: u64,
}

/// The merged results of a campaign, sorted by seed.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Per-seed results, ascending by seed.
    pub results: Vec<SeedResult>,
}

impl CampaignReport {
    /// Seeds whose oracles all agreed.
    pub fn agreed(&self) -> usize {
        self.count(|o| matches!(o, SeedOutcome::Agreed))
    }

    /// Mutants rejected by the compiler.
    pub fn mutants_rejected(&self) -> usize {
        self.count(|o| matches!(o, SeedOutcome::MutantRejected { .. }))
    }

    /// Seeds where the theorem was vacuous (no dataflow semantics).
    pub fn vacuous(&self) -> usize {
        self.count(|o| matches!(o, SeedOutcome::Vacuous))
    }

    /// The failing seeds' reproducers.
    pub fn failures(&self) -> Vec<&Reproducer> {
        self.results
            .iter()
            .filter_map(|r| match &r.outcome {
                SeedOutcome::Failure(rep) => Some(&**rep),
                _ => None,
            })
            .collect()
    }

    /// Diagnostic-code histogram of the rejected mutants.
    pub fn rejection_codes(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for r in &self.results {
            if let SeedOutcome::MutantRejected { code } = &r.outcome {
                *out.entry(code.clone()).or_insert(0) += 1;
            }
        }
        out
    }

    /// Whether no seed failed.
    pub fn clean(&self) -> bool {
        self.results
            .iter()
            .all(|r| !matches!(r.outcome, SeedOutcome::Failure(_)))
    }

    fn count(&self, f: impl Fn(&SeedOutcome) -> bool) -> usize {
        self.results.iter().filter(|r| f(&r.outcome)).count()
    }
}

/// The payload of a failing seed, handed from the per-seed drivers to
/// the shrinker/packager.
struct FailingCase {
    /// The first (unshrunk) failing outcome.
    first: CheckOutcome,
    /// The AST form, when one exists (absent for compile-time panics).
    case: Option<ShrinkCase>,
    /// The surface source that was checked.
    source: String,
    root: Option<String>,
    inputs: Option<StreamSet<ClightOps>>,
    steps: usize,
}

fn shrink_and_package(
    seed: u64,
    profile: &Profile,
    mutated: bool,
    fc: FailingCase,
    budget: usize,
) -> Reproducer {
    let FailingCase {
        first,
        mut case,
        mut source,
        root,
        inputs,
        steps,
    } = fc;
    let kind = match &first {
        CheckOutcome::Panicked { .. } => FailureKind::Panic,
        _ => FailureKind::Divergence,
    };
    let mut info = match &first {
        CheckOutcome::Diverged(i) => Some(i.clone()),
        _ => None,
    };
    let mut detail = match &first {
        CheckOutcome::Panicked { detail } => detail.clone(),
        CheckOutcome::Diverged(i) => format!("{} oracle disagreed", i.oracle),
        _ => String::new(),
    };
    let mut final_inputs = inputs;
    let mut final_steps = steps;
    let mut stats = ShrinkStats::default();

    if let Some(c) = case.as_mut() {
        let root_s = c.root.to_string();
        // Only shrink if the AST form actually reproduces (a mutant's
        // elaborated AST may not round-trip; then we keep the textual
        // source untouched).
        let reproduces = |cand: &ShrinkCase| {
            check(&cand.source(), Some(&root_s), &cand.inputs, cand.steps).is_failure()
        };
        if reproduces(c) {
            stats = shrink(c, budget, &mut |cand| reproduces(cand));
            source = c.source();
            final_inputs = Some(c.inputs.clone());
            final_steps = c.steps;
            // Re-locate the (possibly moved) divergence on the final case.
            match check(&source, Some(&root_s), &c.inputs, c.steps) {
                CheckOutcome::Diverged(i) => {
                    detail = format!("{} oracle disagreed", i.oracle);
                    info = Some(i);
                }
                CheckOutcome::Panicked { detail: d } => detail = d,
                _ => {}
            }
        }
    } else if matches!(kind, FailureKind::Panic) {
        // No AST (the compile itself panicked): shrink the text.
        let root_ref = root.as_deref();
        stats = shrink_source(&mut source, budget, &mut |cand| {
            matches!(
                compile_outcome(cand, root_ref),
                Err(CheckOutcome::Panicked { .. })
            )
        });
    }

    Reproducer {
        seed,
        profile: profile.name.to_owned(),
        gen: profile.gen.clone(),
        mutated,
        kind,
        info,
        detail,
        source,
        root,
        steps: final_steps,
        inputs: final_inputs,
        shrink: stats,
    }
}

/// Runs one seed end to end: generate, maybe mutate, compile, run every
/// oracle, and on failure shrink and package a [`Reproducer`].
///
/// Deterministic: the outcome depends only on `(seed, cfg)`. All random
/// draws come from `StdRng::seed_from_u64(seed)` in a fixed order
/// (program, mutation decision, mutation, inputs).
pub fn run_seed(seed: u64, cfg: &CampaignConfig) -> SeedResult {
    let start = std::time::Instant::now();
    let profile = &cfg.profiles[(seed % cfg.profiles.len() as u64) as usize];
    let mut rng = StdRng::seed_from_u64(seed);
    let prog = gen_program(&mut rng, &profile.gen);
    let root = prog
        .nodes
        .last()
        .expect("generated programs are non-empty")
        .name;
    let source = lustre_source(&prog);
    let do_mutate = cfg.mutate_pct > 0 && rng.gen_range(0..100) < cfg.mutate_pct;

    let outcome = if do_mutate {
        run_mutant(seed, profile, &mut rng, &source, cfg.shrink_budget)
    } else {
        run_generated(
            seed,
            profile,
            &mut rng,
            prog,
            root,
            &source,
            cfg.shrink_budget,
        )
    };
    SeedResult {
        seed,
        profile: profile.name.to_owned(),
        outcome,
        nanos: start.elapsed().as_nanos() as u64,
    }
}

fn run_generated(
    seed: u64,
    profile: &Profile,
    rng: &mut StdRng,
    prog: Program<ClightOps>,
    root: Ident,
    source: &str,
    budget: usize,
) -> SeedOutcome {
    let node = prog.node(root).expect("root exists").clone();
    let inputs = gen_inputs(rng, &node, profile.steps);
    let root_s = root.to_string();
    match check(source, Some(&root_s), &inputs, profile.steps) {
        CheckOutcome::Pass => SeedOutcome::Agreed,
        CheckOutcome::CompileFail { code, detail } => {
            // The generator promises well-formed programs; this is a rig
            // failure, reported with the unshrunk source.
            SeedOutcome::Failure(Box::new(Reproducer {
                seed,
                profile: profile.name.to_owned(),
                gen: profile.gen.clone(),
                mutated: false,
                kind: FailureKind::RigCompileFail,
                info: None,
                detail: format!("[{code}] {detail}"),
                source: source.to_owned(),
                root: Some(root_s),
                steps: profile.steps,
                inputs: Some(inputs),
                shrink: ShrinkStats::default(),
            }))
        }
        CheckOutcome::SemFail { detail } => SeedOutcome::Failure(Box::new(Reproducer {
            seed,
            profile: profile.name.to_owned(),
            gen: profile.gen.clone(),
            mutated: false,
            kind: FailureKind::RigSemantics,
            info: None,
            detail,
            source: source.to_owned(),
            root: Some(root_s),
            steps: profile.steps,
            inputs: Some(inputs),
            shrink: ShrinkStats::default(),
        })),
        first @ (CheckOutcome::Diverged(_) | CheckOutcome::Panicked { .. }) => {
            let case = ShrinkCase {
                prog,
                root,
                inputs: inputs.clone(),
                steps: profile.steps,
            };
            SeedOutcome::Failure(Box::new(shrink_and_package(
                seed,
                profile,
                false,
                FailingCase {
                    first,
                    case: Some(case),
                    source: source.to_owned(),
                    root: Some(root_s),
                    inputs: Some(inputs),
                    steps: profile.steps,
                },
                budget,
            )))
        }
    }
}

fn run_mutant(
    seed: u64,
    profile: &Profile,
    rng: &mut StdRng,
    source: &str,
    budget: usize,
) -> SeedOutcome {
    let mutated = mutate(source, rng);
    // The mutation may have renamed or deleted the root node: let the
    // compiler pick its default root.
    let compiled = match compile_outcome(&mutated, None) {
        Ok(c) => c,
        Err(CheckOutcome::CompileFail { code, .. }) => return SeedOutcome::MutantRejected { code },
        Err(first @ CheckOutcome::Panicked { .. }) => {
            return SeedOutcome::Failure(Box::new(shrink_and_package(
                seed,
                profile,
                true,
                FailingCase {
                    first,
                    case: None,
                    source: mutated,
                    root: None,
                    inputs: None,
                    steps: profile.steps,
                },
                budget,
            )));
        }
        Err(_) => unreachable!("compile_outcome only fails with CompileFail or Panicked"),
    };
    let root = compiled.root;
    let node = match compiled.snlustre.node(root) {
        Some(n) => n.clone(),
        None => {
            return SeedOutcome::MutantRejected {
                code: "E0000".to_owned(),
            }
        }
    };
    let inputs = gen_inputs(rng, &node, profile.steps);
    let root_s = root.to_string();
    match check(&mutated, Some(&root_s), &inputs, profile.steps) {
        CheckOutcome::Pass => SeedOutcome::Agreed,
        CheckOutcome::CompileFail { code, .. } => SeedOutcome::MutantRejected { code },
        CheckOutcome::SemFail { .. } => SeedOutcome::Vacuous,
        first @ (CheckOutcome::Diverged(_) | CheckOutcome::Panicked { .. }) => {
            // Shrink on the *elaborated* AST of the mutant; if that AST
            // does not round-trip the packager keeps the raw text.
            let case = ShrinkCase {
                prog: compiled.nlustre.clone(),
                root,
                inputs: inputs.clone(),
                steps: profile.steps,
            };
            SeedOutcome::Failure(Box::new(shrink_and_package(
                seed,
                profile,
                true,
                FailingCase {
                    first,
                    case: Some(case),
                    source: mutated,
                    root: Some(root_s),
                    inputs: Some(inputs),
                    steps: profile.steps,
                },
                budget,
            )))
        }
    }
}

/// Runs seeds `start .. start + count` across `workers` threads and
/// merges the results sorted by seed.
///
/// Deterministic: worker `w` handles seeds `start + w`, `start + w +
/// workers`, … — every seed is processed independently with its own RNG,
/// so the merged report is identical for any worker count.
pub fn run_campaign(
    cfg: &CampaignConfig,
    start: u64,
    count: u64,
    workers: usize,
) -> CampaignReport {
    assert!(
        !cfg.profiles.is_empty(),
        "campaign needs at least one profile"
    );
    let workers = workers.max(1);
    let mut results: Vec<SeedResult> = if workers == 1 {
        (start..start.saturating_add(count))
            .map(|s| run_seed(s, cfg))
            .collect()
    } else {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers as u64)
                .map(|w| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut s = start.saturating_add(w);
                        let end = start.saturating_add(count);
                        while s < end {
                            out.push(run_seed(s, cfg));
                            match s.checked_add(workers as u64) {
                                Some(n) => s = n,
                                None => break,
                            }
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("campaign worker panicked"))
                .collect()
        })
    };
    results.sort_by_key(|r| r.seed);
    CampaignReport { results }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg(mutate_pct: u32) -> CampaignConfig {
        CampaignConfig {
            mutate_pct,
            shrink_budget: 60,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn a_seed_block_agrees_end_to_end() {
        let stock = default_profiles().len();
        let report = run_campaign(&quick_cfg(0), 0, 2 * stock as u64, 1);
        assert_eq!(report.results.len(), 2 * stock);
        assert!(
            report.clean(),
            "unexpected failures: {:?}",
            report.failures()
        );
        // Unmutated seeds either agree or fail; with a clean report they
        // all agreed, across every stock profile (incl. floats and
        // deep-nesting).
        assert_eq!(report.agreed(), 2 * stock);
        let profiles: std::collections::BTreeSet<&str> =
            report.results.iter().map(|r| r.profile.as_str()).collect();
        assert_eq!(profiles.len(), stock);
    }

    #[test]
    fn campaigns_are_deterministic_across_worker_counts() {
        let cfg = quick_cfg(40);
        let a = run_campaign(&cfg, 100, 12, 1);
        let b = run_campaign(&cfg, 100, 12, 3);
        assert_eq!(a.results.len(), b.results.len());
        for (x, y) in a.results.iter().zip(&b.results) {
            assert_eq!(x.seed, y.seed);
            assert_eq!(x.profile, y.profile);
            // Outcomes must match structurally (nanos legitimately vary).
            match (&x.outcome, &y.outcome) {
                (SeedOutcome::Agreed, SeedOutcome::Agreed)
                | (SeedOutcome::Vacuous, SeedOutcome::Vacuous) => {}
                (
                    SeedOutcome::MutantRejected { code: c1 },
                    SeedOutcome::MutantRejected { code: c2 },
                ) => assert_eq!(c1, c2),
                (SeedOutcome::Failure(f1), SeedOutcome::Failure(f2)) => {
                    assert_eq!(f1.kind, f2.kind);
                    assert_eq!(f1.source, f2.source);
                }
                (ox, oy) => panic!("seed {}: outcomes differ: {ox:?} vs {oy:?}", x.seed),
            }
        }
    }

    #[test]
    fn mutants_never_fail_the_campaign() {
        // 100% mutation: every mutant must be rejected, vacuous, or pass
        // — never diverge, never panic (the diagnostics contract).
        let report = run_campaign(&quick_cfg(100), 200, 16, 2);
        assert!(
            report.clean(),
            "mutant failures: {:?}",
            report
                .failures()
                .iter()
                .map(|f| (f.seed, f.kind, f.detail.clone()))
                .collect::<Vec<_>>()
        );
        assert_eq!(
            report.agreed() + report.mutants_rejected() + report.vacuous(),
            16
        );
    }

    #[test]
    fn shrinking_minimizes_against_a_synthetic_predicate() {
        // A synthetic predicate (no recompilation): the failure needs at
        // least 3 steps and node n0 present. The shrinker must reach
        // exactly that boundary and keep the witness.
        let mut rng = StdRng::seed_from_u64(7);
        let prog = gen_program(&mut rng, &GenConfig::default());
        let root = prog.nodes.last().unwrap().name;
        let node = prog.node(root).unwrap().clone();
        let inputs = gen_inputs(&mut rng, &node, 12);
        let mut case = ShrinkCase {
            prog,
            root,
            inputs,
            steps: 12,
        };
        let witness = Ident::new("n0");
        let stats = shrink(&mut case, 10_000, &mut |c| {
            c.steps >= 3 && c.prog.nodes.iter().any(|n| n.name == witness)
        });
        assert_eq!(case.steps, 3, "steps not minimized");
        assert!(case.prog.nodes.iter().any(|n| n.name == witness));
        assert!(case.prog.nodes.iter().any(|n| n.name == root));
        assert!(stats.accepted >= 1);
        assert!(stats.attempts >= stats.accepted);
        // Input streams were truncated along with the step count.
        assert!(case.inputs.iter().all(|s| s.len() == 3));
    }

    #[test]
    fn shrinking_respects_the_budget_and_terminates() {
        let mut rng = StdRng::seed_from_u64(11);
        let prog = gen_program(&mut rng, &GenConfig::default());
        let root = prog.nodes.last().unwrap().name;
        let node = prog.node(root).unwrap().clone();
        let inputs = gen_inputs(&mut rng, &node, 12);
        let mut case = ShrinkCase {
            prog,
            root,
            inputs,
            steps: 12,
        };
        let stats = shrink(&mut case, 5, &mut |_| true);
        assert!(stats.attempts <= 5, "budget exceeded: {stats:?}");
    }

    #[test]
    fn shrunk_programs_still_compile_and_validate() {
        // Drive the shrinker with the *real* check as the predicate,
        // inverted: keep shrinking while the program still passes. Every
        // accepted candidate therefore went through render → compile →
        // full oracle set, proving shrink steps preserve well-formedness.
        let mut rng = StdRng::seed_from_u64(3);
        let prog = gen_program(&mut rng, &GenConfig::default());
        let root = prog.nodes.last().unwrap().name;
        let root_s = root.to_string();
        let node = prog.node(root).unwrap().clone();
        let inputs = gen_inputs(&mut rng, &node, 6);
        let mut case = ShrinkCase {
            prog,
            root,
            inputs,
            steps: 6,
        };
        assert_eq!(
            check(&case.source(), Some(&root_s), &case.inputs, case.steps),
            CheckOutcome::Pass
        );
        let stats = shrink(&mut case, 40, &mut |c| {
            matches!(
                check(&c.source(), Some(&root_s), &c.inputs, c.steps),
                CheckOutcome::Pass
            )
        });
        assert!(stats.accepted >= 1, "nothing shrank: {stats:?}");
        assert_eq!(
            check(&case.source(), Some(&root_s), &case.inputs, case.steps),
            CheckOutcome::Pass
        );
    }

    #[test]
    fn source_shrinking_deletes_lines_while_the_predicate_holds() {
        let mut source = String::from("keep\na\nb\nc\nkeep\nd\ne\n");
        let stats = shrink_source(&mut source, 1000, &mut |s| {
            s.lines().filter(|l| *l == "keep").count() == 2
        });
        assert_eq!(source, "keep\nkeep\n");
        assert!(stats.accepted >= 1);
    }

    #[test]
    fn sval_tokens_round_trip_bit_exactly() {
        let vals: Vec<SVal<ClightOps>> = vec![
            SVal::Abs,
            SVal::Pres(CVal::int(-42)),
            SVal::Pres(CVal::long(1 << 40)),
            SVal::Pres(CVal::single(-0.0)),
            SVal::Pres(CVal::float(f64::NAN)),
            SVal::Pres(CVal::float(0.1)),
        ];
        for v in &vals {
            let tok = sval_token(v);
            let back = parse_sval(&tok).unwrap();
            // CVal equality is bitwise, so NaN round trips too.
            assert_eq!(*v, back, "token {tok}");
        }
        assert!(parse_sval("i32:x").is_err());
        assert!(parse_sval("f16:0").is_err());
        assert!(parse_sval("").is_err());
    }

    #[test]
    fn records_render_parse_and_replay() {
        // Build a fake "divergence" record around a perfectly fine
        // program: replay must parse the record, decode the inputs, and
        // find the failure gone (acceptable).
        let mut rng = StdRng::seed_from_u64(5);
        let prog = gen_program(&mut rng, &GenConfig::default());
        let root = prog.nodes.last().unwrap().name;
        let node = prog.node(root).unwrap().clone();
        let inputs = gen_inputs(&mut rng, &node, 5);
        let rep = Reproducer {
            seed: 5,
            profile: "default".to_owned(),
            gen: GenConfig::default(),
            mutated: false,
            kind: FailureKind::Divergence,
            info: Some(FailureInfo {
                oracle: "obc".to_owned(),
                instant: Some(2),
                output: Some(0),
                left: "1".to_owned(),
                right: "2".to_owned(),
            }),
            detail: "synthetic record for the round-trip test".to_owned(),
            source: lustre_source(&prog),
            root: Some(root.to_string()),
            steps: 5,
            inputs: Some(inputs),
            shrink: ShrinkStats {
                attempts: 3,
                accepted: 1,
            },
        };
        let json = render_record(&rep);
        let parsed = crate::json::parse(&json).expect("record is valid JSON");
        assert_eq!(parsed.get("seed").unwrap().as_u64(), Some(5));
        assert_eq!(
            parsed.get("float_policy").unwrap().as_str(),
            Some(FLOAT_POLICY)
        );
        assert_eq!(
            parsed.get("source_file").unwrap().as_str(),
            Some("seed-00000000000000000005.lus")
        );
        let outcome = replay(&json, &rep.source).expect("replayable");
        assert_eq!(outcome, CheckOutcome::Pass);
        assert!(outcome.acceptable_on_replay());
    }

    #[test]
    fn staged_and_oneshot_emission_agree_on_generated_programs() {
        for seed in [0u64, 1, 2] {
            let mut rng = StdRng::seed_from_u64(seed);
            let prog = gen_program(&mut rng, &GenConfig::default());
            let root = prog.nodes.last().unwrap().name;
            let source = lustre_source(&prog);
            let compiled = velus::compile(&source, Some(&root.to_string())).unwrap();
            assert!(staged_emit_divergence(&source, root, &compiled).is_none());
        }
    }
}
