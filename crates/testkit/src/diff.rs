//! Stream-set comparison with readable divergence reports.

use velus_nlustre::streams::StreamSet;
use velus_ops::Ops;

/// The first point where two stream sets disagree.
#[derive(Debug, Clone, PartialEq)]
pub struct Divergence {
    /// Index of the disagreeing stream.
    pub stream: usize,
    /// First disagreeing instant.
    pub instant: usize,
    /// Rendered left value.
    pub left: String,
    /// Rendered right value.
    pub right: String,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "stream {} diverges at instant {}: {} vs {}",
            self.stream, self.instant, self.left, self.right
        )
    }
}

/// Compares two stream sets and reports the first divergence, if any.
/// Differing stream counts or lengths count as divergences.
pub fn first_divergence<O: Ops>(a: &StreamSet<O>, b: &StreamSet<O>) -> Option<Divergence> {
    if a.len() != b.len() {
        return Some(Divergence {
            stream: a.len().min(b.len()),
            instant: 0,
            left: format!("{} streams", a.len()),
            right: format!("{} streams", b.len()),
        });
    }
    for (k, (sa, sb)) in a.iter().zip(b).enumerate() {
        let n = sa.len().max(sb.len());
        for i in 0..n {
            match (sa.get(i), sb.get(i)) {
                (Some(x), Some(y)) if x == y => {}
                (x, y) => {
                    return Some(Divergence {
                        stream: k,
                        instant: i,
                        left: x.map_or("<missing>".to_owned(), |v| v.to_string()),
                        right: y.map_or("<missing>".to_owned(), |v| v.to_string()),
                    })
                }
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_nlustre::streams::SVal;
    use velus_ops::{CVal, ClightOps};

    #[test]
    fn equal_sets_have_no_divergence() {
        let a: StreamSet<ClightOps> = vec![vec![SVal::Pres(CVal::int(1)), SVal::Abs]];
        assert_eq!(first_divergence::<ClightOps>(&a, &a.clone()), None);
    }

    #[test]
    fn first_divergence_is_located() {
        let a: StreamSet<ClightOps> =
            vec![vec![SVal::Pres(CVal::int(1)), SVal::Pres(CVal::int(2))]];
        let b: StreamSet<ClightOps> =
            vec![vec![SVal::Pres(CVal::int(1)), SVal::Pres(CVal::int(3))]];
        let d = first_divergence::<ClightOps>(&a, &b).unwrap();
        assert_eq!((d.stream, d.instant), (0, 1));
        assert_eq!(d.to_string(), "stream 0 diverges at instant 1: 2 vs 3");
    }

    #[test]
    fn length_mismatch_is_a_divergence() {
        let a: StreamSet<ClightOps> = vec![vec![SVal::Pres(CVal::int(1))]];
        let b: StreamSet<ClightOps> = vec![vec![]];
        assert!(first_divergence::<ClightOps>(&a, &b).is_some());
    }

    #[test]
    fn unequal_stream_counts_diverge_at_the_first_extra_stream() {
        let a: StreamSet<ClightOps> = vec![vec![SVal::Pres(CVal::int(1))]];
        let b: StreamSet<ClightOps> = vec![
            vec![SVal::Pres(CVal::int(1))],
            vec![SVal::Pres(CVal::int(2))],
        ];
        let d = first_divergence::<ClightOps>(&a, &b).unwrap();
        // The divergence points at the first stream index only one side
        // has, at instant 0, and renders the counts.
        assert_eq!((d.stream, d.instant), (1, 0));
        assert_eq!(
            (d.left.as_str(), d.right.as_str()),
            ("1 streams", "2 streams")
        );
        // Symmetric in position, mirrored in the report.
        let rev = first_divergence::<ClightOps>(&b, &a).unwrap();
        assert_eq!((rev.stream, rev.instant), (1, 0));
        assert_eq!(rev.left, "2 streams");
    }

    #[test]
    fn unequal_lengths_locate_the_missing_tail() {
        // Common prefix agrees; the divergence is the first instant only
        // one side has, reported as <missing> on the short side.
        let a: StreamSet<ClightOps> = vec![vec![
            SVal::Pres(CVal::int(7)),
            SVal::Pres(CVal::int(8)),
            SVal::Pres(CVal::int(9)),
        ]];
        let b: StreamSet<ClightOps> =
            vec![vec![SVal::Pres(CVal::int(7)), SVal::Pres(CVal::int(8))]];
        let d = first_divergence::<ClightOps>(&a, &b).unwrap();
        assert_eq!((d.stream, d.instant), (0, 2));
        assert_eq!((d.left.as_str(), d.right.as_str()), ("9", "<missing>"));
    }

    #[test]
    fn absent_vs_present_is_a_divergence_and_absent_agrees_with_absent() {
        // Absent ticks are values: Abs == Abs, Abs != Pres.
        let a: StreamSet<ClightOps> = vec![vec![SVal::Abs, SVal::Abs]];
        let b: StreamSet<ClightOps> = vec![vec![SVal::Abs, SVal::Pres(CVal::int(0))]];
        assert_eq!(first_divergence::<ClightOps>(&a, &a.clone()), None);
        let d = first_divergence::<ClightOps>(&a, &b).unwrap();
        assert_eq!((d.stream, d.instant), (0, 1));
        assert_eq!((d.left.as_str(), d.right.as_str()), (".", "0"));
    }

    #[test]
    fn floats_compare_bit_exactly() {
        // NaN equals NaN (same bits), and -0.0 differs from 0.0 — the
        // campaign's bit-exact float policy at the comparison layer.
        let nan: StreamSet<ClightOps> = vec![vec![SVal::Pres(CVal::float(f64::NAN))]];
        assert_eq!(first_divergence::<ClightOps>(&nan, &nan.clone()), None);
        let pos: StreamSet<ClightOps> = vec![vec![SVal::Pres(CVal::float(0.0))]];
        let neg: StreamSet<ClightOps> = vec![vec![SVal::Pres(CVal::float(-0.0))]];
        let d = first_divergence::<ClightOps>(&pos, &neg).unwrap();
        assert_eq!((d.stream, d.instant), (0, 0));
    }

    #[test]
    fn empty_sets_agree() {
        let empty: StreamSet<ClightOps> = vec![];
        assert_eq!(first_divergence::<ClightOps>(&empty, &empty.clone()), None);
    }
}
