//! The synthetic industrial-scale application (§5).
//!
//! The paper's final experiment compiles a proprietary application of
//! ≈6000 nodes and ≈162000 equations (a ≈12 MB source file) in about
//! 1 min 40 s, demonstrating that the extracted compiler scales. The
//! application itself is unavailable, so this module generates a
//! structurally comparable program: a deterministic layered netlist of
//! nodes with configurable equation counts and call fan-in, already
//! normalized (as the paper's input was, having been produced by a
//! graphical front end).
//!
//! The generator is deterministic — benchmark runs are reproducible —
//! and emits either an N-Lustre AST directly or Lustre source text (to
//! include parsing and elaboration in the measurement, as the paper's
//! timing does).

use velus_common::Ident;
use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program, VarDecl};
use velus_nlustre::clock::Clock;
use velus_ops::{CBinOp, CConst, CTy, ClightOps};

/// Shape parameters for the synthetic application.
#[derive(Debug, Clone, Copy)]
pub struct IndustrialConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Dataflow equations per node (excluding call equations).
    pub eqs_per_node: usize,
    /// Calls per node to earlier nodes (0 for the first layer).
    pub fan_in: usize,
    /// Clock nesting depth of the per-node sub-clocked cluster: 0 keeps
    /// every equation on the base clock (the original generator); `d ≥ 1`
    /// adds a `when`/`merge` cluster sampled `d` levels deep (several
    /// equations per sub-clock, so fusion has guards to merge — the
    /// fusion-heavy shape real clocked applications have).
    pub subclock_depth: usize,
}

impl IndustrialConfig {
    /// The full-size configuration of the paper's experiment:
    /// ≈6000 nodes, ≈162000 equations (base-clocked, as the paper's
    /// graphical-front-end input was).
    pub fn paper_scale() -> IndustrialConfig {
        IndustrialConfig {
            nodes: 6000,
            eqs_per_node: 24,
            fan_in: 2,
            subclock_depth: 0,
        }
    }

    /// A laptop-friendly scale for smoke tests.
    pub fn small() -> IndustrialConfig {
        IndustrialConfig {
            nodes: 60,
            eqs_per_node: 24,
            fan_in: 2,
            subclock_depth: 0,
        }
    }

    /// A fusion-heavy shape: sub-clocked clusters nested two levels deep
    /// (`when`/`merge` at depth ≥ 2), for service benchmarks that should
    /// stress the fusion optimization and its guards.
    pub fn fusion_heavy() -> IndustrialConfig {
        IndustrialConfig {
            nodes: 40,
            eqs_per_node: 16,
            fan_in: 2,
            subclock_depth: 2,
        }
    }

    /// Approximate number of equations the configuration yields.
    pub fn approx_equations(&self) -> usize {
        let subclock = if self.subclock_depth == 0 {
            0
        } else {
            // (depth−1) sampler definitions + 3 deep equations + one
            // merge per level.
            self.subclock_depth - 1 + 3 + self.subclock_depth
        };
        self.nodes * (self.eqs_per_node + 3 + self.fan_in + subclock)
    }
}

fn ivar(name: Ident) -> Expr<ClightOps> {
    Expr::Var(name, CTy::I32)
}

/// The clock `Base on chain[0] on chain[1] … on chain[depth-1]` (all
/// positive polarities).
fn clock_at(chain: &[Ident], depth: usize) -> Clock {
    chain[..depth]
        .iter()
        .fold(Clock::Base, |ck, &x| ck.on(x, true))
}

/// Samples a base-clock expression down the whole chain:
/// `e when chain[0] when chain[1] …`.
fn sampled(e: Expr<ClightOps>, chain: &[Ident]) -> Expr<ClightOps> {
    chain
        .iter()
        .fold(e, |e, &x| Expr::When(Box::new(e), x, true))
}

/// A deterministic pseudo-random sequence (xorshift) so the generated
/// program is stable across runs without pulling `rand` into benchmarks.
struct Det(u64);

impl Det {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One node of the netlist: integer inputs, a boolean mode, a mix of
/// arithmetic, conditionals, delays, and calls to earlier nodes.
fn make_node(index: usize, cfg: &IndustrialConfig, det: &mut Det) -> Node<ClightOps> {
    let name = Ident::new(&format!("blk{index}"));
    let x0 = Ident::new("x0");
    let x1 = Ident::new("x1");
    let mode = Ident::new("mode");
    let out = Ident::new("y");

    let inputs = vec![
        VarDecl {
            name: x0,
            ty: CTy::I32,
            ck: Clock::Base,
        },
        VarDecl {
            name: x1,
            ty: CTy::I32,
            ck: Clock::Base,
        },
        VarDecl {
            name: mode,
            ty: CTy::Bool,
            ck: Clock::Base,
        },
    ];
    let outputs = vec![VarDecl {
        name: out,
        ty: CTy::I32,
        ck: Clock::Base,
    }];

    let mut locals = Vec::new();
    let mut eqs = Vec::new();
    let mut last = x0;

    // Two delays per node (state, as real applications have).
    let m0 = Ident::new("m0");
    let m1 = Ident::new("m1");
    for m in [m0, m1] {
        locals.push(VarDecl {
            name: m,
            ty: CTy::I32,
            ck: Clock::Base,
        });
    }

    // Calls to earlier nodes.
    for k in 0..cfg.fan_in.min(index) {
        let callee = Ident::new(&format!("blk{}", det.below(index)));
        let r = Ident::new(&format!("r{k}"));
        locals.push(VarDecl {
            name: r,
            ty: CTy::I32,
            ck: Clock::Base,
        });
        eqs.push(Equation::Call {
            xs: vec![r],
            ck: Clock::Base,
            node: callee,
            args: vec![ivar(last), ivar(x1), Expr::Var(mode, CTy::Bool)],
        });
        last = r;
    }

    // The sub-clocked cluster: a chain of boolean samplers nested
    // `subclock_depth` levels deep, a few equations on the deepest
    // clock (same clock → fusion merges their guards), and a `merge`
    // ladder back to the base clock. The merged result feeds the
    // arithmetic chain below, so the cluster is live code.
    if cfg.subclock_depth > 0 {
        let depth = cfg.subclock_depth;
        // chain[0] is the `mode` input; chain[k] (k ≥ 1) is a local
        // boolean sampler declared on the clock of the levels before it.
        let mut chain = vec![mode];
        for k in 2..=depth {
            let s = Ident::new(&format!("s{k}"));
            locals.push(VarDecl {
                name: s,
                ty: CTy::Bool,
                ck: clock_at(&chain, k - 1),
            });
            eqs.push(Equation::Def {
                x: s,
                ck: clock_at(&chain, k - 1),
                rhs: CExpr::Expr(sampled(
                    Expr::Binop(
                        CBinOp::Lt,
                        Box::new(ivar(x0)),
                        Box::new(ivar(x1)),
                        CTy::Bool,
                    ),
                    &chain[..k - 1],
                )),
            });
            chain.push(s);
        }
        // Deep equations, all on the deepest clock.
        let deep = clock_at(&chain, depth);
        let ws: Vec<Ident> = (0..3).map(|k| Ident::new(&format!("w{k}"))).collect();
        for &w in &ws {
            locals.push(VarDecl {
                name: w,
                ty: CTy::I32,
                ck: deep.clone(),
            });
        }
        eqs.push(Equation::Def {
            x: ws[0],
            ck: deep.clone(),
            rhs: CExpr::Expr(Expr::Binop(
                CBinOp::Add,
                Box::new(sampled(ivar(x1), &chain)),
                Box::new(sampled(ivar(m0), &chain)),
                CTy::I32,
            )),
        });
        eqs.push(Equation::Def {
            x: ws[1],
            ck: deep.clone(),
            rhs: CExpr::Expr(Expr::Binop(
                CBinOp::Mul,
                Box::new(ivar(ws[0])),
                Box::new(Expr::Const(CConst::int((det.below(5) + 2) as i32))),
                CTy::I32,
            )),
        });
        eqs.push(Equation::Def {
            x: ws[2],
            ck: deep,
            rhs: CExpr::Expr(Expr::Binop(
                CBinOp::Sub,
                Box::new(ivar(ws[1])),
                Box::new(ivar(ws[0])),
                CTy::I32,
            )),
        });
        // Merge ladder: one merge per level, back down to base.
        let mut prev = ws[2];
        for k in (1..=depth).rev() {
            let u = Ident::new(&format!("u{k}"));
            let ck = clock_at(&chain, k - 1);
            locals.push(VarDecl {
                name: u,
                ty: CTy::I32,
                ck: ck.clone(),
            });
            let sampler = chain[k - 1];
            // The absent branch re-samples a delayed base stream with
            // the opposite polarity.
            let other = Expr::When(Box::new(sampled(ivar(m1), &chain[..k - 1])), sampler, false);
            eqs.push(Equation::Def {
                x: u,
                ck,
                rhs: CExpr::Merge(
                    sampler,
                    Box::new(CExpr::Expr(ivar(prev))),
                    Box::new(CExpr::Expr(other)),
                ),
            });
            prev = u;
        }
        last = prev;
    }

    // A chain of arithmetic/conditional equations.
    for k in 0..cfg.eqs_per_node {
        let v = Ident::new(&format!("v{k}"));
        locals.push(VarDecl {
            name: v,
            ty: CTy::I32,
            ck: Clock::Base,
        });
        let rhs = match det.below(4) {
            0 => CExpr::Expr(Expr::Binop(
                CBinOp::Add,
                Box::new(ivar(last)),
                Box::new(ivar(m0)),
                CTy::I32,
            )),
            1 => CExpr::Expr(Expr::Binop(
                CBinOp::Mul,
                Box::new(ivar(last)),
                Box::new(Expr::Const(CConst::int((det.below(7) + 1) as i32))),
                CTy::I32,
            )),
            2 => CExpr::If(
                Expr::Var(mode, CTy::Bool),
                Box::new(CExpr::Expr(Expr::Binop(
                    CBinOp::Sub,
                    Box::new(ivar(last)),
                    Box::new(ivar(x1)),
                    CTy::I32,
                ))),
                Box::new(CExpr::Expr(ivar(m1))),
            ),
            _ => CExpr::Expr(Expr::Binop(
                CBinOp::Sub,
                Box::new(ivar(last)),
                Box::new(Expr::Const(CConst::int(det.below(16) as i32))),
                CTy::I32,
            )),
        };
        eqs.push(Equation::Def {
            x: v,
            ck: Clock::Base,
            rhs,
        });
        last = v;
    }

    // Output and delays.
    eqs.push(Equation::Def {
        x: out,
        ck: Clock::Base,
        rhs: CExpr::Expr(ivar(last)),
    });
    eqs.push(Equation::Fby {
        x: m0,
        ck: Clock::Base,
        init: CConst::int(0),
        rhs: ivar(last),
    });
    eqs.push(Equation::Fby {
        x: m1,
        ck: Clock::Base,
        init: CConst::int(1),
        rhs: ivar(m0),
    });

    Node {
        name,
        inputs,
        outputs,
        locals,
        eqs,
    }
}

/// Generates the synthetic application as N-Lustre (already normalized,
/// like the paper's input). The last node (`blk{nodes-1}`) serves as the
/// root.
pub fn industrial_program(cfg: &IndustrialConfig) -> Program<ClightOps> {
    let mut det = Det(0x9e3779b97f4a7c15);
    let nodes = (0..cfg.nodes.max(1))
        .map(|i| make_node(i, cfg, &mut det))
        .collect();
    Program::new(nodes)
}

/// Emits the same application as Lustre source text, to measure parsing
/// and elaboration as well (rendered by the shared surface-syntax
/// renderer, [`crate::render`], which the campaign reproducers use too).
pub fn industrial_source(cfg: &IndustrialConfig) -> String {
    crate::render::lustre_source(&industrial_program(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_nlustre::{clockcheck, typecheck};

    #[test]
    fn small_scale_is_well_formed() {
        let cfg = IndustrialConfig::small();
        let prog = industrial_program(&cfg);
        assert_eq!(prog.nodes.len(), cfg.nodes);
        typecheck::check_program(&prog).unwrap();
        clockcheck::check_program_clocks(&prog).unwrap();
    }

    #[test]
    fn equation_estimate_is_close() {
        let cfg = IndustrialConfig::small();
        let prog = industrial_program(&cfg);
        let eqs = prog.equation_count();
        let approx = cfg.approx_equations();
        assert!(
            eqs.abs_diff(approx) < approx / 2,
            "counted {eqs}, approximated {approx}"
        );
    }

    #[test]
    fn source_text_round_trips_through_the_frontend() {
        let cfg = IndustrialConfig {
            nodes: 5,
            eqs_per_node: 6,
            fan_in: 2,
            subclock_depth: 0,
        };
        let src = industrial_source(&cfg);
        let (prog, _) = velus_lustre::compile_to_nlustre::<velus_ops::ClightOps>(&src)
            .unwrap_or_else(|e| panic!("{}", e.render(&src)));
        assert_eq!(prog.nodes.len(), 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = IndustrialConfig::small();
        assert_eq!(industrial_program(&cfg), industrial_program(&cfg));
    }

    #[test]
    fn paper_scale_reaches_the_reported_size() {
        let cfg = IndustrialConfig::paper_scale();
        assert!(cfg.approx_equations() >= 160_000);
    }

    #[test]
    fn subclocked_programs_are_well_clocked_at_depth_two_and_three() {
        for depth in [1, 2, 3] {
            let cfg = IndustrialConfig {
                nodes: 8,
                eqs_per_node: 6,
                fan_in: 2,
                subclock_depth: depth,
            };
            let prog = industrial_program(&cfg);
            typecheck::check_program(&prog).unwrap_or_else(|e| panic!("depth {depth}: {e}"));
            clockcheck::check_program_clocks(&prog)
                .unwrap_or_else(|e| panic!("depth {depth}: {e}"));
            // The cluster really is sub-clocked: some declaration sits
            // at the requested nesting depth.
            let max_depth = prog
                .nodes
                .iter()
                .flat_map(|n| &n.locals)
                .map(|d| d.ck.depth())
                .max()
                .unwrap();
            assert_eq!(max_depth, depth);
        }
    }

    #[test]
    fn subclocked_source_round_trips_with_clock_annotations() {
        let cfg = IndustrialConfig {
            nodes: 6,
            eqs_per_node: 5,
            fan_in: 1,
            subclock_depth: 2,
        };
        let src = industrial_source(&cfg);
        assert!(src.contains("when mode when s2"), "{src}");
        assert!(src.contains("merge"), "{src}");
        let (prog, _) = velus_lustre::compile_to_nlustre::<velus_ops::ClightOps>(&src)
            .unwrap_or_else(|e| panic!("{}", e.render(&src)));
        assert_eq!(prog.nodes.len(), 6);
        clockcheck::check_program_clocks(&prog).unwrap();
    }
}
