//! The synthetic industrial-scale application (§5).
//!
//! The paper's final experiment compiles a proprietary application of
//! ≈6000 nodes and ≈162000 equations (a ≈12 MB source file) in about
//! 1 min 40 s, demonstrating that the extracted compiler scales. The
//! application itself is unavailable, so this module generates a
//! structurally comparable program: a deterministic layered netlist of
//! nodes with configurable equation counts and call fan-in, already
//! normalized (as the paper's input was, having been produced by a
//! graphical front end).
//!
//! The generator is deterministic — benchmark runs are reproducible —
//! and emits either an N-Lustre AST directly or Lustre source text (to
//! include parsing and elaboration in the measurement, as the paper's
//! timing does).

use velus_common::Ident;
use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program, VarDecl};
use velus_nlustre::clock::Clock;
use velus_ops::{CBinOp, CConst, CTy, ClightOps};

/// Shape parameters for the synthetic application.
#[derive(Debug, Clone, Copy)]
pub struct IndustrialConfig {
    /// Number of nodes.
    pub nodes: usize,
    /// Dataflow equations per node (excluding call equations).
    pub eqs_per_node: usize,
    /// Calls per node to earlier nodes (0 for the first layer).
    pub fan_in: usize,
}

impl IndustrialConfig {
    /// The full-size configuration of the paper's experiment:
    /// ≈6000 nodes, ≈162000 equations.
    pub fn paper_scale() -> IndustrialConfig {
        IndustrialConfig {
            nodes: 6000,
            eqs_per_node: 24,
            fan_in: 2,
        }
    }

    /// A laptop-friendly scale for smoke tests.
    pub fn small() -> IndustrialConfig {
        IndustrialConfig {
            nodes: 60,
            eqs_per_node: 24,
            fan_in: 2,
        }
    }

    /// Approximate number of equations the configuration yields.
    pub fn approx_equations(&self) -> usize {
        self.nodes * (self.eqs_per_node + 3 + self.fan_in)
    }
}

fn ivar(name: Ident) -> Expr<ClightOps> {
    Expr::Var(name, CTy::I32)
}

/// A deterministic pseudo-random sequence (xorshift) so the generated
/// program is stable across runs without pulling `rand` into benchmarks.
struct Det(u64);

impl Det {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// One node of the netlist: integer inputs, a boolean mode, a mix of
/// arithmetic, conditionals, delays, and calls to earlier nodes.
fn make_node(index: usize, cfg: &IndustrialConfig, det: &mut Det) -> Node<ClightOps> {
    let name = Ident::new(&format!("blk{index}"));
    let x0 = Ident::new("x0");
    let x1 = Ident::new("x1");
    let mode = Ident::new("mode");
    let out = Ident::new("y");

    let inputs = vec![
        VarDecl {
            name: x0,
            ty: CTy::I32,
            ck: Clock::Base,
        },
        VarDecl {
            name: x1,
            ty: CTy::I32,
            ck: Clock::Base,
        },
        VarDecl {
            name: mode,
            ty: CTy::Bool,
            ck: Clock::Base,
        },
    ];
    let outputs = vec![VarDecl {
        name: out,
        ty: CTy::I32,
        ck: Clock::Base,
    }];

    let mut locals = Vec::new();
    let mut eqs = Vec::new();
    let mut last = x0;

    // Two delays per node (state, as real applications have).
    let m0 = Ident::new("m0");
    let m1 = Ident::new("m1");
    for m in [m0, m1] {
        locals.push(VarDecl {
            name: m,
            ty: CTy::I32,
            ck: Clock::Base,
        });
    }

    // Calls to earlier nodes.
    for k in 0..cfg.fan_in.min(index) {
        let callee = Ident::new(&format!("blk{}", det.below(index)));
        let r = Ident::new(&format!("r{k}"));
        locals.push(VarDecl {
            name: r,
            ty: CTy::I32,
            ck: Clock::Base,
        });
        eqs.push(Equation::Call {
            xs: vec![r],
            ck: Clock::Base,
            node: callee,
            args: vec![ivar(last), ivar(x1), Expr::Var(mode, CTy::Bool)],
        });
        last = r;
    }

    // A chain of arithmetic/conditional equations.
    for k in 0..cfg.eqs_per_node {
        let v = Ident::new(&format!("v{k}"));
        locals.push(VarDecl {
            name: v,
            ty: CTy::I32,
            ck: Clock::Base,
        });
        let rhs = match det.below(4) {
            0 => CExpr::Expr(Expr::Binop(
                CBinOp::Add,
                Box::new(ivar(last)),
                Box::new(ivar(m0)),
                CTy::I32,
            )),
            1 => CExpr::Expr(Expr::Binop(
                CBinOp::Mul,
                Box::new(ivar(last)),
                Box::new(Expr::Const(CConst::int((det.below(7) + 1) as i32))),
                CTy::I32,
            )),
            2 => CExpr::If(
                Expr::Var(mode, CTy::Bool),
                Box::new(CExpr::Expr(Expr::Binop(
                    CBinOp::Sub,
                    Box::new(ivar(last)),
                    Box::new(ivar(x1)),
                    CTy::I32,
                ))),
                Box::new(CExpr::Expr(ivar(m1))),
            ),
            _ => CExpr::Expr(Expr::Binop(
                CBinOp::Sub,
                Box::new(ivar(last)),
                Box::new(Expr::Const(CConst::int(det.below(16) as i32))),
                CTy::I32,
            )),
        };
        eqs.push(Equation::Def {
            x: v,
            ck: Clock::Base,
            rhs,
        });
        last = v;
    }

    // Output and delays.
    eqs.push(Equation::Def {
        x: out,
        ck: Clock::Base,
        rhs: CExpr::Expr(ivar(last)),
    });
    eqs.push(Equation::Fby {
        x: m0,
        ck: Clock::Base,
        init: CConst::int(0),
        rhs: ivar(last),
    });
    eqs.push(Equation::Fby {
        x: m1,
        ck: Clock::Base,
        init: CConst::int(1),
        rhs: ivar(m0),
    });

    Node {
        name,
        inputs,
        outputs,
        locals,
        eqs,
    }
}

/// Generates the synthetic application as N-Lustre (already normalized,
/// like the paper's input). The last node (`blk{nodes-1}`) serves as the
/// root.
pub fn industrial_program(cfg: &IndustrialConfig) -> Program<ClightOps> {
    let mut det = Det(0x9e3779b97f4a7c15);
    let nodes = (0..cfg.nodes.max(1))
        .map(|i| make_node(i, cfg, &mut det))
        .collect();
    Program::new(nodes)
}

/// Emits the same application as Lustre source text, to measure parsing
/// and elaboration as well.
pub fn industrial_source(cfg: &IndustrialConfig) -> String {
    let prog = industrial_program(cfg);
    // The N-Lustre Display form is already parseable Lustre for this
    // fragment (base clocks only, explicit `fby` equations), except for
    // clock syntax, which this generator never emits.
    let mut out = String::new();
    for node in &prog.nodes {
        let decls = |ds: &[VarDecl<ClightOps>]| {
            ds.iter()
                .map(|d| format!("{}: {}", d.name, d.ty))
                .collect::<Vec<_>>()
                .join("; ")
        };
        out.push_str(&format!(
            "node {}({}) returns ({})\n",
            node.name,
            decls(&node.inputs),
            decls(&node.outputs)
        ));
        if !node.locals.is_empty() {
            out.push_str(&format!("var {};\n", decls(&node.locals)));
        }
        out.push_str("let\n");
        for eq in &node.eqs {
            match eq {
                Equation::Def { x, rhs, .. } => out.push_str(&format!("  {x} = {rhs};\n")),
                Equation::Fby { x, init, rhs, .. } => {
                    out.push_str(&format!("  {x} = {init} fby {rhs};\n"))
                }
                Equation::Call {
                    xs, node: f, args, ..
                } => {
                    let xs: Vec<String> = xs.iter().map(|x| x.to_string()).collect();
                    let args: Vec<String> = args.iter().map(|a| a.to_string()).collect();
                    out.push_str(&format!(
                        "  ({}) = {f}({});\n",
                        xs.join(", "),
                        args.join(", ")
                    ));
                }
            }
        }
        out.push_str("tel\n\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_nlustre::{clockcheck, typecheck};

    #[test]
    fn small_scale_is_well_formed() {
        let cfg = IndustrialConfig::small();
        let prog = industrial_program(&cfg);
        assert_eq!(prog.nodes.len(), cfg.nodes);
        typecheck::check_program(&prog).unwrap();
        clockcheck::check_program_clocks(&prog).unwrap();
    }

    #[test]
    fn equation_estimate_is_close() {
        let cfg = IndustrialConfig::small();
        let prog = industrial_program(&cfg);
        let eqs = prog.equation_count();
        let approx = cfg.approx_equations();
        assert!(
            eqs.abs_diff(approx) < approx / 2,
            "counted {eqs}, approximated {approx}"
        );
    }

    #[test]
    fn source_text_round_trips_through_the_frontend() {
        let cfg = IndustrialConfig {
            nodes: 5,
            eqs_per_node: 6,
            fan_in: 2,
        };
        let src = industrial_source(&cfg);
        let (prog, _) = velus_lustre::compile_to_nlustre::<velus_ops::ClightOps>(&src)
            .unwrap_or_else(|e| panic!("{}", e.render(&src)));
        assert_eq!(prog.nodes.len(), 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = IndustrialConfig::small();
        assert_eq!(industrial_program(&cfg), industrial_program(&cfg));
    }

    #[test]
    fn paper_scale_reaches_the_reported_size() {
        let cfg = IndustrialConfig::paper_scale();
        assert!(cfg.approx_equations() >= 160_000);
    }
}
