//! A minimal JSON reader (and string-escaping helper) for the campaign
//! reproducer records.
//!
//! The workspace hand-rolls its JSON *writers* (diagnostics, stats,
//! traces); the seed-corpus replay test is the first consumer that must
//! *read* JSON back, so this module provides a small recursive-descent
//! parser for the subset those records use: objects, arrays, strings
//! with escapes, numbers, and the three literals. Numbers keep their
//! raw text so 64-bit seeds survive without a float round trip.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, kept as its raw text (see [`Json::as_u64`]).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is normalized (sorted); the records never
    /// rely on duplicate keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The value under `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string content, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as a `u64`, when this is an integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number as an `i64`, when this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The number as a `usize`, when this is an integral number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(s) => s.parse().ok(),
            _ => None,
        }
    }

    /// The boolean, when this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parses exactly one JSON value (with optional surrounding whitespace).
///
/// # Errors
///
/// A message naming the first offending byte offset.
pub fn parse(s: &str) -> Result<Json, String> {
    let b = s.as_bytes();
    let (v, end) = value(b, 0)?;
    if skip_ws(b, end) != b.len() {
        return Err("trailing garbage after JSON value".to_owned());
    }
    Ok(v)
}

fn skip_ws(b: &[u8], mut i: usize) -> usize {
    while i < b.len() && b[i].is_ascii_whitespace() {
        i += 1;
    }
    i
}

fn string(b: &[u8], i: usize) -> Result<(String, usize), String> {
    if b.get(i) != Some(&b'"') {
        return Err(format!("expected '\"' at byte {i}"));
    }
    let mut out = String::new();
    let mut i = i + 1;
    loop {
        match b.get(i) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => return Ok((out, i + 1)),
            Some(b'\\') => {
                let esc = b.get(i + 1).ok_or("unterminated escape")?;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(i + 2..i + 6)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {i}"))?;
                        let cp = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {i}"))?;
                        out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        i += 6;
                        continue;
                    }
                    other => return Err(format!("unknown escape \\{}", *other as char)),
                }
                i += 2;
            }
            Some(_) => {
                // Copy the whole UTF-8 scalar.
                let s = std::str::from_utf8(&b[i..]).map_err(|_| "invalid UTF-8")?;
                let c = s.chars().next().ok_or("unterminated string")?;
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
}

fn value(b: &[u8], i: usize) -> Result<(Json, usize), String> {
    let i = skip_ws(b, i);
    match b.get(i) {
        Some(b'{') => {
            let mut m = BTreeMap::new();
            let mut i = skip_ws(b, i + 1);
            if b.get(i) == Some(&b'}') {
                return Ok((Json::Obj(m), i + 1));
            }
            loop {
                let (key, after_key) = string(b, skip_ws(b, i))?;
                i = skip_ws(b, after_key);
                if b.get(i) != Some(&b':') {
                    return Err(format!("expected ':' at byte {i}"));
                }
                let (v, after_v) = value(b, i + 1)?;
                m.insert(key, v);
                i = skip_ws(b, after_v);
                match b.get(i) {
                    Some(b',') => i += 1,
                    Some(b'}') => return Ok((Json::Obj(m), i + 1)),
                    _ => return Err(format!("expected ',' or '}}' at byte {i}")),
                }
            }
        }
        Some(b'[') => {
            let mut out = Vec::new();
            let mut i = skip_ws(b, i + 1);
            if b.get(i) == Some(&b']') {
                return Ok((Json::Arr(out), i + 1));
            }
            loop {
                let (v, after) = value(b, i)?;
                out.push(v);
                i = skip_ws(b, after);
                match b.get(i) {
                    Some(b',') => i += 1,
                    Some(b']') => return Ok((Json::Arr(out), i + 1)),
                    _ => return Err(format!("expected ',' or ']' at byte {i}")),
                }
            }
        }
        Some(b'"') => {
            let (s, end) = string(b, i)?;
            Ok((Json::Str(s), end))
        }
        Some(c) if c.is_ascii_digit() || *c == b'-' => {
            let mut end = i + 1;
            while end < b.len() && matches!(b[end], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
            {
                end += 1;
            }
            let text = std::str::from_utf8(&b[i..end]).map_err(|_| "invalid UTF-8")?;
            Ok((Json::Num(text.to_owned()), end))
        }
        _ => {
            let rest = std::str::from_utf8(&b[i..]).unwrap_or("");
            for (lit, v) in [
                ("true", Json::Bool(true)),
                ("false", Json::Bool(false)),
                ("null", Json::Null),
            ] {
                if rest.starts_with(lit) {
                    return Ok((v, i + lit.len()));
                }
            }
            Err(format!("unexpected value at byte {i}"))
        }
    }
}

/// Appends `s` to `out` as a JSON string literal (quoted, escaped).
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_record_shapes() {
        let v = parse(
            r#"{"seed": 18446744073709551615, "ok": true, "xs": [1, -2, "a\nb"], "nest": {"k": null}}"#,
        )
        .unwrap();
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(u64::MAX));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        let xs = v.get("xs").unwrap().as_arr().unwrap();
        assert_eq!(xs[1].as_i64(), Some(-2));
        assert_eq!(xs[2].as_str(), Some("a\nb"));
        assert_eq!(v.get("nest").unwrap().get("k"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse(r#"{"a": 1"#).is_err());
        assert!(parse(r#"{"a": 1} x"#).is_err());
        assert!(parse("").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn escape_round_trips() {
        let mut out = String::new();
        escape_into("a\"b\\c\nd\u{1}", &mut out);
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\u{1}"));
    }
}
