//! The lint soundness oracle: static trap verdicts vs. real executions.
//!
//! The range analysis (`velus-analysis`) makes falsifiable claims about
//! every compiled program:
//!
//! * `E0110` / `E0111` — a **guaranteed** trap: a division that
//!   provably executes on every step of the root and whose divisor is
//!   always zero (or which is always `i32::MIN / -1`). The very first
//!   step of the generated Clight must trap.
//! * `W0102` — a **possible** trap: the analysis can neither prove nor
//!   refute it; execution may go either way.
//! * none of the above — a **clean** program: the analysis proved
//!   every division, modulo and narrowing cast safe, so no execution
//!   may ever trap.
//!
//! One seed = one experiment: generate a program under a trap-allowing
//! profile ([`GenConfig::trap_divisors`] plus lint bait), render it to
//! surface Lustre, compile it — collecting the lint verdicts over the
//! scheduled program exactly as `velus lint` does — then drive the
//! generated Clight step by step under
//! [`Machine`] and compare what
//! *happened* against what was *claimed*. A mismatch means the abstract
//! interpretation under-approximated reality (or the backend
//! miscompiled) and is reported as a [`Violation`] carrying the `.lus`
//! source as a reproducer.
//!
//! `tests/lints.rs` runs a bounded pass; `velus-bench --bin lintsound`
//! scales the same harness to thousands of seeds in CI.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::rngs::StdRng;
use rand::SeedableRng;

use velus::{Compiled, StagedPipeline, VelusError};
use velus_clight::generate::{method_fn_name, out_struct_name};
use velus_clight::interp::{Machine, RVal};
use velus_clight::ClightError;
use velus_common::{Diagnostics, SpanMap};
use velus_nlustre::streams::{SVal, StreamSet};
use velus_obc::ast::{reset_name, step_name};
use velus_ops::ClightOps;

use crate::campaign::panic_message;
use crate::gen::{gen_inputs, gen_program, GenConfig};
use crate::render::lustre_source;

/// Tunables of the soundness campaign.
#[derive(Debug, Clone)]
pub struct SoundnessConfig {
    /// The generator shape. Must allow traps ([`GenConfig::trap_divisors`])
    /// for the guaranteed-trap claims to ever be exercised.
    pub gen: GenConfig,
    /// Instants executed per seed.
    pub steps: usize,
}

impl Default for SoundnessConfig {
    fn default() -> SoundnessConfig {
        SoundnessConfig {
            gen: GenConfig {
                trap_divisors: true,
                lint_bait_pct: 40,
                ..GenConfig::default()
            },
            steps: 10,
        }
    }
}

/// The strongest trap claim the lint findings make about a program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrapClaim {
    /// `E0110`/`E0111` present: the first step must trap.
    Guaranteed,
    /// `W0102` present (and no guarantee): execution may trap or not.
    Possible,
    /// No trap-related finding: no execution may trap.
    Clean,
}

impl TrapClaim {
    /// The stable token used in reports and JSON.
    pub fn name(self) -> &'static str {
        match self {
            TrapClaim::Guaranteed => "guaranteed-trap",
            TrapClaim::Possible => "possible-trap",
            TrapClaim::Clean => "clean",
        }
    }
}

/// A seed whose execution contradicted the analysis's claim.
#[derive(Debug, Clone)]
pub struct Violation {
    /// The seed (0 for handcrafted sources checked directly).
    pub seed: u64,
    /// The claim that was broken.
    pub claim: TrapClaim,
    /// What actually happened.
    pub detail: String,
    /// The surface Lustre source, as a reproducer.
    pub source: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "seed {}: claim `{}` broken: {}",
            self.seed,
            self.claim.name(),
            self.detail
        )
    }
}

/// The classified result of one seed.
#[derive(Debug, Clone)]
pub enum SeedOutcome {
    /// The compiler rejected the generated source with a coded
    /// diagnostic; there is no claim to check.
    Rejected {
        /// The first diagnostic code.
        code: String,
    },
    /// Execution matched the claim.
    Consistent {
        /// The claim that held.
        claim: TrapClaim,
        /// The step at which execution trapped, if it did.
        trapped: Option<usize>,
    },
    /// Execution contradicted the claim — the unsoundness this oracle
    /// hunts.
    Violated(Violation),
}

/// Aggregate results of a seed range.
#[derive(Debug, Clone, Default)]
pub struct SoundnessReport {
    /// Seeds examined (including rejected ones).
    pub checked: usize,
    /// Seeds the compiler rejected.
    pub rejected: usize,
    /// Accepted seeds claimed `guaranteed-trap`.
    pub guaranteed: usize,
    /// Accepted seeds claimed `possible-trap`.
    pub possible: usize,
    /// Accepted seeds claimed `clean`.
    pub clean: usize,
    /// Accepted seeds whose execution actually trapped.
    pub trapped_runs: usize,
    /// Every broken claim, with reproducers.
    pub violations: Vec<Violation>,
}

impl SoundnessReport {
    /// Whether every claim survived execution.
    pub fn sound(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for SoundnessReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "lint soundness: {} seeds · {} rejected · claims {} guaranteed / {} possible / {} clean · {} trapped runs · {} violations",
            self.checked,
            self.rejected,
            self.guaranteed,
            self.possible,
            self.clean,
            self.trapped_runs,
            self.violations.len()
        )?;
        for v in &self.violations {
            writeln!(f, "  {v}")?;
        }
        Ok(())
    }
}

/// The strongest trap claim in a finding set.
fn claim_of(findings: &Diagnostics) -> TrapClaim {
    let has = |id: &str| findings.iter().any(|d| d.code.id == id);
    if has("E0110") || has("E0111") {
        TrapClaim::Guaranteed
    } else if has("W0102") {
        TrapClaim::Possible
    } else {
        TrapClaim::Clean
    }
}

/// Drives the compiled root step by step for `steps` instants.
///
/// Returns `Ok(None)` for a trap-free run, `Ok(Some(i))` when step `i`
/// trapped (an undefined operation, the only legitimate runtime
/// failure), and `Err` for any *other* execution error — which a
/// well-formed generated program must never produce.
fn drive(
    c: &Compiled,
    inputs: &StreamSet<ClightOps>,
    steps: usize,
) -> Result<Option<usize>, String> {
    let root = c.root;
    let node = c
        .snlustre
        .node(root)
        .ok_or_else(|| format!("root {root} missing from the scheduled program"))?;
    let n_outputs = node.outputs.len();
    let err = |e: ClightError| e.to_string();

    let mut machine = Machine::new(&c.clight).map_err(err)?;
    let selfb = machine.alloc_struct(root).map_err(err)?;
    machine
        .call(method_fn_name(root, reset_name()), &[RVal::Ptr(selfb, 0)])
        .map_err(err)?;
    let outb = if n_outputs >= 2 {
        Some(
            machine
                .alloc_struct(out_struct_name(root, step_name()))
                .map_err(err)?,
        )
    } else {
        None
    };

    for i in 0..steps {
        let mut args = vec![RVal::Ptr(selfb, 0)];
        if let Some(b) = outb {
            args.push(RVal::Ptr(b, 0));
        }
        for stream in inputs {
            match stream.get(i) {
                Some(SVal::Pres(v)) => args.push(RVal::Scalar(*v)),
                other => return Err(format!("input not present at step {i}: {other:?}")),
            }
        }
        match machine.call(method_fn_name(root, step_name()), &args) {
            Ok(_) => {}
            Err(ClightError::UndefinedOperation(_)) => return Ok(Some(i)),
            Err(e) => return Err(format!("non-trap execution error at step {i}: {e}")),
        }
    }
    Ok(None)
}

/// Compiles `source`, lints it, executes it on `inputs`, and holds the
/// execution against the lint claims. All inputs must be present at
/// every one of the `steps` instants.
pub fn check_source(
    seed: u64,
    source: &str,
    root: Option<&str>,
    inputs: &StreamSet<ClightOps>,
    steps: usize,
) -> SeedOutcome {
    let violated = |claim: TrapClaim, detail: String| {
        SeedOutcome::Violated(Violation {
            seed,
            claim,
            detail,
            source: source.to_owned(),
        })
    };

    // Compile, collecting the lint verdicts over the scheduled program
    // (the same findings `velus lint` reports).
    type Linted = Result<(Diagnostics, Compiled), VelusError>;
    let compiled = catch_unwind(AssertUnwindSafe(|| -> Linted {
        let mut observe = |_: velus::Stage, _: std::time::Duration| {};
        let mut staged = StagedPipeline::from_source(source, root, &mut observe)?;
        let findings = staged.lint()?.clone();
        Ok((findings, staged.into_compiled()?))
    }));
    let (findings, compiled) = match compiled {
        Ok(Ok(pair)) => pair,
        Ok(Err(e)) => {
            let code = e
                .diagnostics(&SpanMap::new())
                .iter()
                .next()
                .map_or("E0000", |d| d.code.id)
                .to_owned();
            return SeedOutcome::Rejected { code };
        }
        Err(p) => {
            return violated(
                TrapClaim::Clean,
                format!("compilation panicked: {}", panic_message(p)),
            )
        }
    };
    let claim = claim_of(&findings);

    let run = catch_unwind(AssertUnwindSafe(|| drive(&compiled, inputs, steps)));
    let trapped = match run {
        Ok(Ok(trapped)) => trapped,
        Ok(Err(detail)) => return violated(claim, detail),
        Err(p) => return violated(claim, format!("execution panicked: {}", panic_message(p))),
    };

    match (claim, trapped) {
        // A guaranteed trap executes on every step, so step 0 must
        // already trap; surviving it (or any prefix) breaks the claim.
        (TrapClaim::Guaranteed, Some(0)) => SeedOutcome::Consistent { claim, trapped },
        (TrapClaim::Guaranteed, Some(i)) => violated(
            claim,
            format!(
                "E0110/E0111 claimed a trap on every step, but step 0 ran and step {i} trapped"
            ),
        ),
        (TrapClaim::Guaranteed, None) => violated(
            claim,
            format!("E0110/E0111 claimed a guaranteed trap, but {steps} steps ran clean"),
        ),
        // A clean program may never trap.
        (TrapClaim::Clean, Some(i)) => violated(
            claim,
            format!("no trap-related finding, but execution trapped at step {i}"),
        ),
        // Possible traps are consistent either way; clean runs clean.
        _ => SeedOutcome::Consistent { claim, trapped },
    }
}

/// Generates and checks one seed under `cfg`.
pub fn check_seed(seed: u64, cfg: &SoundnessConfig) -> SeedOutcome {
    let mut rng = StdRng::seed_from_u64(seed);
    let prog = gen_program(&mut rng, &cfg.gen);
    let root = prog.nodes.last().expect("generator emits nodes").name;
    let node = prog.node(root).expect("root exists").clone();
    let source = lustre_source(&prog);
    let inputs = gen_inputs(&mut rng, &node, cfg.steps);
    let root_s = root.to_string();
    check_source(seed, &source, Some(&root_s), &inputs, cfg.steps)
}

/// Runs the oracle over the seed block `[from, from + count)`.
pub fn run_soundness(cfg: &SoundnessConfig, from: u64, count: u64) -> SoundnessReport {
    let mut rep = SoundnessReport::default();
    for seed in from..from.saturating_add(count) {
        rep.checked += 1;
        match check_seed(seed, cfg) {
            SeedOutcome::Rejected { .. } => rep.rejected += 1,
            SeedOutcome::Consistent { claim, trapped } => {
                match claim {
                    TrapClaim::Guaranteed => rep.guaranteed += 1,
                    TrapClaim::Possible => rep.possible += 1,
                    TrapClaim::Clean => rep.clean += 1,
                }
                if trapped.is_some() {
                    rep.trapped_runs += 1;
                }
            }
            SeedOutcome::Violated(v) => rep.violations.push(v),
        }
    }
    rep
}

#[cfg(test)]
mod tests {
    use super::*;
    use velus_ops::CVal;

    fn present(vals: &[i64]) -> Vec<SVal<ClightOps>> {
        vals.iter()
            .map(|v| SVal::Pres(CVal::int(*v as i32)))
            .collect()
    }

    #[test]
    fn a_guaranteed_trap_traps_on_the_first_step() {
        let src = "node f(x: int) returns (y: int) let y = x / 0; tel";
        let inputs = vec![present(&[1, 2, 3])];
        match check_source(0, src, Some("f"), &inputs, 3) {
            SeedOutcome::Consistent {
                claim: TrapClaim::Guaranteed,
                trapped: Some(0),
            } => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn a_clean_program_runs_clean() {
        let src = "node f(x: int) returns (y: int) let y = x / 4; tel";
        let inputs = vec![present(&[-9, 0, 17])];
        match check_source(0, src, Some("f"), &inputs, 3) {
            SeedOutcome::Consistent {
                claim: TrapClaim::Clean,
                trapped: None,
            } => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn a_possible_trap_is_consistent_whether_or_not_it_fires() {
        let src = "node f(x, d: int) returns (y: int) let y = x / d; tel";
        let safe = vec![present(&[8, 9]), present(&[2, 3])];
        match check_source(0, src, Some("f"), &safe, 2) {
            SeedOutcome::Consistent {
                claim: TrapClaim::Possible,
                trapped: None,
            } => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
        let trapping = vec![present(&[8, 9]), present(&[2, 0])];
        match check_source(0, src, Some("f"), &trapping, 2) {
            SeedOutcome::Consistent {
                claim: TrapClaim::Possible,
                trapped: Some(1),
            } => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn the_overflow_trap_is_guaranteed_and_fires() {
        let src = "node f(x: int) returns (y: int) let y = -2147483648 / -1; tel";
        let inputs = vec![present(&[0, 0])];
        match check_source(0, src, Some("f"), &inputs, 2) {
            SeedOutcome::Consistent {
                claim: TrapClaim::Guaranteed,
                trapped: Some(0),
            } => {}
            other => panic!("unexpected outcome: {other:?}"),
        }
    }

    #[test]
    fn the_campaign_is_sound_on_a_seed_block() {
        let cfg = SoundnessConfig::default();
        let rep = run_soundness(&cfg, 0, 60);
        assert!(rep.sound(), "{rep}");
        assert_eq!(rep.checked, 60);
        // The trap-allowing profile must actually exercise the
        // interesting claims: some guaranteed traps, some clean
        // programs, and some runs that really trapped.
        assert!(rep.guaranteed > 0, "{rep}");
        assert!(rep.clean + rep.possible > 0, "{rep}");
        assert!(rep.trapped_runs > 0, "{rep}");
    }
}
