//! Test and benchmark workload generators for the Velus-rs workspace.
//!
//! * [`gen`] — random well-typed, well-clocked N-Lustre programs and
//!   matching input streams, constructed so that the equation order is
//!   already a valid schedule (causality by construction). These power
//!   the differential property tests: dataflow semantics ≡ memory
//!   semantics ≡ Obc ≡ Clight on arbitrary programs.
//! * [`industrial`] — the deterministic generator for the §5 industrial
//!   compile-time experiment: configurable node count, equations per
//!   node, and call fan-in, approximating a ≈6000-node / ≈162000-equation
//!   application.
//! * [`diff`] — stream-set diffing with readable reports.
//! * [`render`] — N-Lustre back to parseable surface Lustre (the
//!   reproducer format of the campaign runner).
//! * [`campaign`] — the differential-semantics campaign engine: per-seed
//!   generate → compile → run the full oracle set, with automatic
//!   shrinking and `.lus` + JSON reproducer records on divergence. The
//!   proptest suite, `velus-bench --bin diff`, and CI all drive this one
//!   implementation.
//! * [`soundness`] — the lint soundness oracle: per-seed generate a
//!   trap-allowing program, compile it, collect the static analyses'
//!   trap claims (`E0110`/`E0111` guaranteed, `W0102` possible, none —
//!   clean), execute the generated Clight under the interpreter, and
//!   fail on any claim the execution contradicts.
//! * [`json`] — a minimal JSON reader for replaying reproducer records.
//! * [`chaos`] — deterministic fault injection for the compilation
//!   service: a [`chaos::ChaosCompiler`] wrapping any compiler with
//!   seeded panics, transient failures, and cancellable delays (the
//!   engine of `velus-bench --bin chaos`).

pub mod campaign;
pub mod chaos;
pub mod diff;
pub mod gen;
pub mod industrial;
pub mod json;
pub mod mutate;
pub mod render;
pub mod soundness;
