//! Test and benchmark workload generators for the Velus-rs workspace.
//!
//! * [`gen`] — random well-typed, well-clocked N-Lustre programs and
//!   matching input streams, constructed so that the equation order is
//!   already a valid schedule (causality by construction). These power
//!   the differential property tests: dataflow semantics ≡ memory
//!   semantics ≡ Obc ≡ Clight on arbitrary programs.
//! * [`industrial`] — the deterministic generator for the §5 industrial
//!   compile-time experiment: configurable node count, equations per
//!   node, and call fan-in, approximating a ≈6000-node / ≈162000-equation
//!   application.
//! * [`diff`] — stream-set diffing with readable reports.

pub mod diff;
pub mod gen;
pub mod industrial;
pub mod mutate;
