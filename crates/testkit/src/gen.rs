//! Random well-formed N-Lustre program generation.
//!
//! Programs are built so that validity holds *by construction*:
//!
//! * typing: every expression is generated at a target type;
//! * clocking: every expression is generated at a target clock, with
//!   `when` wrapping applied when descending from a sub-clock;
//! * causality: `Def`/`Call` equations only read inputs, variables
//!   defined by *earlier* equations, and `fby` variables (which are reads
//!   of the previous instant); `fby` right-hand sides may read anything.
//!   The generated equation order is therefore already a valid schedule,
//!   and the scheduler is exercised by shuffling before compilation.
//!
//! Division and modulo are generated only with non-zero constant
//! divisors other than -1 (`INT_MIN / -1` overflows and is undefined),
//! so generated programs always *have* a dataflow semantics (the
//! theorem being validated is not vacuous). Ordinary integer overflow
//! wraps identically at every level, so it is allowed.

use rand::prelude::*;

use velus_common::Ident;
use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program, VarDecl};
use velus_nlustre::clock::Clock;
use velus_nlustre::streams::{SVal, StreamSet};
use velus_ops::{CBinOp, CConst, CTy, CUnOp, CVal, ClightOps};

/// Tunables for program generation.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Number of nodes (later nodes may call earlier ones).
    pub nodes: usize,
    /// Equations per node (in addition to output definitions).
    pub eqs_per_node: usize,
    /// Maximum expression depth.
    pub expr_depth: usize,
    /// Probability (0–100) that an equation lives on a sub-clock.
    pub subclock_pct: u32,
    /// Whether to generate `real` (f64) arithmetic.
    pub floats: bool,
    /// Probability (0–100) of each lint-bait construct per node: an
    /// unused local, a constant condition, a dead sub-clock, and an
    /// interval-opaque (but provably safe) divisor. Every bait construct
    /// is *total* — flagged by the static analyses yet semantically
    /// harmless — so bait-heavy profiles remain usable by the
    /// differential campaign, whose oracles require the program to have
    /// a dataflow semantics.
    pub lint_bait_pct: u32,
    /// Whether divisors may be arbitrary expressions — including the
    /// constant zero and the `i32::MIN / -1` overflow pattern — instead
    /// of safe non-zero constants. Such programs may trap at runtime;
    /// only the lint soundness oracle ([`crate::soundness`]) enables
    /// this, never the differential campaign.
    pub trap_divisors: bool,
}

impl Default for GenConfig {
    fn default() -> GenConfig {
        GenConfig {
            nodes: 3,
            eqs_per_node: 6,
            expr_depth: 3,
            subclock_pct: 40,
            floats: false,
            lint_bait_pct: 0,
            trap_divisors: false,
        }
    }
}

#[derive(Clone)]
struct VarInfo {
    name: Ident,
    ty: CTy,
    ck: Clock,
    /// Whether reads are unrestricted (inputs, already-defined, fby).
    readable: bool,
}

struct NodeGen<'r, R: Rng> {
    rng: &'r mut R,
    cfg: GenConfig,
    vars: Vec<VarInfo>,
    fresh: u32,
}

impl<R: Rng> NodeGen<'_, R> {
    fn fresh(&mut self, prefix: &str) -> Ident {
        self.fresh += 1;
        Ident::new(&format!("{prefix}{}", self.fresh))
    }

    fn pick_ty(&mut self) -> CTy {
        if self.cfg.floats && self.rng.gen_ratio(1, 4) {
            CTy::F64
        } else if self.rng.gen_ratio(1, 3) {
            CTy::Bool
        } else {
            CTy::I32
        }
    }

    fn const_of(&mut self, ty: CTy) -> CConst {
        match ty {
            CTy::Bool => CConst::bool(self.rng.gen()),
            CTy::F64 => CConst::float(f64::from(self.rng.gen_range(-8i32..8)) / 2.0),
            _ => CConst::int(self.rng.gen_range(-10..10)),
        }
    }

    fn readable_vars(&self, ty: CTy, ck: &Clock) -> Vec<VarInfo> {
        self.vars
            .iter()
            .filter(|v| v.readable && v.ty == ty && v.ck == *ck)
            .cloned()
            .collect()
    }

    /// Generates an expression of type `ty` at clock `ck`.
    fn expr(&mut self, ty: CTy, ck: &Clock, depth: usize) -> Expr<ClightOps> {
        // Leaves: variable on the right clock, a sampled parent-clock
        // expression, or a constant.
        if depth == 0 || self.rng.gen_ratio(1, 3) {
            let candidates = self.readable_vars(ty, ck);
            if let Clock::On(parent, x, k) = ck {
                if self.rng.gen_ratio(1, 2) {
                    let inner = self.expr(ty, parent, depth.saturating_sub(1));
                    return Expr::When(Box::new(inner), *x, *k);
                }
            }
            if !candidates.is_empty() && self.rng.gen_ratio(3, 4) {
                let v = candidates.choose(self.rng).expect("non-empty");
                return Expr::Var(v.name, v.ty);
            }
            return Expr::Const(self.const_of(ty));
        }
        match ty {
            CTy::Bool => match self.rng.gen_range(0..4) {
                0 => Expr::Unop(
                    CUnOp::Not,
                    Box::new(self.expr(CTy::Bool, ck, depth - 1)),
                    CTy::Bool,
                ),
                1 => {
                    let op = *[CBinOp::And, CBinOp::Or, CBinOp::Xor]
                        .choose(self.rng)
                        .expect("non-empty");
                    Expr::Binop(
                        op,
                        Box::new(self.expr(CTy::Bool, ck, depth - 1)),
                        Box::new(self.expr(CTy::Bool, ck, depth - 1)),
                        CTy::Bool,
                    )
                }
                _ => {
                    let operand_ty = if self.cfg.floats && self.rng.gen_ratio(1, 4) {
                        CTy::F64
                    } else {
                        CTy::I32
                    };
                    let op = *[
                        CBinOp::Eq,
                        CBinOp::Ne,
                        CBinOp::Lt,
                        CBinOp::Le,
                        CBinOp::Gt,
                        CBinOp::Ge,
                    ]
                    .choose(self.rng)
                    .expect("non-empty");
                    Expr::Binop(
                        op,
                        Box::new(self.expr(operand_ty, ck, depth - 1)),
                        Box::new(self.expr(operand_ty, ck, depth - 1)),
                        CTy::Bool,
                    )
                }
            },
            CTy::F64 => {
                let op = *[CBinOp::Add, CBinOp::Sub, CBinOp::Mul]
                    .choose(self.rng)
                    .expect("non-empty");
                Expr::Binop(
                    op,
                    Box::new(self.expr(CTy::F64, ck, depth - 1)),
                    Box::new(self.expr(CTy::F64, ck, depth - 1)),
                    CTy::F64,
                )
            }
            _ => match self.rng.gen_range(0..5) {
                0 => Expr::Unop(
                    CUnOp::Neg,
                    Box::new(self.expr(CTy::I32, ck, depth - 1)),
                    CTy::I32,
                ),
                // Division by a non-zero constant only — and never by
                // -1, because the dividend can reach `i32::MIN` at
                // runtime and `INT_MIN / -1` (or `% -1`) overflows, an
                // undefined operation. Both exclusions keep the dataflow
                // semantics total. (The -1 case is not hypothetical: the
                // differential campaign found it at seed 306.)
                //
                // Under `trap_divisors` both exclusions are lifted: the
                // soundness oracle *wants* programs whose divisions can
                // (or must) trap, so it can hold the range analysis's
                // verdicts against real executions.
                1 => {
                    let op = if self.rng.gen() {
                        CBinOp::Div
                    } else {
                        CBinOp::Mod
                    };
                    if self.cfg.trap_divisors && self.rng.gen_ratio(1, 12) {
                        // The overflow trap: `i32::MIN op -1`.
                        return Expr::Binop(
                            op,
                            Box::new(Expr::Const(CConst::int(i32::MIN))),
                            Box::new(Expr::Const(CConst::int(-1))),
                            CTy::I32,
                        );
                    }
                    let divisor = if self.cfg.trap_divisors && self.rng.gen_ratio(1, 2) {
                        if self.rng.gen_ratio(1, 4) {
                            // A certain divide-by-zero wherever it runs.
                            Expr::Const(CConst::int(0))
                        } else {
                            // An arbitrary divisor whose runtime value
                            // may or may not hit 0 (or -1).
                            self.expr(CTy::I32, ck, depth - 1)
                        }
                    } else {
                        let mut d = self.rng.gen_range(1..7);
                        if self.rng.gen() && d != 1 {
                            d = -d;
                        }
                        Expr::Const(CConst::int(d))
                    };
                    Expr::Binop(
                        op,
                        Box::new(self.expr(CTy::I32, ck, depth - 1)),
                        Box::new(divisor),
                        CTy::I32,
                    )
                }
                _ => {
                    let op = *[CBinOp::Add, CBinOp::Sub, CBinOp::Mul]
                        .choose(self.rng)
                        .expect("non-empty");
                    Expr::Binop(
                        op,
                        Box::new(self.expr(CTy::I32, ck, depth - 1)),
                        Box::new(self.expr(CTy::I32, ck, depth - 1)),
                        CTy::I32,
                    )
                }
            },
        }
    }

    /// A control expression: sometimes a mux or (on boolean clocks) a
    /// merge above a simple expression.
    fn cexpr(&mut self, ty: CTy, ck: &Clock, depth: usize) -> CExpr<ClightOps> {
        if depth > 0 && self.rng.gen_ratio(1, 4) {
            let c = self.expr(CTy::Bool, ck, depth - 1);
            return CExpr::If(
                c,
                Box::new(self.cexpr(ty, ck, depth - 1)),
                Box::new(self.cexpr(ty, ck, depth - 1)),
            );
        }
        // A merge requires a boolean variable on this clock.
        if depth > 0 && self.rng.gen_ratio(1, 5) {
            let clock_vars = self.readable_vars(CTy::Bool, ck);
            if let Some(v) = clock_vars.choose(self.rng) {
                let x = v.name;
                let on_t = ck.clone().on(x, true);
                let on_f = ck.clone().on(x, false);
                let t = self.expr(ty, &on_t, depth - 1);
                let f = self.expr(ty, &on_f, depth - 1);
                return CExpr::Merge(x, Box::new(CExpr::Expr(t)), Box::new(CExpr::Expr(f)));
            }
        }
        CExpr::Expr(self.expr(ty, ck, depth))
    }

    fn roll_bait(&mut self) -> bool {
        self.rng.gen_range(0..100) < self.cfg.lint_bait_pct
    }
}

/// Generates a random program. Node `k` may call nodes `0..k`; the last
/// node is the intended root.
pub fn gen_program<R: Rng>(rng: &mut R, cfg: &GenConfig) -> Program<ClightOps> {
    let mut nodes: Vec<Node<ClightOps>> = Vec::new();
    for k in 0..cfg.nodes.max(1) {
        let node = gen_node(rng, cfg, k, &nodes);
        nodes.push(node);
    }
    Program::new(nodes)
}

fn gen_node<R: Rng>(
    rng: &mut R,
    cfg: &GenConfig,
    index: usize,
    earlier: &[Node<ClightOps>],
) -> Node<ClightOps> {
    let name = Ident::new(&format!("n{index}"));
    let mut g = NodeGen {
        rng,
        cfg: cfg.clone(),
        vars: Vec::new(),
        fresh: 0,
    };

    // Inputs: one guaranteed boolean (a clock candidate) plus 1–2 others.
    let mut inputs: Vec<VarDecl<ClightOps>> = Vec::new();
    let b_in = Ident::new(&format!("c{index}"));
    inputs.push(VarDecl {
        name: b_in,
        ty: CTy::Bool,
        ck: Clock::Base,
    });
    let extra = g.rng.gen_range(1..=2);
    for i in 0..extra {
        let ty = if g.cfg.floats && g.rng.gen_ratio(1, 5) {
            CTy::F64
        } else {
            CTy::I32
        };
        inputs.push(VarDecl {
            name: Ident::new(&format!("i{index}_{i}")),
            ty,
            ck: Clock::Base,
        });
    }
    for d in &inputs {
        g.vars.push(VarInfo {
            name: d.name,
            ty: d.ty,
            ck: d.ck.clone(),
            readable: true,
        });
    }

    let mut locals: Vec<VarDecl<ClightOps>> = Vec::new();
    let mut eqs: Vec<Equation<ClightOps>> = Vec::new();

    // Phase 1: declare some fby variables (readable from anywhere).
    let n_fby = g.rng.gen_range(1..=3.min(cfg.eqs_per_node));
    let mut fby_vars: Vec<(Ident, CTy, Clock)> = Vec::new();
    for _ in 0..n_fby {
        let ty = g.pick_ty();
        let x = g.fresh("m");
        let ck = Clock::Base;
        locals.push(VarDecl {
            name: x,
            ty,
            ck: ck.clone(),
        });
        g.vars.push(VarInfo {
            name: x,
            ty,
            ck: ck.clone(),
            readable: true,
        });
        fby_vars.push((x, ty, ck));
    }

    // Phase 2: ordinary equations, possibly on a sub-clock of a readable
    // boolean.
    for _ in 0..cfg.eqs_per_node {
        let use_subclock = g.rng.gen_range(0..100) < cfg.subclock_pct;
        let ck = if use_subclock {
            let clocks: Vec<VarInfo> = g.readable_vars(CTy::Bool, &Clock::Base);
            match clocks.choose(g.rng) {
                Some(v) => Clock::Base.on(v.name, g.rng.gen()),
                None => Clock::Base,
            }
        } else {
            Clock::Base
        };
        // A call to an earlier node?
        if !earlier.is_empty() && g.rng.gen_ratio(1, 4) {
            let callee = earlier.choose(g.rng).expect("non-empty").clone();
            let args: Vec<Expr<ClightOps>> =
                callee.inputs.iter().map(|d| g.expr(d.ty, &ck, 1)).collect();
            let xs: Vec<Ident> = callee
                .outputs
                .iter()
                .map(|d| {
                    let x = g.fresh("r");
                    locals.push(VarDecl {
                        name: x,
                        ty: d.ty,
                        ck: ck.clone(),
                    });
                    g.vars.push(VarInfo {
                        name: x,
                        ty: d.ty,
                        ck: ck.clone(),
                        readable: true,
                    });
                    x
                })
                .collect();
            eqs.push(Equation::Call {
                xs,
                ck,
                node: callee.name,
                args,
            });
            continue;
        }
        let ty = g.pick_ty();
        let x = g.fresh("v");
        let rhs = g.cexpr(ty, &ck, cfg.expr_depth);
        locals.push(VarDecl {
            name: x,
            ty,
            ck: ck.clone(),
        });
        eqs.push(Equation::Def {
            x,
            ck: ck.clone(),
            rhs,
        });
        g.vars.push(VarInfo {
            name: x,
            ty,
            ck,
            readable: true,
        });
    }

    // Phase 2½: lint bait. Each construct below is flagged by one of the
    // static analyses but is *total* — it never traps and never disturbs
    // the streams the outputs read — so bait-enabled profiles stay valid
    // inputs for the differential campaign too.
    if g.cfg.lint_bait_pct > 0 {
        // (a) An unused local (W0104): defined, deliberately not
        // registered readable, so nothing downstream ever reads it.
        if g.roll_bait() {
            let ty = g.pick_ty();
            let x = g.fresh("u");
            let rhs = g.cexpr(ty, &Clock::Base, 1);
            locals.push(VarDecl {
                name: x,
                ty,
                ck: Clock::Base,
            });
            eqs.push(Equation::Def {
                x,
                ck: Clock::Base,
                rhs,
            });
        }
        // (b) A constant condition (W0103): both branches are generated
        // and total, only one is live.
        if g.roll_bait() {
            let ty = g.pick_ty();
            let x = g.fresh("v");
            let rhs = CExpr::If(
                Expr::Const(CConst::bool(g.rng.gen())),
                Box::new(CExpr::Expr(g.expr(ty, &Clock::Base, 1))),
                Box::new(CExpr::Expr(g.expr(ty, &Clock::Base, 1))),
            );
            locals.push(VarDecl {
                name: x,
                ty,
                ck: Clock::Base,
            });
            eqs.push(Equation::Def {
                x,
                ck: Clock::Base,
                rhs,
            });
            g.vars.push(VarInfo {
                name: x,
                ty,
                ck: Clock::Base,
                readable: true,
            });
        }
        // (c) A dead sub-clock (W0106): `z = false; w = e when z(true)`.
        // The equation for `w` is guarded by a clock that is never
        // active, so its body never runs (and may not even be scheduled
        // to read anything live).
        if g.roll_bait() {
            let z = g.fresh("z");
            locals.push(VarDecl {
                name: z,
                ty: CTy::Bool,
                ck: Clock::Base,
            });
            eqs.push(Equation::Def {
                x: z,
                ck: Clock::Base,
                rhs: CExpr::Expr(Expr::Const(CConst::bool(false))),
            });
            g.vars.push(VarInfo {
                name: z,
                ty: CTy::Bool,
                ck: Clock::Base,
                readable: true,
            });
            let dead_ck = Clock::Base.on(z, true);
            let w = g.fresh("w");
            let rhs = CExpr::Expr(g.expr(CTy::I32, &dead_ck, 1));
            locals.push(VarDecl {
                name: w,
                ty: CTy::I32,
                ck: dead_ck.clone(),
            });
            eqs.push(Equation::Def {
                x: w,
                ck: dead_ck,
                rhs,
            });
        }
        // (d) An interval-opaque but provably safe divisor (W0102):
        // `v*v + 1` is never 0 and never -1 in wrapping i32 arithmetic
        // (squares are 0, 1 or 4 mod 8, so v² ≡ -1 and v² ≡ -2 have no
        // solutions mod 2³²), yet the interval analysis sees a
        // full-range divisor and must warn. The program stays total.
        if g.roll_bait() {
            let candidates = g.readable_vars(CTy::I32, &Clock::Base);
            if let Some(v) = candidates.choose(g.rng) {
                let v = Expr::Var(v.name, CTy::I32);
                let vv = Expr::Binop(CBinOp::Mul, Box::new(v.clone()), Box::new(v), CTy::I32);
                let divisor = Expr::Binop(
                    CBinOp::Add,
                    Box::new(vv),
                    Box::new(Expr::Const(CConst::int(1))),
                    CTy::I32,
                );
                let x = g.fresh("q");
                let rhs = CExpr::Expr(Expr::Binop(
                    CBinOp::Div,
                    Box::new(g.expr(CTy::I32, &Clock::Base, 1)),
                    Box::new(divisor),
                    CTy::I32,
                ));
                locals.push(VarDecl {
                    name: x,
                    ty: CTy::I32,
                    ck: Clock::Base,
                });
                eqs.push(Equation::Def {
                    x,
                    ck: Clock::Base,
                    rhs,
                });
                g.vars.push(VarInfo {
                    name: x,
                    ty: CTy::I32,
                    ck: Clock::Base,
                    readable: true,
                });
            }
        }
    }

    // Phase 3: close the fby definitions. Their right-hand sides may read
    // ordinary variables freely, and fby variables only at an index >= k:
    // a `fby` equation reading another delayed variable must be scheduled
    // before that variable's write (the paper's read-before-write rule
    // for memories), so mutual references between delays — e.g.
    // `x = 0 fby y; y = 1 fby x` — admit no schedule and are rejected by
    // the compiler. Restricting reads to later delays keeps the
    // precedence edges acyclic by construction.
    for (k, (x, ty, ck)) in fby_vars.iter().enumerate() {
        if k > 0 {
            let prev = fby_vars[k - 1].0;
            if let Some(v) = g.vars.iter_mut().find(|v| v.name == prev) {
                v.readable = false;
            }
        }
        let init = g.const_of(*ty);
        let rhs = g.expr(*ty, ck, cfg.expr_depth.min(2));
        eqs.push(Equation::Fby {
            x: *x,
            ck: ck.clone(),
            init,
            rhs,
        });
    }
    // Restore readability for the output phase (outputs are Defs, which
    // always precede the fby writes in a valid schedule).
    for (x, _, _) in &fby_vars {
        if let Some(v) = g.vars.iter_mut().find(|v| v.name == *x) {
            v.readable = true;
        }
    }

    // Outputs: defined from whatever is readable on the base clock.
    let n_out = g.rng.gen_range(1..=2);
    let mut outputs = Vec::new();
    for o in 0..n_out {
        let ty = g.pick_ty();
        let y = Ident::new(&format!("o{index}_{o}"));
        let rhs = g.cexpr(ty, &Clock::Base, cfg.expr_depth);
        outputs.push(VarDecl {
            name: y,
            ty,
            ck: Clock::Base,
        });
        eqs.push(Equation::Def {
            x: y,
            ck: Clock::Base,
            rhs,
        });
    }

    Node {
        name,
        inputs,
        outputs,
        locals,
        eqs,
    }
}

/// Generates `n` instants of all-present random inputs for `node`.
pub fn gen_inputs<R: Rng>(rng: &mut R, node: &Node<ClightOps>, n: usize) -> StreamSet<ClightOps> {
    node.inputs
        .iter()
        .map(|d| {
            (0..n)
                .map(|_| {
                    let v = match d.ty {
                        CTy::Bool => CVal::bool(rng.gen()),
                        CTy::F64 => CVal::float(f64::from(rng.gen_range(-16i32..16)) / 4.0),
                        _ => CVal::int(rng.gen_range(-50..50)),
                    };
                    SVal::Pres(v)
                })
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use velus_nlustre::{clockcheck, typecheck};

    #[test]
    fn generated_programs_are_well_formed() {
        for seed in 0..30 {
            let mut rng = StdRng::seed_from_u64(seed);
            let prog = gen_program(&mut rng, &GenConfig::default());
            typecheck::check_program(&prog).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{prog}"));
            clockcheck::check_program_clocks(&prog)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{prog}"));
        }
    }

    #[test]
    fn generated_programs_are_schedulable_and_run() {
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(1000 + seed);
            let mut prog = gen_program(&mut rng, &GenConfig::default());
            velus_nlustre::schedule::schedule_program(&mut prog)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{prog}"));
            let root = prog.nodes.last().expect("nodes").name;
            let node = prog.node(root).unwrap().clone();
            let inputs = gen_inputs(&mut rng, &node, 10);
            velus_nlustre::dataflow::run_node(&prog, root, &inputs, 10)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{prog}"));
        }
    }

    #[test]
    fn lint_bait_programs_stay_total() {
        // Bait-heavy programs must still be well-formed, schedulable and
        // — crucially — *total*: the differential campaign rotates over
        // the lint-rich profile, and its oracles require a dataflow
        // semantics on every input prefix.
        let cfg = GenConfig {
            lint_bait_pct: 100,
            ..GenConfig::default()
        };
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(3000 + seed);
            let mut prog = gen_program(&mut rng, &cfg);
            typecheck::check_program(&prog).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{prog}"));
            clockcheck::check_program_clocks(&prog)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{prog}"));
            velus_nlustre::schedule::schedule_program(&mut prog)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{prog}"));
            let root = prog.nodes.last().expect("nodes").name;
            let node = prog.node(root).unwrap().clone();
            let inputs = gen_inputs(&mut rng, &node, 8);
            velus_nlustre::dataflow::run_node(&prog, root, &inputs, 8)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{prog}"));
        }
    }

    #[test]
    fn trap_divisor_programs_are_well_formed() {
        // Trap-allowing programs may have no dataflow semantics (that is
        // the point), but they must still type- and clock-check: the
        // soundness oracle needs them to reach the code generator.
        let cfg = GenConfig {
            trap_divisors: true,
            lint_bait_pct: 40,
            ..GenConfig::default()
        };
        for seed in 0..20 {
            let mut rng = StdRng::seed_from_u64(4000 + seed);
            let mut prog = gen_program(&mut rng, &cfg);
            typecheck::check_program(&prog).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{prog}"));
            clockcheck::check_program_clocks(&prog)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{prog}"));
            velus_nlustre::schedule::schedule_program(&mut prog)
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{prog}"));
        }
    }

    #[test]
    fn float_generation_is_well_formed_too() {
        let cfg = GenConfig {
            floats: true,
            ..GenConfig::default()
        };
        for seed in 0..10 {
            let mut rng = StdRng::seed_from_u64(2000 + seed);
            let prog = gen_program(&mut rng, &cfg);
            typecheck::check_program(&prog).unwrap();
            clockcheck::check_program_clocks(&prog).unwrap();
        }
    }
}
