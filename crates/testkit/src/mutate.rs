//! Source-level fault injection.
//!
//! [`mutate`] applies one small, random corruption to a Lustre source
//! text — the kind a fat-fingered edit or a broken code generator
//! produces. The companion property (exercised by
//! `tests/diagnostics.rs`) is the diagnostics contract: **every**
//! mutant either still compiles or is rejected with at least one
//! coded, stage-tagged diagnostic — never a panic, never an uncoded
//! string.

use rand::prelude::*;

/// One token-ish chunk of the source: a maximal identifier/number run
/// or a single non-space symbol. Byte offsets into the original text.
fn chunks(source: &str) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    let mut in_word = false;
    for (i, c) in source.char_indices() {
        if c.is_whitespace() {
            in_word = false;
        } else if c.is_ascii_alphanumeric() || c == '_' {
            if in_word {
                out.last_mut().expect("open word").1 = i + c.len_utf8();
            } else {
                out.push((i, i + c.len_utf8()));
                in_word = true;
            }
        } else {
            // A symbol — one chunk per character, whole UTF-8 sequence
            // (comments may contain non-ASCII punctuation).
            out.push((i, i + c.len_utf8()));
            in_word = false;
        }
    }
    out
}

/// Applies one random mutation to `source` and returns the result.
///
/// Mutations (picked uniformly): delete a token, duplicate a token,
/// swap two adjacent tokens, replace an identifier with another
/// identifier occurring in the program, delete one `;`, truncate the
/// source at a token boundary, or insert a stray symbol.
pub fn mutate(source: &str, rng: &mut impl Rng) -> String {
    let chunks = chunks(source);
    if chunks.is_empty() {
        return "@".to_owned();
    }
    match rng.gen_range(0..7u32) {
        // Delete a token.
        0 => {
            let (s, e) = chunks[rng.gen_range(0..chunks.len())];
            format!("{}{}", &source[..s], &source[e..])
        }
        // Duplicate a token (space-separated: `x` becomes `x x`, two
        // adjacent tokens, not one merged identifier `xx`).
        1 => {
            let (s, e) = chunks[rng.gen_range(0..chunks.len())];
            format!("{} {}{}", &source[..e], &source[s..e], &source[e..])
        }
        // Swap two adjacent tokens.
        2 if chunks.len() >= 2 => {
            let k = rng.gen_range(0..chunks.len() - 1);
            let ((s1, e1), (s2, e2)) = (chunks[k], chunks[k + 1]);
            format!(
                "{}{}{}{}{}",
                &source[..s1],
                &source[s2..e2],
                &source[e1..s2],
                &source[s1..e1],
                &source[e2..]
            )
        }
        // Replace an identifier occurrence with another identifier.
        3 => {
            let idents: Vec<(usize, usize)> = chunks
                .iter()
                .copied()
                .filter(|&(s, _)| source.as_bytes()[s].is_ascii_alphabetic())
                .collect();
            if idents.len() < 2 {
                return format!("{source}@");
            }
            let (s, e) = idents[rng.gen_range(0..idents.len())];
            let (rs, re) = idents[rng.gen_range(0..idents.len())];
            format!("{}{}{}", &source[..s], &source[rs..re], &source[e..])
        }
        // Delete one semicolon.
        4 => {
            let semis: Vec<usize> = source.match_indices(';').map(|(at, _)| at).collect();
            match semis.as_slice() {
                [] => format!("{source};"),
                _ => {
                    let at = semis[rng.gen_range(0..semis.len())];
                    format!("{}{}", &source[..at], &source[at + 1..])
                }
            }
        }
        // Truncate at a token boundary.
        5 => {
            let (s, _) = chunks[rng.gen_range(0..chunks.len())];
            source[..s].to_owned()
        }
        // Insert a stray symbol.
        _ => {
            let (s, _) = chunks[rng.gen_range(0..chunks.len())];
            let sym = ['@', '#', '$', '!', '?'][rng.gen_range(0..5usize)];
            format!("{}{sym}{}", &source[..s], &source[s..])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutants_differ_and_are_deterministic_per_seed() {
        let src = "node f(x: int) returns (y: int) let y = x + 1; tel";
        let mut changed = 0;
        for seed in 0..50u64 {
            let a = mutate(src, &mut StdRng::seed_from_u64(seed));
            let b = mutate(src, &mut StdRng::seed_from_u64(seed));
            assert_eq!(a, b, "seed {seed} must be deterministic");
            if a != src {
                changed += 1;
            }
        }
        // Almost every mutation actually changes the text (identifier
        // replacement may pick the same name).
        assert!(changed >= 40, "{changed}");
    }
}
