//! Deterministic fault injection for the compilation service: a
//! [`ChaosCompiler`] wraps any [`Compiler`] and injects seeded panics,
//! transient failures, and delays, keyed on the request *content* so a
//! given `(seed, source)` pair always misbehaves the same way.
//!
//! The fault classes map one-to-one onto the serving layer's
//! fault-tolerance mechanisms, so the chaos bench (`velus-bench --bin
//! chaos`) can drive each of them on purpose:
//!
//! * **sticky panics** — the same input panics on every attempt,
//!   exercising per-request containment and the panic quarantine;
//! * **transient failures** — the *first* attempt on an input fails
//!   with an uncoded (→ transient-class) error and every later attempt
//!   succeeds, exercising retry-with-backoff (the
//!   [`ChaosStats::recovered_transients`] / `injected_transients` ratio
//!   is the bench's retry-success metric);
//! * **delays** — a fixed sleep in ~1 ms slices that watches the
//!   request's [`CancelToken`], exercising deadlines and drain
//!   cancellation inside "compilation".

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use velus_server::{
    ArtifactKind, CancelToken, CompileOutput, CompileRequest, Compiler, FailureReport,
};

/// Fault rates (per mille of requests) and shapes. Rates are applied in
/// order — panic, transient, delay — over one deterministic roll per
/// input, so `panic_per_mille + transient_per_mille + delay_per_mille`
/// must stay ≤ 1000 (the remainder compiles cleanly).
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Seed mixed into every per-input roll: different seeds assign
    /// faults to different inputs.
    pub seed: u64,
    /// Fraction of inputs (per mille) that panic on every attempt.
    pub panic_per_mille: u32,
    /// Fraction of inputs (per mille) whose first attempt fails
    /// transiently.
    pub transient_per_mille: u32,
    /// Fraction of inputs (per mille) delayed before compiling.
    pub delay_per_mille: u32,
    /// How long a delayed input sleeps before compiling.
    pub delay: Duration,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seed: 0,
            panic_per_mille: 20,
            transient_per_mille: 200,
            delay_per_mille: 100,
            delay: Duration::from_millis(5),
        }
    }
}

/// What the injector did so far (all counters monotonic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosStats {
    /// Panics injected (one per *attempt* on a panic-class input).
    pub injected_panics: u64,
    /// Inputs whose first attempt was failed transiently.
    pub injected_transients: u64,
    /// Transiently-failed inputs that later compiled successfully —
    /// `recovered_transients / injected_transients` is the
    /// retry-success rate the chaos bench asserts on.
    pub recovered_transients: u64,
    /// Delays injected (one per attempt on a delay-class input).
    pub injected_delays: u64,
}

/// The error type of a [`ChaosCompiler`]: an injected fault or the
/// wrapped compiler's own failure.
#[derive(Debug)]
pub enum ChaosError<E> {
    /// A fault injected by the chaos layer (never the inner compiler's
    /// fault). The message is uncoded, so the service classifies it as
    /// transient and retries it.
    Injected(&'static str),
    /// The wrapped compiler's own error, passed through.
    Inner(E),
}

impl<E: std::fmt::Display> std::fmt::Display for ChaosError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChaosError::Injected(kind) => write!(f, "chaos: injected {kind}"),
            ChaosError::Inner(e) => e.fmt(f),
        }
    }
}

/// FNV-1a over the request source, mixed with the seed — the same
/// content always rolls the same fault for a given seed, regardless of
/// the request's name.
fn content_digest(source: &str, seed: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for &b in source.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// xorshift64* finalizer: decorrelates the digest bits before the roll.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    Panic,
    Transient,
    Delay,
    None,
}

/// A [`Compiler`] decorator injecting deterministic, seeded faults.
/// Everything else — artifacts, cost hints, failure reports — delegates
/// to the wrapped compiler.
pub struct ChaosCompiler<C> {
    inner: C,
    config: ChaosConfig,
    /// Digests whose transient fault already fired (first attempt
    /// consumed) and those that went on to recover.
    transient_fired: Mutex<HashSet<u64>>,
    transient_recovered: Mutex<HashSet<u64>>,
    injected_panics: AtomicU64,
    injected_transients: AtomicU64,
    recovered_transients: AtomicU64,
    injected_delays: AtomicU64,
}

impl<C> ChaosCompiler<C> {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: C, config: ChaosConfig) -> ChaosCompiler<C> {
        assert!(
            config.panic_per_mille + config.transient_per_mille + config.delay_per_mille <= 1000,
            "fault rates exceed 100%"
        );
        ChaosCompiler {
            inner,
            config,
            transient_fired: Mutex::new(HashSet::new()),
            transient_recovered: Mutex::new(HashSet::new()),
            injected_panics: AtomicU64::new(0),
            injected_transients: AtomicU64::new(0),
            recovered_transients: AtomicU64::new(0),
            injected_delays: AtomicU64::new(0),
        }
    }

    /// The injection counters so far.
    pub fn chaos_stats(&self) -> ChaosStats {
        ChaosStats {
            injected_panics: self.injected_panics.load(Ordering::Relaxed),
            injected_transients: self.injected_transients.load(Ordering::Relaxed),
            recovered_transients: self.recovered_transients.load(Ordering::Relaxed),
            injected_delays: self.injected_delays.load(Ordering::Relaxed),
        }
    }

    /// The fault class a source is assigned under this configuration
    /// (exposed so benches can predict / partition their corpora).
    pub fn is_faulted(&self, source: &str) -> bool {
        self.fault_for(content_digest(source, self.config.seed)) != Fault::None
    }

    fn fault_for(&self, digest: u64) -> Fault {
        let roll = (mix(digest) % 1000) as u32;
        if roll < self.config.panic_per_mille {
            Fault::Panic
        } else if roll < self.config.panic_per_mille + self.config.transient_per_mille {
            Fault::Transient
        } else if roll
            < self.config.panic_per_mille
                + self.config.transient_per_mille
                + self.config.delay_per_mille
        {
            Fault::Delay
        } else {
            Fault::None
        }
    }

    fn run<Out>(
        &self,
        source: &str,
        cancel: Option<&CancelToken>,
        inner: impl FnOnce() -> Result<Out, ChaosError<<C as Compiler>::Error>>,
    ) -> Result<Out, ChaosError<<C as Compiler>::Error>>
    where
        C: Compiler,
    {
        let digest = content_digest(source, self.config.seed);
        match self.fault_for(digest) {
            Fault::Panic => {
                self.injected_panics.fetch_add(1, Ordering::Relaxed);
                panic!("chaos: injected panic");
            }
            Fault::Transient => {
                if self
                    .transient_fired
                    .lock()
                    .expect("chaos lock")
                    .insert(digest)
                {
                    self.injected_transients.fetch_add(1, Ordering::Relaxed);
                    return Err(ChaosError::Injected("transient fault"));
                }
                let out = inner()?;
                if self
                    .transient_recovered
                    .lock()
                    .expect("chaos lock")
                    .insert(digest)
                {
                    self.recovered_transients.fetch_add(1, Ordering::Relaxed);
                }
                Ok(out)
            }
            Fault::Delay => {
                self.injected_delays.fetch_add(1, Ordering::Relaxed);
                // Sleep in short slices, watching the token like a
                // cooperative pipeline would; once cancelled, stop
                // sleeping and let the inner compiler's own pass-boundary
                // check surface the coded condition.
                let mut left = self.config.delay;
                while !left.is_zero() {
                    if cancel.is_some_and(|t| t.state().is_some()) {
                        break;
                    }
                    let slice = left.min(Duration::from_millis(1));
                    std::thread::sleep(slice);
                    left = left.saturating_sub(slice);
                }
                inner()
            }
            Fault::None => inner(),
        }
    }
}

impl<C: Compiler> Compiler for ChaosCompiler<C> {
    type Artifact = C::Artifact;
    type Error = ChaosError<C::Error>;

    fn compile(
        &self,
        req: &CompileRequest,
        kinds: &[ArtifactKind],
    ) -> Result<CompileOutput<C::Artifact>, Self::Error> {
        self.run(&req.source, None, || {
            self.inner.compile(req, kinds).map_err(ChaosError::Inner)
        })
    }

    fn compile_cancellable(
        &self,
        req: &CompileRequest,
        kinds: &[ArtifactKind],
        cancel: &CancelToken,
    ) -> Result<CompileOutput<C::Artifact>, Self::Error> {
        self.run(&req.source, Some(cancel), || {
            self.inner
                .compile_cancellable(req, kinds, cancel)
                .map_err(ChaosError::Inner)
        })
    }

    fn failure_report(&self, req: &CompileRequest, err: &Self::Error) -> FailureReport {
        match err {
            // Uncoded → E0000 → transient class → the service retries.
            ChaosError::Injected(_) => FailureReport::from_message(err.to_string()),
            ChaosError::Inner(e) => self.inner.failure_report(req, e),
        }
    }

    fn cost_hint(&self, req: &CompileRequest) -> u64 {
        self.inner.cost_hint(req)
    }

    fn artifact_bytes(artifact: &C::Artifact) -> usize {
        C::artifact_bytes(artifact)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uppercases the source; never fails on its own.
    struct Upper;

    impl Compiler for Upper {
        type Artifact = String;
        type Error = String;

        fn compile(
            &self,
            req: &CompileRequest,
            kinds: &[ArtifactKind],
        ) -> Result<CompileOutput<String>, String> {
            Ok(CompileOutput::new(
                kinds
                    .iter()
                    .map(|k| (*k, req.source.to_uppercase()))
                    .collect(),
                Vec::new(),
            ))
        }
    }

    fn first_source_with(chaos: &ChaosCompiler<Upper>, fault: Fault) -> String {
        (0..100_000)
            .map(|i| format!("src-{i}"))
            .find(|s| chaos.fault_for(content_digest(s, chaos.config.seed)) == fault)
            .expect("fault class must be reachable at these rates")
    }

    #[test]
    fn faults_are_deterministic_per_seed_and_content() {
        let a = ChaosCompiler::new(Upper, ChaosConfig::default());
        let b = ChaosCompiler::new(Upper, ChaosConfig::default());
        for i in 0..200 {
            let s = format!("prog {i}");
            assert_eq!(
                a.fault_for(content_digest(&s, 0)),
                b.fault_for(content_digest(&s, 0))
            );
        }
        // A different seed shuffles the assignment (at these rates some
        // input must differ within 200 tries).
        let c = ChaosCompiler::new(
            Upper,
            ChaosConfig {
                seed: 1,
                ..ChaosConfig::default()
            },
        );
        assert!(
            (0..200).any(|i| {
                let s = format!("prog {i}");
                a.fault_for(content_digest(&s, 0)) != c.fault_for(content_digest(&s, 1))
            }),
            "seed must influence fault assignment"
        );
    }

    #[test]
    fn transient_faults_fail_once_then_recover() {
        let chaos = ChaosCompiler::new(Upper, ChaosConfig::default());
        let src = first_source_with(&chaos, Fault::Transient);
        let req = CompileRequest::new("t", src);
        let kinds = [ArtifactKind::CCode];
        assert!(matches!(
            chaos.compile(&req, &kinds),
            Err(ChaosError::Injected(_))
        ));
        let out = chaos
            .compile(&req, &kinds)
            .expect("second attempt succeeds");
        assert_eq!(out.artifacts.len(), 1);
        let stats = chaos.chaos_stats();
        assert_eq!(
            (stats.injected_transients, stats.recovered_transients),
            (1, 1)
        );
        // A third attempt does not double-count the recovery.
        let _ = chaos.compile(&req, &kinds);
        assert_eq!(chaos.chaos_stats().recovered_transients, 1);
    }

    #[test]
    fn panic_faults_are_sticky() {
        let chaos = ChaosCompiler::new(Upper, ChaosConfig::default());
        let src = first_source_with(&chaos, Fault::Panic);
        let req = CompileRequest::new("p", src);
        for _ in 0..2 {
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = chaos.compile(&req, &[ArtifactKind::CCode]);
            }));
            assert!(caught.is_err(), "panic-class inputs panic on every attempt");
        }
        assert_eq!(chaos.chaos_stats().injected_panics, 2);
    }

    #[test]
    fn delays_abort_early_when_the_token_fires() {
        let chaos = ChaosCompiler::new(
            Upper,
            ChaosConfig {
                delay: Duration::from_secs(60),
                ..ChaosConfig::default()
            },
        );
        let src = first_source_with(&chaos, Fault::Delay);
        let req = CompileRequest::new("d", src);
        let token = CancelToken::unbounded();
        token.cancel();
        let started = std::time::Instant::now();
        // The 60 s delay collapses because the token is already fired;
        // the inner compiler (which ignores the token) then succeeds.
        let out = chaos.compile_cancellable(&req, &[ArtifactKind::CCode], &token);
        assert!(started.elapsed() < Duration::from_secs(10));
        assert!(out.is_ok());
        assert_eq!(chaos.chaos_stats().injected_delays, 1);
    }

    #[test]
    fn clean_inputs_pass_through_untouched() {
        let chaos = ChaosCompiler::new(Upper, ChaosConfig::default());
        let src = first_source_with(&chaos, Fault::None);
        let out = chaos
            .compile(
                &CompileRequest::new("c", src.clone()),
                &[ArtifactKind::CCode],
            )
            .expect("clean input compiles");
        assert_eq!(out.artifacts[0].1, src.to_uppercase());
        assert_eq!(chaos.chaos_stats(), ChaosStats::default());
    }
}
