//! Property tests of the layout computation and the block memory model:
//! the invariants that the paper's separation-logic development
//! establishes once and for all, checked here over random inputs.

use proptest::prelude::*;
use velus_clight::ctypes::{align_up, CType, Composite, LayoutEnv};
use velus_clight::memory::Mem;
use velus_common::Ident;
use velus_ops::{CTy, CVal};

fn arb_scalar() -> impl Strategy<Value = CTy> {
    prop::sample::select(CTy::ALL.to_vec())
}

fn arb_fields() -> impl Strategy<Value = Vec<CTy>> {
    prop::collection::vec(arb_scalar(), 1..12)
}

fn composite(name: &str, tys: &[CTy]) -> Composite {
    Composite {
        name: Ident::new(name),
        fields: tys
            .iter()
            .enumerate()
            .map(|(i, t)| (Ident::new(&format!("f{i}")), CType::Scalar(*t)))
            .collect(),
    }
}

proptest! {
    /// Every field is aligned, in bounds, and fields are pairwise
    /// disjoint; the struct size is padded to its alignment.
    #[test]
    fn layout_invariants(tys in arb_fields()) {
        let c = composite("s", &tys);
        let env = LayoutEnv::new(vec![c]).unwrap();
        let s = Ident::new("s");
        let layout = env.layout(s).unwrap().clone();
        prop_assert_eq!(layout.size, align_up(layout.size, layout.align));
        let mut ranges: Vec<(u32, u32)> = Vec::new();
        for (i, t) in tys.iter().enumerate() {
            let off = env.field_offset(s, Ident::new(&format!("f{i}"))).unwrap();
            prop_assert_eq!(off % t.align(), 0, "field f{} misaligned", i);
            prop_assert!(off + t.size() <= layout.size, "field f{} out of bounds", i);
            ranges.push((off, off + t.size()));
        }
        ranges.sort();
        for w in ranges.windows(2) {
            prop_assert!(w[0].1 <= w[1].0, "fields overlap: {:?}", w);
        }
    }

    /// A struct-of-struct nests without overlap: the inner struct's
    /// footprint stays inside its field slot.
    #[test]
    fn nested_layouts_stay_in_bounds(inner in arb_fields(), outer in arb_fields()) {
        let ci = composite("inner", &inner);
        let mut co = composite("outer", &outer);
        co.fields.push((Ident::new("sub"), CType::Struct(Ident::new("inner"))));
        let env = LayoutEnv::new(vec![ci, co]).unwrap();
        let o = Ident::new("outer");
        let sub_off = env.field_offset(o, Ident::new("sub")).unwrap();
        let inner_layout = env.layout(Ident::new("inner")).unwrap();
        let outer_layout = env.layout(o).unwrap();
        prop_assert!(sub_off + inner_layout.size <= outer_layout.size);
        prop_assert_eq!(sub_off % inner_layout.align.max(1), 0);
    }

    /// Random well-typed stores followed by loads round-trip, and never
    /// disturb a neighbouring field.
    #[test]
    fn memory_round_trips_disjointly(tys in arb_fields(), seed in any::<u64>()) {
        let c = composite("s", &tys);
        let env = LayoutEnv::new(vec![c]).unwrap();
        let s = Ident::new("s");
        let size = env.layout(s).unwrap().size;
        let mut mem = Mem::new();
        let b = mem.alloc(size.max(1));

        let value_for = |t: CTy, k: u64| -> CVal {
            match t {
                CTy::Bool => CVal::bool(k.is_multiple_of(2)),
                CTy::I8 => CVal::Int((k as i8) as i32),
                CTy::U8 => CVal::Int((k as u8) as i32),
                CTy::I16 => CVal::Int((k as i16) as i32),
                CTy::U16 => CVal::Int((k as u16) as i32),
                CTy::I32 | CTy::U32 => CVal::Int(k as i32),
                CTy::I64 | CTy::U64 => CVal::Long(k as i64),
                CTy::F32 => CVal::single(k as f32),
                CTy::F64 => CVal::float(k as f64),
            }
        };

        // Store a distinct value in every field, then read them all back.
        for (i, t) in tys.iter().enumerate() {
            let off = env.field_offset(s, Ident::new(&format!("f{i}"))).unwrap();
            mem.store(*t, b, off, &value_for(*t, seed ^ i as u64)).unwrap();
        }
        for (i, t) in tys.iter().enumerate() {
            let off = env.field_offset(s, Ident::new(&format!("f{i}"))).unwrap();
            prop_assert_eq!(mem.load(*t, b, off).unwrap(), value_for(*t, seed ^ i as u64));
        }
    }
}
