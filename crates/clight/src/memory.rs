//! A CompCert-style block memory model.
//!
//! Memory is a collection of *blocks*, each a bounded array of bytes.
//! Addresses pair a block identifier with an integer offset — there is no
//! pointer arithmetic across blocks, which is what makes separation
//! reasoning tractable (§4.2). Scalar values are encoded little-endian;
//! every byte tracks an *initialized* bit, so reads of uninitialized
//! memory are errors rather than garbage (CompCert's `Vundef`), and loads
//! and stores check bounds, alignment, and block liveness.

use velus_ops::CTy;
use velus_ops::CVal;

use crate::ClightError;

/// A block identifier.
pub type BlockId = usize;

#[derive(Debug, Clone)]
struct Block {
    bytes: Vec<u8>,
    init: Vec<bool>,
    alive: bool,
}

/// The memory state: a growing collection of blocks.
#[derive(Debug, Clone, Default)]
pub struct Mem {
    blocks: Vec<Block>,
}

impl Mem {
    /// An empty memory.
    pub fn new() -> Mem {
        Mem::default()
    }

    /// Allocates a fresh zero-length-capable block of `size` bytes,
    /// uninitialized.
    pub fn alloc(&mut self, size: u32) -> BlockId {
        let id = self.blocks.len();
        self.blocks.push(Block {
            bytes: vec![0; size as usize],
            init: vec![false; size as usize],
            alive: true,
        });
        id
    }

    /// Frees a block: subsequent accesses fail. Models CompCert's
    /// requirement that ownership of locals be surrendered on return.
    ///
    /// # Errors
    ///
    /// Freeing an unknown or already dead block.
    pub fn free(&mut self, b: BlockId) -> Result<(), ClightError> {
        let blk = self
            .blocks
            .get_mut(b)
            .ok_or_else(|| ClightError::MemoryError(format!("free of unknown block {b}")))?;
        if !blk.alive {
            return Err(ClightError::MemoryError(format!(
                "double free of block {b}"
            )));
        }
        blk.alive = false;
        Ok(())
    }

    /// The size of a block.
    ///
    /// # Errors
    ///
    /// Unknown block.
    pub fn block_size(&self, b: BlockId) -> Result<u32, ClightError> {
        Ok(self
            .blocks
            .get(b)
            .ok_or_else(|| ClightError::MemoryError(format!("unknown block {b}")))?
            .bytes
            .len() as u32)
    }

    fn check_access(&self, b: BlockId, ofs: u32, size: u32, align: u32) -> Result<(), ClightError> {
        let blk = self
            .blocks
            .get(b)
            .ok_or_else(|| ClightError::MemoryError(format!("unknown block {b}")))?;
        if !blk.alive {
            return Err(ClightError::MemoryError(format!(
                "access to freed block {b}"
            )));
        }
        if (ofs as usize) + (size as usize) > blk.bytes.len() {
            return Err(ClightError::MemoryError(format!(
                "out-of-bounds access at block {b}, offset {ofs}, size {size} (block size {})",
                blk.bytes.len()
            )));
        }
        if !ofs.is_multiple_of(align) {
            return Err(ClightError::MemoryError(format!(
                "misaligned access at block {b}, offset {ofs}, alignment {align}"
            )));
        }
        Ok(())
    }

    /// Stores a scalar of type `ty` at `(b, ofs)`.
    ///
    /// # Errors
    ///
    /// Bounds/alignment/liveness violations, or a value not of type `ty`.
    pub fn store(&mut self, ty: CTy, b: BlockId, ofs: u32, v: &CVal) -> Result<(), ClightError> {
        self.check_access(b, ofs, ty.size(), ty.align())?;
        let bytes = encode(ty, v)?;
        let blk = &mut self.blocks[b];
        let start = ofs as usize;
        blk.bytes[start..start + bytes.len()].copy_from_slice(&bytes);
        for i in start..start + bytes.len() {
            blk.init[i] = true;
        }
        Ok(())
    }

    /// Loads a scalar of type `ty` from `(b, ofs)`.
    ///
    /// # Errors
    ///
    /// Bounds/alignment/liveness violations or uninitialized bytes.
    pub fn load(&self, ty: CTy, b: BlockId, ofs: u32) -> Result<CVal, ClightError> {
        self.check_access(b, ofs, ty.size(), ty.align())?;
        let blk = &self.blocks[b];
        let start = ofs as usize;
        let end = start + ty.size() as usize;
        if !blk.init[start..end].iter().all(|&i| i) {
            return Err(ClightError::Uninitialized(format!(
                "load of type {ty} at block {b}, offset {ofs}"
            )));
        }
        decode(ty, &blk.bytes[start..end])
    }

    /// Whether every byte in `[ofs, ofs + size)` of block `b` is within
    /// bounds of a live block.
    pub fn range_valid(&self, b: BlockId, ofs: u32, size: u32) -> bool {
        self.check_access(b, ofs, size, 1).is_ok()
    }
}

/// Encodes a well-typed scalar little-endian.
fn encode(ty: CTy, v: &CVal) -> Result<Vec<u8>, ClightError> {
    let err = || ClightError::ValueError(format!("cannot store {v} at type {ty}"));
    Ok(match (ty, v) {
        (CTy::Bool | CTy::I8 | CTy::U8, CVal::Int(n)) => vec![*n as u8],
        (CTy::I16 | CTy::U16, CVal::Int(n)) => (*n as u16).to_le_bytes().to_vec(),
        (CTy::I32 | CTy::U32, CVal::Int(n)) => (*n as u32).to_le_bytes().to_vec(),
        (CTy::I64 | CTy::U64, CVal::Long(n)) => (*n as u64).to_le_bytes().to_vec(),
        (CTy::F32, CVal::Single(x)) => x.to_bits().to_le_bytes().to_vec(),
        (CTy::F64, CVal::Float(x)) => x.to_bits().to_le_bytes().to_vec(),
        _ => return Err(err()),
    })
}

/// Decodes a scalar stored little-endian, normalizing to the
/// representation invariants of [`CVal`] (sign/zero extension).
fn decode(ty: CTy, bytes: &[u8]) -> Result<CVal, ClightError> {
    Ok(match ty {
        CTy::Bool => {
            let b = bytes[0];
            if b > 1 {
                return Err(ClightError::ValueError(format!(
                    "byte {b} decoded at type bool"
                )));
            }
            CVal::Int(b as i32)
        }
        CTy::I8 => CVal::Int(bytes[0] as i8 as i32),
        CTy::U8 => CVal::Int(bytes[0] as i32),
        CTy::I16 => CVal::Int(i16::from_le_bytes([bytes[0], bytes[1]]) as i32),
        CTy::U16 => CVal::Int(u16::from_le_bytes([bytes[0], bytes[1]]) as i32),
        CTy::I32 | CTy::U32 => {
            CVal::Int(i32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
        }
        CTy::I64 | CTy::U64 => {
            let mut a = [0u8; 8];
            a.copy_from_slice(bytes);
            CVal::Long(i64::from_le_bytes(a))
        }
        CTy::F32 => {
            let mut a = [0u8; 4];
            a.copy_from_slice(bytes);
            CVal::Single(f32::from_bits(u32::from_le_bytes(a)))
        }
        CTy::F64 => {
            let mut a = [0u8; 8];
            a.copy_from_slice(bytes);
            CVal::Float(f64::from_bits(u64::from_le_bytes(a)))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_load_round_trip() {
        let mut m = Mem::new();
        let b = m.alloc(16);
        for (ty, v) in [
            (CTy::I32, CVal::int(-7)),
            (CTy::Bool, CVal::bool(true)),
            (CTy::F64, CVal::float(3.25)),
            (CTy::I64, CVal::long(1 << 40)),
            (CTy::I8, CVal::Int(-5)),
            (CTy::U16, CVal::Int(40000)),
        ] {
            m.store(ty, b, 0, &v).unwrap();
            assert_eq!(m.load(ty, b, 0).unwrap(), v, "{ty}");
        }
    }

    #[test]
    fn uninitialized_reads_fail() {
        let mut m = Mem::new();
        let b = m.alloc(8);
        assert!(matches!(
            m.load(CTy::I32, b, 0),
            Err(ClightError::Uninitialized(_))
        ));
        m.store(CTy::I32, b, 0, &CVal::int(1)).unwrap();
        assert!(m.load(CTy::I32, b, 0).is_ok());
        // Bytes 4..8 still uninitialized.
        assert!(matches!(
            m.load(CTy::I32, b, 4),
            Err(ClightError::Uninitialized(_))
        ));
    }

    #[test]
    fn bounds_and_alignment_are_checked() {
        let mut m = Mem::new();
        let b = m.alloc(8);
        assert!(matches!(
            m.store(CTy::I32, b, 6, &CVal::int(0)),
            Err(ClightError::MemoryError(_))
        ));
        assert!(matches!(
            m.store(CTy::I32, b, 2, &CVal::int(0)),
            Err(ClightError::MemoryError(_))
        ));
    }

    #[test]
    fn freed_blocks_reject_access() {
        let mut m = Mem::new();
        let b = m.alloc(4);
        m.store(CTy::I32, b, 0, &CVal::int(1)).unwrap();
        m.free(b).unwrap();
        assert!(m.load(CTy::I32, b, 0).is_err());
        assert!(m.free(b).is_err());
    }

    #[test]
    fn type_mismatched_stores_fail() {
        let mut m = Mem::new();
        let b = m.alloc(8);
        assert!(matches!(
            m.store(CTy::I32, b, 0, &CVal::float(1.0)),
            Err(ClightError::ValueError(_))
        ));
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let mut m = Mem::new();
        let b = m.alloc(8);
        let nan = CVal::float(f64::from_bits(0x7ff8_dead_beef_0001));
        m.store(CTy::F64, b, 0, &nan).unwrap();
        assert_eq!(m.load(CTy::F64, b, 0).unwrap(), nan);
    }
}
