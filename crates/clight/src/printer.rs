//! Emission of compilable C99 from the Clight AST.
//!
//! The `$` characters of generated names (Fig. 9 uses `tracker$step`,
//! `out$s$step`, …) are kept in the AST for fidelity with the paper but
//! sanitized to `_` here, since `$` is not a standard C identifier
//! character. Volatile globals model the paper's test-mode I/O; an
//! optional stdio `main` is emitted for desktop experimentation.
//!
//! The emitter streams into a **single pre-sized `String`**: every
//! expression, type and statement writes itself into the output buffer
//! (via `fmt::Write` for numeric formatting), so emission performs O(1)
//! allocations per translation unit instead of one per AST node. The
//! buffer is sized from a cheap structural estimate of the program, so
//! even the growth path is rarely taken.

use std::fmt::Write as _;

use velus_common::Ident;
use velus_ops::{CTy, CUnOp, CVal};

use crate::ast::{Expr, Function, Program, Stmt};
use crate::ctypes::CType;

/// How the emitted program performs I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestIo {
    /// Volatile globals only (the form the correctness statement uses).
    Volatile,
    /// A `main` that `scanf`s inputs and `printf`s outputs (the unverified
    /// test entry point of §5).
    Stdio,
}

/// The single-buffer C writer: output text plus the indentation level.
struct Cw {
    buf: String,
    indent: usize,
}

impl Cw {
    fn indent(&mut self) {
        for _ in 0..self.indent * 2 {
            self.buf.push(' ');
        }
    }

    fn nl(&mut self) {
        self.buf.push('\n');
    }

    /// One fully indented line of fixed text.
    fn line(&mut self, text: &str) {
        self.indent();
        self.buf.push_str(text);
        self.nl();
    }

    fn blank(&mut self) {
        self.buf.push('\n');
    }
}

fn sanitize_into(buf: &mut String, x: Ident) {
    for ch in x.as_str().chars() {
        if ch == '$' {
            buf.push_str("__");
        } else {
            buf.push(ch);
        }
    }
}

fn ctype_into(buf: &mut String, ty: &CType) {
    match ty {
        CType::Scalar(t) => buf.push_str(t.c_name()),
        CType::Pointer(t) => {
            ctype_into(buf, t);
            buf.push('*');
        }
        CType::Struct(s) => {
            buf.push_str("struct ");
            sanitize_into(buf, *s);
        }
        CType::Void => buf.push_str("void"),
    }
}

fn literal_into(buf: &mut String, v: &CVal, ty: CTy) {
    // Writing into a String cannot fail; the let-underscores keep the
    // fmt::Write plumbing quiet.
    match (v, ty) {
        (CVal::Int(n), CTy::U32) => {
            let _ = write!(buf, "{}u", *n as u32);
        }
        (CVal::Int(n), _) if *n == i32::MIN => {
            let _ = write!(buf, "({} - 1)", i32::MIN + 1);
        }
        (CVal::Int(n), _) => {
            let _ = write!(buf, "{n}");
        }
        (CVal::Long(n), CTy::U64) => {
            let _ = write!(buf, "{}ull", *n as u64);
        }
        (CVal::Long(n), _) if *n == i64::MIN => {
            let _ = write!(buf, "({}ll - 1)", i64::MIN + 1);
        }
        (CVal::Long(n), _) => {
            let _ = write!(buf, "{n}ll");
        }
        (CVal::Single(x), _) => {
            if x.fract() == 0.0 && x.is_finite() {
                let _ = write!(buf, "{x:.1}f");
            } else {
                let _ = write!(buf, "{x:?}f");
            }
        }
        (CVal::Float(x), _) => {
            if x.fract() == 0.0 && x.is_finite() {
                let _ = write!(buf, "{x:.1}");
            } else {
                let _ = write!(buf, "{x:?}");
            }
        }
    }
}

fn expr_into(buf: &mut String, e: &Expr) {
    match e {
        Expr::Const(v, ty) => literal_into(buf, v, *ty),
        Expr::Temp(x, _) | Expr::Var(x, _) => sanitize_into(buf, *x),
        Expr::Field(a, _, f, _) => {
            expr_into(buf, a);
            buf.push('.');
            sanitize_into(buf, *f);
        }
        Expr::DerefField(p, _, f, _) => {
            buf.push_str("(*");
            expr_into(buf, p);
            buf.push_str(").");
            sanitize_into(buf, *f);
        }
        Expr::AddrOf(a) => {
            buf.push('&');
            expr_into(buf, a);
        }
        Expr::Unop(CUnOp::Not, e1, _) => {
            buf.push_str("(!");
            expr_into(buf, e1);
            buf.push(')');
        }
        Expr::Unop(CUnOp::Neg, e1, _) => {
            buf.push_str("(-");
            expr_into(buf, e1);
            buf.push(')');
        }
        Expr::Unop(CUnOp::Cast(to), e1, _) => {
            buf.push_str("((");
            buf.push_str(to.c_name());
            buf.push(')');
            expr_into(buf, e1);
            buf.push(')');
        }
        Expr::Binop(op, e1, e2, _) => {
            // The Display instance of CBinOp prints the C spelling.
            buf.push('(');
            expr_into(buf, e1);
            let _ = write!(buf, " {op} ");
            expr_into(buf, e2);
            buf.push(')');
        }
    }
}

#[cfg(test)]
fn expr(e: &Expr) -> String {
    let mut buf = String::new();
    expr_into(&mut buf, e);
    buf
}

fn stmt(w: &mut Cw, s: &Stmt) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(lv, e) => {
            w.indent();
            expr_into(&mut w.buf, lv);
            w.buf.push_str(" = ");
            expr_into(&mut w.buf, e);
            w.buf.push(';');
            w.nl();
        }
        Stmt::Set(x, e) => {
            w.indent();
            sanitize_into(&mut w.buf, *x);
            w.buf.push_str(" = ");
            expr_into(&mut w.buf, e);
            w.buf.push(';');
            w.nl();
        }
        Stmt::Call(dest, f, args) => {
            w.indent();
            if let Some(x) = dest {
                sanitize_into(&mut w.buf, *x);
                w.buf.push_str(" = ");
            }
            sanitize_into(&mut w.buf, *f);
            w.buf.push('(');
            for (k, a) in args.iter().enumerate() {
                if k > 0 {
                    w.buf.push_str(", ");
                }
                expr_into(&mut w.buf, a);
            }
            w.buf.push_str(");");
            w.nl();
        }
        Stmt::Seq(a, b) => {
            stmt(w, a);
            stmt(w, b);
        }
        Stmt::If(c, t, f) => {
            w.indent();
            w.buf.push_str("if (");
            expr_into(&mut w.buf, c);
            w.buf.push_str(") {");
            w.nl();
            w.indent += 1;
            stmt(w, t);
            w.indent -= 1;
            if **f != Stmt::Skip {
                w.line("} else {");
                w.indent += 1;
                stmt(w, f);
                w.indent -= 1;
            }
            w.line("}");
        }
        Stmt::VolLoad(x, g, _) => {
            w.indent();
            sanitize_into(&mut w.buf, *x);
            w.buf.push_str(" = ");
            sanitize_into(&mut w.buf, *g);
            w.buf.push(';');
            w.nl();
        }
        Stmt::VolStore(g, e) => {
            w.indent();
            sanitize_into(&mut w.buf, *g);
            w.buf.push_str(" = ");
            expr_into(&mut w.buf, e);
            w.buf.push(';');
            w.nl();
        }
        Stmt::Loop(body) => {
            w.line("for (;;) {");
            w.indent += 1;
            stmt(w, body);
            w.indent -= 1;
            w.line("}");
        }
        Stmt::Return(None) => w.line("return;"),
        Stmt::Return(Some(e)) => {
            w.indent();
            w.buf.push_str("return ");
            expr_into(&mut w.buf, e);
            w.buf.push(';');
            w.nl();
        }
    }
}

fn signature_into(buf: &mut String, f: &Function) {
    ctype_into(buf, &f.ret);
    buf.push(' ');
    sanitize_into(buf, f.name);
    buf.push('(');
    if f.params.is_empty() {
        buf.push_str("void");
    } else {
        for (k, (x, t)) in f.params.iter().enumerate() {
            if k > 0 {
                buf.push_str(", ");
            }
            ctype_into(buf, t);
            buf.push(' ');
            sanitize_into(buf, *x);
        }
    }
    buf.push(')');
}

fn scanf_spec(ty: CTy) -> (&'static str, &'static str) {
    // (scanf format + cast buffer type, printf format)
    match ty {
        CTy::F32 => ("%f", "%f"),
        CTy::F64 => ("%lf", "%f"),
        CTy::I64 => ("%lld", "%lld"),
        CTy::U64 => ("%llu", "%llu"),
        CTy::U32 => ("%u", "%u"),
        _ => ("%d", "%d"),
    }
}

/// One declaration line `<ctype> <name>;` at the current indentation,
/// optionally prefixed (`register `, `volatile `).
fn decl_line(w: &mut Cw, prefix: &str, x: Ident, ty: &CType) {
    w.indent();
    w.buf.push_str(prefix);
    ctype_into(&mut w.buf, ty);
    w.buf.push(' ');
    sanitize_into(&mut w.buf, x);
    w.buf.push(';');
    w.nl();
}

/// A cheap structural size estimate so the output buffer is allocated
/// once up front. Counts are deliberately generous: over-reserving a
/// few hundred bytes is cheaper than re-growing mid-emission.
fn estimate_size(prog: &Program) -> usize {
    fn stmt_atoms(s: &Stmt) -> usize {
        match s {
            Stmt::Seq(a, b) => stmt_atoms(a) + stmt_atoms(b),
            Stmt::If(_, t, f) => 2 + stmt_atoms(t) + stmt_atoms(f),
            Stmt::Loop(b) => 2 + stmt_atoms(b),
            _ => 1,
        }
    }
    let fields: usize = prog.composites.iter().map(|c| c.fields.len() + 2).sum();
    let decls: usize = prog
        .functions
        .iter()
        .map(|f| f.params.len() + f.vars.len() + f.temps.len() + 4)
        .sum();
    let atoms: usize = prog.functions.iter().map(|f| stmt_atoms(&f.body)).sum();
    let vols = prog.volatiles_in.len() + prog.volatiles_out.len();
    256 + 48 * fields + 64 * decls + 56 * atoms + 48 * vols
}

/// Prints the program as a single compilable C translation unit.
pub fn print_program(prog: &Program, io: TestIo) -> String {
    let mut w = Cw {
        buf: String::with_capacity(estimate_size(prog)),
        indent: 0,
    };
    w.line("/* Generated by velus-rs (PLDI'17 Lustre-to-Clight pipeline). */");
    w.line("#include <stdint.h>");
    w.line("#include <stdbool.h>");
    if io == TestIo::Stdio {
        w.line("#include <stdio.h>");
    }
    w.blank();

    // Struct definitions, dependencies first.
    for c in &prog.composites {
        w.buf.push_str("struct ");
        sanitize_into(&mut w.buf, c.name);
        w.buf.push_str(" {");
        w.nl();
        w.indent += 1;
        if c.fields.is_empty() {
            // Strict C99 forbids empty structs; pad with a byte.
            w.line("char velus__unused;");
        }
        for (f, ty) in &c.fields {
            decl_line(&mut w, "", *f, ty);
        }
        w.indent -= 1;
        w.line("};");
        w.blank();
    }

    // Volatile I/O globals.
    for (g, ty) in prog.volatiles_in.iter().chain(&prog.volatiles_out) {
        decl_line(&mut w, "volatile ", *g, &CType::Scalar(*ty));
    }
    if !(prog.volatiles_in.is_empty() && prog.volatiles_out.is_empty()) {
        w.blank();
    }

    // Prototypes (main last, and skipped: defined below).
    for f in &prog.functions {
        if f.name.as_str() == "main" {
            continue;
        }
        w.buf.push_str("static ");
        signature_into(&mut w.buf, f);
        w.buf.push(';');
        w.nl();
    }
    w.blank();

    for f in &prog.functions {
        if f.name.as_str() == "main" {
            continue;
        }
        w.buf.push_str("static ");
        signature_into(&mut w.buf, f);
        w.buf.push_str(" {");
        w.nl();
        w.indent += 1;
        for (x, t) in &f.vars {
            decl_line(&mut w, "", *x, t);
        }
        for (x, t) in &f.temps {
            decl_line(&mut w, "register ", *x, t);
        }
        stmt(&mut w, &f.body);
        w.indent -= 1;
        w.line("}");
        w.blank();
    }

    // The entry point.
    if let Some(main) = prog.function(Ident::new("main")) {
        w.line("int main(void) {");
        w.indent += 1;
        match io {
            TestIo::Volatile => {
                for (x, t) in &main.vars {
                    decl_line(&mut w, "", *x, t);
                }
                for (x, t) in &main.temps {
                    decl_line(&mut w, "register ", *x, t);
                }
                stmt(&mut w, &main.body);
            }
            TestIo::Stdio => {
                // The unverified scanf/printf test harness of §5: read one
                // line of inputs per instant until EOF.
                for (x, t) in &main.vars {
                    decl_line(&mut w, "", *x, t);
                }
                for (x, t) in &main.temps {
                    decl_line(&mut w, "", *x, t);
                }
                // Locate reset call and loop body from the generated
                // main: re-emit with stdio I/O substituted.
                stmt_stdio(&mut w, &main.body, prog);
            }
        }
        w.line("return 0;");
        w.indent -= 1;
        w.line("}");
    }
    w.buf
}

/// Re-emits the generated main with `scanf`/`printf` in place of volatile
/// accesses (the paper's test mode).
fn stmt_stdio(w: &mut Cw, s: &Stmt, prog: &Program) {
    match s {
        Stmt::Loop(body) => {
            // Terminate on EOF of the first scanf.
            w.line("for (;;) {");
            w.indent += 1;
            stmt_stdio(w, body, prog);
            w.indent -= 1;
            w.line("}");
        }
        Stmt::Seq(a, b) => {
            stmt_stdio(w, a, prog);
            stmt_stdio(w, b, prog);
        }
        Stmt::VolLoad(x, g, ty) => {
            let (sf, _) = scanf_spec(*ty);
            let _ = g;
            w.indent();
            if *ty == CTy::Bool {
                w.buf
                    .push_str("{ int velus__tmp; if (scanf(\"%d\", &velus__tmp) != 1) return 0; ");
                sanitize_into(&mut w.buf, *x);
                w.buf.push_str(" = velus__tmp != 0; }");
            } else {
                let _ = write!(w.buf, "if (scanf(\"{sf}\", &");
                sanitize_into(&mut w.buf, *x);
                w.buf.push_str(") != 1) return 0;");
            }
            w.nl();
        }
        Stmt::VolStore(g, e) => {
            let ty = prog
                .volatiles_out
                .iter()
                .find(|(h, _)| h == g)
                .map(|(_, t)| *t)
                .unwrap_or(CTy::I32);
            let (_, pf) = scanf_spec(ty);
            w.indent();
            w.buf.push_str("printf(\"");
            sanitize_into(&mut w.buf, *g);
            let _ = write!(w.buf, " = {pf}\\n\", ");
            expr_into(&mut w.buf, e);
            w.buf.push_str(");");
            w.nl();
        }
        other => stmt(w, other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctypes::Composite;
    use velus_ops::CBinOp;

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn tiny_program() -> Program {
        Program {
            composites: vec![Composite {
                name: id("st"),
                fields: vec![(id("c"), CType::Scalar(CTy::I32))],
            }],
            functions: vec![Function {
                name: id("st$step"),
                params: vec![
                    (id("self"), CType::ptr_to_struct(id("st"))),
                    (id("x"), CType::Scalar(CTy::I32)),
                ],
                vars: vec![],
                temps: vec![(id("n"), CType::Scalar(CTy::I32))],
                ret: CType::Scalar(CTy::I32),
                body: Stmt::seq_all(vec![
                    Stmt::Set(
                        id("n"),
                        Expr::Binop(
                            CBinOp::Add,
                            Box::new(Expr::DerefField(
                                Box::new(Expr::Temp(id("self"), CType::ptr_to_struct(id("st")))),
                                id("st"),
                                id("c"),
                                CType::Scalar(CTy::I32),
                            )),
                            Box::new(Expr::Temp(id("x"), CType::Scalar(CTy::I32))),
                            CTy::I32,
                        ),
                    ),
                    Stmt::Return(Some(Expr::Temp(id("n"), CType::Scalar(CTy::I32)))),
                ]),
            }],
            volatiles_in: vec![(id("in$x"), CTy::I32)],
            volatiles_out: vec![(id("out$n"), CTy::I32)],
        }
    }

    #[test]
    fn emits_sanitized_c() {
        let c = print_program(&tiny_program(), TestIo::Volatile);
        assert!(c.contains("struct st {"), "{c}");
        assert!(
            c.contains("static int32_t st__step(struct st* self, int32_t x)"),
            "{c}"
        );
        assert!(c.contains("(*self).c"), "{c}");
        assert!(c.contains("volatile int32_t in__x;"), "{c}");
        assert!(!c.contains('$'), "no dollar signs in C output:\n{c}");
    }

    #[test]
    fn booleans_and_floats_have_c_spellings() {
        let e = Expr::Binop(
            CBinOp::And,
            Box::new(Expr::Const(CVal::bool(true), CTy::Bool)),
            Box::new(Expr::Const(CVal::bool(false), CTy::Bool)),
            CTy::Bool,
        );
        assert_eq!(expr(&e), "(1 & 0)");
        assert_eq!(expr(&Expr::Const(CVal::float(1.0), CTy::F64)), "1.0");
        assert_eq!(expr(&Expr::Const(CVal::float(2.5), CTy::F64)), "2.5");
    }

    #[test]
    fn int_min_is_emitted_without_overflow() {
        assert_eq!(
            expr(&Expr::Const(CVal::int(i32::MIN), CTy::I32)),
            "(-2147483647 - 1)"
        );
    }

    #[test]
    fn casts_print_as_c_casts() {
        let e = Expr::Unop(
            CUnOp::Cast(CTy::I8),
            Box::new(Expr::Const(CVal::int(300), CTy::I32)),
            CTy::I8,
        );
        assert_eq!(expr(&e), "((int8_t)300)");
    }

    #[test]
    fn output_fits_the_presized_buffer() {
        // The estimate must cover the real output: emission should not
        // re-grow the buffer (the whole point of pre-sizing).
        let prog = tiny_program();
        for io in [TestIo::Volatile, TestIo::Stdio] {
            let c = print_program(&prog, io);
            assert!(
                c.len() <= estimate_size(&prog),
                "estimate {} too small for {} bytes",
                estimate_size(&prog),
                c.len()
            );
        }
    }
}
