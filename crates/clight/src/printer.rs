//! Emission of compilable C99 from the Clight AST.
//!
//! The `$` characters of generated names (Fig. 9 uses `tracker$step`,
//! `out$s$step`, …) are kept in the AST for fidelity with the paper but
//! sanitized to `_` here, since `$` is not a standard C identifier
//! character. Volatile globals model the paper's test-mode I/O; an
//! optional stdio `main` is emitted for desktop experimentation.

use velus_common::pretty::Printer;
use velus_common::Ident;
use velus_ops::{CTy, CUnOp, CVal};

use crate::ast::{Expr, Function, Program, Stmt};
use crate::ctypes::CType;

/// How the emitted program performs I/O.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TestIo {
    /// Volatile globals only (the form the correctness statement uses).
    Volatile,
    /// A `main` that `scanf`s inputs and `printf`s outputs (the unverified
    /// test entry point of §5).
    Stdio,
}

fn sanitize(x: Ident) -> String {
    x.as_str().replace('$', "__")
}

fn ctype(ty: &CType) -> String {
    match ty {
        CType::Scalar(t) => t.c_name().to_owned(),
        CType::Pointer(t) => format!("{}*", ctype(t)),
        CType::Struct(s) => format!("struct {}", sanitize(*s)),
        CType::Void => "void".to_owned(),
    }
}

fn literal(v: &CVal, ty: CTy) -> String {
    match (v, ty) {
        (CVal::Int(n), CTy::U32) => format!("{}u", *n as u32),
        (CVal::Int(n), _) if *n == i32::MIN => format!("({} - 1)", i32::MIN + 1),
        (CVal::Int(n), _) => format!("{n}"),
        (CVal::Long(n), CTy::U64) => format!("{}ull", *n as u64),
        (CVal::Long(n), _) if *n == i64::MIN => format!("({}ll - 1)", i64::MIN + 1),
        (CVal::Long(n), _) => format!("{n}ll"),
        (CVal::Single(x), _) => {
            if x.fract() == 0.0 && x.is_finite() {
                format!("{x:.1}f")
            } else {
                format!("{x:?}f")
            }
        }
        (CVal::Float(x), _) => {
            if x.fract() == 0.0 && x.is_finite() {
                format!("{x:.1}")
            } else {
                format!("{x:?}")
            }
        }
    }
}

fn expr(e: &Expr) -> String {
    match e {
        Expr::Const(v, ty) => literal(v, *ty),
        Expr::Temp(x, _) | Expr::Var(x, _) => sanitize(*x),
        Expr::Field(a, _, f, _) => format!("{}.{}", expr(a), sanitize(*f)),
        Expr::DerefField(p, _, f, _) => format!("(*{}).{}", expr(p), sanitize(*f)),
        Expr::AddrOf(a) => format!("&{}", expr(a)),
        Expr::Unop(CUnOp::Not, e1, _) => format!("(!{})", expr(e1)),
        Expr::Unop(CUnOp::Neg, e1, _) => format!("(-{})", expr(e1)),
        Expr::Unop(CUnOp::Cast(to), e1, _) => format!("(({}){})", to.c_name(), expr(e1)),
        Expr::Binop(op, e1, e2, _) => {
            // The Display instance of CBinOp prints the C spelling.
            format!("({} {op} {})", expr(e1), expr(e2))
        }
    }
}

fn stmt(p: &mut Printer, s: &Stmt) {
    match s {
        Stmt::Skip => {}
        Stmt::Assign(lv, e) => p.line(format!("{} = {};", expr(lv), expr(e))),
        Stmt::Set(x, e) => p.line(format!("{} = {};", sanitize(*x), expr(e))),
        Stmt::Call(dest, f, args) => {
            let args: Vec<String> = args.iter().map(expr).collect();
            let call = format!("{}({})", sanitize(*f), args.join(", "));
            match dest {
                Some(x) => p.line(format!("{} = {call};", sanitize(*x))),
                None => p.line(format!("{call};")),
            }
        }
        Stmt::Seq(a, b) => {
            stmt(p, a);
            stmt(p, b);
        }
        Stmt::If(c, t, f) => {
            p.line(format!("if ({}) {{", expr(c)));
            p.block(|p| stmt(p, t));
            if **f != Stmt::Skip {
                p.line("} else {");
                p.block(|p| stmt(p, f));
            }
            p.line("}");
        }
        Stmt::VolLoad(x, g, _) => p.line(format!("{} = {};", sanitize(*x), sanitize(*g))),
        Stmt::VolStore(g, e) => p.line(format!("{} = {};", sanitize(*g), expr(e))),
        Stmt::Loop(body) => {
            p.line("for (;;) {");
            p.block(|p| stmt(p, body));
            p.line("}");
        }
        Stmt::Return(None) => p.line("return;"),
        Stmt::Return(Some(e)) => p.line(format!("return {};", expr(e))),
    }
}

fn signature(f: &Function) -> String {
    let params: Vec<String> = f
        .params
        .iter()
        .map(|(x, t)| format!("{} {}", ctype(t), sanitize(*x)))
        .collect();
    let params = if params.is_empty() {
        "void".to_owned()
    } else {
        params.join(", ")
    };
    format!("{} {}({})", ctype(&f.ret), sanitize(f.name), params)
}

fn scanf_spec(ty: CTy) -> (&'static str, &'static str) {
    // (scanf format + cast buffer type, printf format)
    match ty {
        CTy::F32 => ("%f", "%f"),
        CTy::F64 => ("%lf", "%f"),
        CTy::I64 => ("%lld", "%lld"),
        CTy::U64 => ("%llu", "%llu"),
        CTy::U32 => ("%u", "%u"),
        _ => ("%d", "%d"),
    }
}

/// Prints the program as a single compilable C translation unit.
pub fn print_program(prog: &Program, io: TestIo) -> String {
    let mut p = Printer::new();
    p.line("/* Generated by velus-rs (PLDI'17 Lustre-to-Clight pipeline). */");
    p.line("#include <stdint.h>");
    p.line("#include <stdbool.h>");
    if io == TestIo::Stdio {
        p.line("#include <stdio.h>");
    }
    p.blank();

    // Struct definitions, dependencies first.
    for c in &prog.composites {
        p.line(format!("struct {} {{", sanitize(c.name)));
        p.block(|p| {
            if c.fields.is_empty() {
                // Strict C99 forbids empty structs; pad with a byte.
                p.line("char velus__unused;");
            }
            for (f, ty) in &c.fields {
                p.line(format!("{} {};", ctype(ty), sanitize(*f)));
            }
        });
        p.line("};");
        p.blank();
    }

    // Volatile I/O globals.
    for (g, ty) in prog.volatiles_in.iter().chain(&prog.volatiles_out) {
        p.line(format!("volatile {} {};", ty.c_name(), sanitize(*g)));
    }
    if !(prog.volatiles_in.is_empty() && prog.volatiles_out.is_empty()) {
        p.blank();
    }

    // Prototypes (main last, and skipped: defined below).
    for f in &prog.functions {
        if f.name.as_str() == "main" {
            continue;
        }
        p.line(format!("static {};", signature(f)));
    }
    p.blank();

    for f in &prog.functions {
        if f.name.as_str() == "main" {
            continue;
        }
        p.line(format!("static {} {{", signature(f)));
        p.block(|p| {
            for (x, t) in &f.vars {
                p.line(format!("{} {};", ctype(t), sanitize(*x)));
            }
            for (x, t) in &f.temps {
                p.line(format!("register {} {};", ctype(t), sanitize(*x)));
            }
            stmt(p, &f.body);
        });
        p.line("}");
        p.blank();
    }

    // The entry point.
    if let Some(main) = prog.function(Ident::new("main")) {
        match io {
            TestIo::Volatile => {
                p.line("int main(void) {");
                p.block(|p| {
                    for (x, t) in &main.vars {
                        p.line(format!("{} {};", ctype(t), sanitize(*x)));
                    }
                    for (x, t) in &main.temps {
                        p.line(format!("register {} {};", ctype(t), sanitize(*x)));
                    }
                    stmt(p, &main.body);
                    p.line("return 0;");
                });
                p.line("}");
            }
            TestIo::Stdio => {
                // The unverified scanf/printf test harness of §5: read one
                // line of inputs per instant until EOF.
                p.line("int main(void) {");
                p.block(|p| {
                    for (x, t) in &main.vars {
                        p.line(format!("{} {};", ctype(t), sanitize(*x)));
                    }
                    for (x, t) in &main.temps {
                        p.line(format!("{} {};", ctype(t), sanitize(*x)));
                    }
                    // Locate reset call and loop body from the generated
                    // main: re-emit with stdio I/O substituted.
                    stmt_stdio(p, &main.body, prog);
                    p.line("return 0;");
                });
                p.line("}");
            }
        }
    }
    p.finish()
}

/// Re-emits the generated main with `scanf`/`printf` in place of volatile
/// accesses (the paper's test mode).
fn stmt_stdio(p: &mut Printer, s: &Stmt, prog: &Program) {
    match s {
        Stmt::Loop(body) => {
            // Terminate on EOF of the first scanf.
            p.line("for (;;) {");
            p.block(|p| stmt_stdio(p, body, prog));
            p.line("}");
        }
        Stmt::Seq(a, b) => {
            stmt_stdio(p, a, prog);
            stmt_stdio(p, b, prog);
        }
        Stmt::VolLoad(x, g, ty) => {
            let (sf, _) = scanf_spec(*ty);
            let _ = g;
            if *ty == CTy::Bool {
                p.line(format!("{{ int velus__tmp; if (scanf(\"%d\", &velus__tmp) != 1) return 0; {} = velus__tmp != 0; }}", sanitize(*x)));
            } else {
                p.line(format!(
                    "if (scanf(\"{sf}\", &{}) != 1) return 0;",
                    sanitize(*x)
                ));
            }
        }
        Stmt::VolStore(g, e) => {
            let ty = prog
                .volatiles_out
                .iter()
                .find(|(h, _)| h == g)
                .map(|(_, t)| *t)
                .unwrap_or(CTy::I32);
            let (_, pf) = scanf_spec(ty);
            p.line(format!(
                "printf(\"{} = {pf}\\n\", {});",
                sanitize(*g),
                expr(e)
            ));
        }
        other => stmt(p, other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctypes::Composite;
    use velus_ops::CBinOp;

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    fn tiny_program() -> Program {
        Program {
            composites: vec![Composite {
                name: id("st"),
                fields: vec![(id("c"), CType::Scalar(CTy::I32))],
            }],
            functions: vec![Function {
                name: id("st$step"),
                params: vec![
                    (id("self"), CType::ptr_to_struct(id("st"))),
                    (id("x"), CType::Scalar(CTy::I32)),
                ],
                vars: vec![],
                temps: vec![(id("n"), CType::Scalar(CTy::I32))],
                ret: CType::Scalar(CTy::I32),
                body: Stmt::seq_all(vec![
                    Stmt::Set(
                        id("n"),
                        Expr::Binop(
                            CBinOp::Add,
                            Box::new(Expr::DerefField(
                                Box::new(Expr::Temp(id("self"), CType::ptr_to_struct(id("st")))),
                                id("st"),
                                id("c"),
                                CType::Scalar(CTy::I32),
                            )),
                            Box::new(Expr::Temp(id("x"), CType::Scalar(CTy::I32))),
                            CTy::I32,
                        ),
                    ),
                    Stmt::Return(Some(Expr::Temp(id("n"), CType::Scalar(CTy::I32)))),
                ]),
            }],
            volatiles_in: vec![(id("in$x"), CTy::I32)],
            volatiles_out: vec![(id("out$n"), CTy::I32)],
        }
    }

    #[test]
    fn emits_sanitized_c() {
        let c = print_program(&tiny_program(), TestIo::Volatile);
        assert!(c.contains("struct st {"), "{c}");
        assert!(
            c.contains("static int32_t st__step(struct st* self, int32_t x)"),
            "{c}"
        );
        assert!(c.contains("(*self).c"), "{c}");
        assert!(c.contains("volatile int32_t in__x;"), "{c}");
        assert!(!c.contains('$'), "no dollar signs in C output:\n{c}");
    }

    #[test]
    fn booleans_and_floats_have_c_spellings() {
        let e = Expr::Binop(
            CBinOp::And,
            Box::new(Expr::Const(CVal::bool(true), CTy::Bool)),
            Box::new(Expr::Const(CVal::bool(false), CTy::Bool)),
            CTy::Bool,
        );
        assert_eq!(expr(&e), "(1 & 0)");
        assert_eq!(expr(&Expr::Const(CVal::float(1.0), CTy::F64)), "1.0");
        assert_eq!(expr(&Expr::Const(CVal::float(2.5), CTy::F64)), "2.5");
    }

    #[test]
    fn int_min_is_emitted_without_overflow() {
        assert_eq!(
            expr(&Expr::Const(CVal::int(i32::MIN), CTy::I32)),
            "(-2147483647 - 1)"
        );
    }

    #[test]
    fn casts_print_as_c_casts() {
        let e = Expr::Unop(
            CUnOp::Cast(CTy::I8),
            Box::new(Expr::Const(CVal::int(300), CTy::I32)),
            CTy::I8,
        );
        assert_eq!(expr(&e), "((int8_t)300)");
    }
}
