//! Clight types and C ABI layout (armv7: 32-bit pointers, natural scalar
//! alignment).
//!
//! The generation pass "changes the representation of program memories
//! \[to\] nested records in the target Clight program, and the concomitant
//! details of alignment, padding, and aliasing must be confronted" (§2.3).
//! This module owns those details: struct layouts with per-field offsets,
//! sizes and alignments computed once and cached in a [`LayoutEnv`].

use velus_common::{Ident, IdentMap};
use velus_ops::CTy;

use crate::ClightError;

/// Pointer size/alignment on the modeled target (armv7).
pub const PTR_SIZE: u32 = 4;

/// A Clight type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CType {
    /// A scalar (integer, boolean or float) type.
    Scalar(CTy),
    /// A pointer to a value of the given type.
    Pointer(Box<CType>),
    /// A named struct.
    Struct(Ident),
    /// The void type (function returns only).
    Void,
}

impl CType {
    /// Shorthand for a pointer to a named struct.
    pub fn ptr_to_struct(name: Ident) -> CType {
        CType::Pointer(Box::new(CType::Struct(name)))
    }

    /// The scalar type, if this is a scalar.
    pub fn as_scalar(&self) -> Option<CTy> {
        match self {
            CType::Scalar(t) => Some(*t),
            _ => None,
        }
    }
}

impl std::fmt::Display for CType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CType::Scalar(t) => write!(f, "{}", t.c_name()),
            CType::Pointer(t) => write!(f, "{t}*"),
            CType::Struct(s) => write!(f, "struct {s}"),
            CType::Void => f.write_str("void"),
        }
    }
}

/// A struct definition: named, ordered fields.
#[derive(Debug, Clone, PartialEq)]
pub struct Composite {
    /// Struct name.
    pub name: Ident,
    /// Fields in declaration order.
    pub fields: Vec<(Ident, CType)>,
}

/// The computed layout of one struct.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Layout {
    /// Total size in bytes (padded to the alignment).
    pub size: u32,
    /// Alignment in bytes.
    pub align: u32,
    /// Field name → offset in bytes.
    pub offsets: IdentMap<u32>,
}

/// Rounds `off` up to a multiple of `align`.
pub fn align_up(off: u32, align: u32) -> u32 {
    debug_assert!(align.is_power_of_two());
    (off + align - 1) & !(align - 1)
}

/// A set of struct definitions with cached layouts.
#[derive(Debug, Clone, Default)]
pub struct LayoutEnv {
    composites: IdentMap<Composite>,
    layouts: IdentMap<Layout>,
    /// Declaration order, dependencies first (as supplied).
    pub order: Vec<Ident>,
}

impl LayoutEnv {
    /// Builds layouts for `composites`, which must be topologically
    /// ordered (a struct's field structs declared before it).
    ///
    /// # Errors
    ///
    /// [`ClightError::UnknownStruct`] if a field references an undeclared
    /// struct.
    pub fn new(composites: Vec<Composite>) -> Result<LayoutEnv, ClightError> {
        let mut env = LayoutEnv::default();
        for c in composites {
            let layout = env.compute_layout(&c)?;
            env.order.push(c.name);
            env.layouts.insert(c.name, layout);
            env.composites.insert(c.name, c);
        }
        Ok(env)
    }

    fn compute_layout(&self, c: &Composite) -> Result<Layout, ClightError> {
        let mut off = 0u32;
        let mut align = 1u32;
        let mut offsets = IdentMap::default();
        for (f, ty) in &c.fields {
            let (fsize, falign) = self.size_align(ty)?;
            off = align_up(off, falign);
            offsets.insert(*f, off);
            off += fsize;
            align = align.max(falign);
        }
        Ok(Layout {
            size: align_up(off, align),
            align,
            offsets,
        })
    }

    /// The size and alignment of a type.
    ///
    /// # Errors
    ///
    /// [`ClightError::UnknownStruct`] for undeclared structs;
    /// [`ClightError::Malformed`] for `void`.
    pub fn size_align(&self, ty: &CType) -> Result<(u32, u32), ClightError> {
        match ty {
            CType::Scalar(t) => Ok((t.size(), t.align())),
            CType::Pointer(_) => Ok((PTR_SIZE, PTR_SIZE)),
            CType::Struct(s) => {
                let l = self.layouts.get(s).ok_or(ClightError::UnknownStruct(*s))?;
                Ok((l.size, l.align))
            }
            CType::Void => Err(ClightError::Malformed("sizeof(void)".to_owned())),
        }
    }

    /// The byte size of a type.
    ///
    /// # Errors
    ///
    /// See [`LayoutEnv::size_align`].
    pub fn sizeof(&self, ty: &CType) -> Result<u32, ClightError> {
        Ok(self.size_align(ty)?.0)
    }

    /// The offset of field `f` in struct `s` (CompCert's `field_offset`).
    ///
    /// # Errors
    ///
    /// Unknown struct or field.
    pub fn field_offset(&self, s: Ident, f: Ident) -> Result<u32, ClightError> {
        let l = self.layouts.get(&s).ok_or(ClightError::UnknownStruct(s))?;
        l.offsets
            .get(&f)
            .copied()
            .ok_or(ClightError::UnknownField(s, f))
    }

    /// The type of field `f` in struct `s`.
    ///
    /// # Errors
    ///
    /// Unknown struct or field.
    pub fn field_type(&self, s: Ident, f: Ident) -> Result<CType, ClightError> {
        let c = self
            .composites
            .get(&s)
            .ok_or(ClightError::UnknownStruct(s))?;
        c.fields
            .iter()
            .find(|(x, _)| *x == f)
            .map(|(_, t)| t.clone())
            .ok_or(ClightError::UnknownField(s, f))
    }

    /// The definition of struct `s`.
    ///
    /// # Errors
    ///
    /// Unknown struct.
    pub fn composite(&self, s: Ident) -> Result<&Composite, ClightError> {
        self.composites.get(&s).ok_or(ClightError::UnknownStruct(s))
    }

    /// The cached layout of struct `s`.
    ///
    /// # Errors
    ///
    /// Unknown struct.
    pub fn layout(&self, s: Ident) -> Result<&Layout, ClightError> {
        self.layouts.get(&s).ok_or(ClightError::UnknownStruct(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    #[test]
    fn padding_and_alignment() {
        // struct s { int8_t a; double b; int32_t c; }
        // a at 0, b at 8 (padding 7), c at 16, size 24, align 8.
        let env = LayoutEnv::new(vec![Composite {
            name: id("s"),
            fields: vec![
                (id("a"), CType::Scalar(CTy::I8)),
                (id("b"), CType::Scalar(CTy::F64)),
                (id("c"), CType::Scalar(CTy::I32)),
            ],
        }])
        .unwrap();
        assert_eq!(env.field_offset(id("s"), id("a")).unwrap(), 0);
        assert_eq!(env.field_offset(id("s"), id("b")).unwrap(), 8);
        assert_eq!(env.field_offset(id("s"), id("c")).unwrap(), 16);
        let l = env.layout(id("s")).unwrap();
        assert_eq!((l.size, l.align), (24, 8));
    }

    #[test]
    fn nested_structs() {
        // struct inner { int32_t x; };
        // struct outer { int8_t t; struct inner i; };
        let env = LayoutEnv::new(vec![
            Composite {
                name: id("inner"),
                fields: vec![(id("x"), CType::Scalar(CTy::I32))],
            },
            Composite {
                name: id("outer"),
                fields: vec![
                    (id("t"), CType::Scalar(CTy::I8)),
                    (id("i"), CType::Struct(id("inner"))),
                ],
            },
        ])
        .unwrap();
        assert_eq!(env.field_offset(id("outer"), id("i")).unwrap(), 4);
        assert_eq!(env.layout(id("outer")).unwrap().size, 8);
    }

    #[test]
    fn pointers_are_word_sized() {
        let env = LayoutEnv::new(vec![]).unwrap();
        let p = CType::Pointer(Box::new(CType::Scalar(CTy::F64)));
        assert_eq!(env.size_align(&p).unwrap(), (4, 4));
    }

    #[test]
    fn forward_references_are_rejected() {
        let r = LayoutEnv::new(vec![Composite {
            name: id("a"),
            fields: vec![(id("f"), CType::Struct(id("b")))],
        }]);
        assert!(matches!(r, Err(ClightError::UnknownStruct(_))));
    }

    #[test]
    fn empty_struct_has_zero_size() {
        let env = LayoutEnv::new(vec![Composite {
            name: id("e"),
            fields: vec![],
        }])
        .unwrap();
        assert_eq!(env.layout(id("e")).unwrap().size, 0);
    }

    #[test]
    fn align_up_works() {
        assert_eq!(align_up(0, 8), 0);
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 4), 12);
    }
}
