//! A Clight subset with a block-based memory model, separation
//! assertions, a big-step interpreter, generation from Obc, and a C
//! pretty-printer (PLDI'17 §4).
//!
//! The paper generates Clight — the C subset whose compilation CompCert
//! verifies — and reasons about the generated code in CompCert's
//! byte-level block memory model, using a small library of separation
//! assertions to relate the tree-shaped Obc memory to nested C structs
//! (`staterep`, Fig. 11). This crate reproduces that stack executably:
//!
//! * [`ctypes`] — Clight types (scalars, pointers, named structs), C ABI
//!   layout for armv7: field offsets, alignment, padding.
//! * [`memory`] — blocks of bytes with bounds, alignment and
//!   initialization checking; little-endian scalar encode/decode.
//! * [`ast`] — expressions (temporaries vs. addressable variables, field
//!   accesses through `self`/`out` pointers), statements (including
//!   volatile loads/stores, which form the observable trace), functions.
//! * [`sep`] — separation assertions: `contains`, separating conjunction
//!   with footprint disjointness, `sepall`, and [`sep::staterep`] — the
//!   executable Fig. 11, used as a validation oracle between the Obc
//!   memory tree and the Clight memory.
//! * [`interp`] — a big-step interpreter producing volatile-event traces;
//!   the paper's theorem compares exactly this trace with the dataflow
//!   semantics.
//! * [`generate`] — the generation pass of §4: one struct per class, one
//!   function per class/method, out-structs for multiple return values
//!   (with the zero/one-output optimizations), `self`/`out` pointer
//!   threading (Fig. 9).
//! * [`printer`] — emission of compilable C99, plus a `main` in the
//!   paper's "test mode".

pub mod ast;
pub mod ctypes;
pub mod generate;
pub mod interp;
pub mod memory;
pub mod printer;
pub mod sep;

mod error;

pub use error::ClightError;
