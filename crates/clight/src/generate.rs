//! Generation of Clight from Obc (§4, Fig. 9).
//!
//! For every class: a struct with a field per memory and per instance.
//! For every method: a function taking `self` (a pointer to the instance
//! struct) and, when the method has two or more outputs, `out` (a pointer
//! to a per-method output struct — Clight has no multiple return values).
//! The zero- and one-output cases are optimized to `void` and a plain
//! return value, as in the paper.
//!
//! Within a function: method locals and single outputs become
//! *temporaries* (`register` in Fig. 9); state accesses become
//! `(*self).x`; output writes become `(*out).x`; a call to a method with
//! multiple outputs goes through an addressable local `out$i$m` whose
//! fields are copied into place afterwards — "a sequence of assignments
//! is added after each call".
//!
//! A `main` in the paper's test mode is generated for the chosen root
//! class: volatile loads of the inputs, one `step`, volatile stores of
//! the outputs, in an infinite loop.

use velus_common::{Ident, IdentSet};
use velus_obc::ast::{reset_name, step_name, Class, Method, ObcExpr, ObcProgram, Stmt as OStmt};
use velus_ops::{CTy, ClightOps};

use crate::ast::{Expr, Function, Program, Stmt};
use crate::ctypes::{CType, Composite};
use crate::ClightError;

/// The function name for `class.method` (e.g. `tracker$step`).
pub fn method_fn_name(class: Ident, method: Ident) -> Ident {
    Ident::new(&format!("{class}${method}"))
}

/// The struct name holding the outputs of `class.method` (only exists
/// when the method has two or more outputs).
pub fn out_struct_name(class: Ident, method: Ident) -> Ident {
    Ident::new(&format!("{class}${method}"))
}

/// The volatile global carrying the root input `x`.
pub fn vol_in_name(x: Ident) -> Ident {
    Ident::new(&format!("in${x}"))
}

/// The volatile global carrying the root output `x`.
pub fn vol_out_name(x: Ident) -> Ident {
    Ident::new(&format!("out${x}"))
}

/// The name of the generated simulation entry point.
///
/// Cached: looked up on every emission and by the validation harness.
pub fn main_fn_name() -> Ident {
    static MAIN: std::sync::OnceLock<Ident> = std::sync::OnceLock::new();
    *MAIN.get_or_init(|| Ident::new("main"))
}

/// The cached `self` parameter name (referenced once per state access
/// during generation — interning it each time took the interner lock).
fn self_ident() -> Ident {
    static SELF: std::sync::OnceLock<Ident> = std::sync::OnceLock::new();
    *SELF.get_or_init(|| Ident::new("self"))
}

/// The cached `out` parameter name (see [`self_ident`]).
fn out_ident() -> Ident {
    static OUT: std::sync::OnceLock<Ident> = std::sync::OnceLock::new();
    *OUT.get_or_init(|| Ident::new("out"))
}

struct MCtx<'a> {
    class: &'a Class<ClightOps>,
    multi_out: bool,
    out_struct: Ident,
    outputs: IdentSet,
    /// Addressable locals added for multi-output callee results.
    extra_vars: Vec<(Ident, CType)>,
    /// Temporaries added for single-output callee results.
    extra_temps: Vec<(Ident, CType)>,
    fresh: u32,
}

impl MCtx<'_> {
    fn self_expr(&self) -> Expr {
        Expr::Temp(self_ident(), CType::ptr_to_struct(self.class.name))
    }

    fn out_expr(&self) -> Expr {
        Expr::Temp(out_ident(), CType::ptr_to_struct(self.out_struct))
    }

    fn gen_expr(&self, e: &ObcExpr<ClightOps>) -> Expr {
        match e {
            ObcExpr::Const(c) => Expr::Const(c.val(), c.ty()),
            ObcExpr::State(x, ty) => Expr::DerefField(
                Box::new(self.self_expr()),
                self.class.name,
                *x,
                CType::Scalar(*ty),
            ),
            ObcExpr::Var(x, ty) => {
                if self.multi_out && self.outputs.contains(x) {
                    Expr::DerefField(
                        Box::new(self.out_expr()),
                        self.out_struct,
                        *x,
                        CType::Scalar(*ty),
                    )
                } else {
                    Expr::Temp(*x, CType::Scalar(*ty))
                }
            }
            ObcExpr::Unop(op, e1, ty) => Expr::Unop(*op, Box::new(self.gen_expr(e1)), *ty),
            ObcExpr::Binop(op, e1, e2, ty) => Expr::Binop(
                *op,
                Box::new(self.gen_expr(e1)),
                Box::new(self.gen_expr(e2)),
                *ty,
            ),
        }
    }

    /// A write to the Obc variable `x` of type `ty`.
    fn gen_write(&self, x: Ident, ty: CTy, rhs: Expr) -> Stmt {
        if self.multi_out && self.outputs.contains(&x) {
            Stmt::Assign(
                Expr::DerefField(
                    Box::new(self.out_expr()),
                    self.out_struct,
                    x,
                    CType::Scalar(ty),
                ),
                rhs,
            )
        } else {
            Stmt::Set(x, rhs)
        }
    }

    fn gen_stmt(
        &mut self,
        prog: &ObcProgram<ClightOps>,
        s: &OStmt<ClightOps>,
    ) -> Result<Stmt, ClightError> {
        Ok(match s {
            OStmt::Skip => Stmt::Skip,
            OStmt::Seq(a, b) => Stmt::seq(self.gen_stmt(prog, a)?, self.gen_stmt(prog, b)?),
            OStmt::Assign(x, e) => {
                let ty = e.ty();
                let rhs = self.gen_expr(e);
                self.gen_write(*x, ty, rhs)
            }
            OStmt::AssignSt(x, e) => Stmt::Assign(
                Expr::DerefField(
                    Box::new(self.self_expr()),
                    self.class.name,
                    *x,
                    CType::Scalar(e.ty()),
                ),
                self.gen_expr(e),
            ),
            OStmt::If(c, t, f) => Stmt::If(
                self.gen_expr(c),
                Box::new(self.gen_stmt(prog, t)?),
                Box::new(self.gen_stmt(prog, f)?),
            ),
            OStmt::Call {
                results,
                class: k,
                instance: i,
                method: m,
                args,
            } => {
                let callee = prog
                    .class(*k)
                    .ok_or_else(|| ClightError::Malformed(format!("call to unknown class {k}")))?;
                let cm: &Method<ClightOps> = callee
                    .method(*m)
                    .ok_or_else(|| ClightError::Malformed(format!("unknown method {k}.{m}")))?;
                let fname = method_fn_name(*k, *m);
                let self_arg = Expr::AddrOf(Box::new(Expr::DerefField(
                    Box::new(self.self_expr()),
                    self.class.name,
                    *i,
                    CType::Struct(*k),
                )));
                let mut cargs = vec![self_arg];
                match cm.outputs.len() {
                    0 => {
                        cargs.extend(args.iter().map(|a| self.gen_expr(a)));
                        Stmt::Call(None, fname, cargs)
                    }
                    1 => {
                        cargs.extend(args.iter().map(|a| self.gen_expr(a)));
                        let (_, oty) = &cm.outputs[0];
                        self.fresh += 1;
                        let aux = Ident::new(&format!("res${i}${}", self.fresh));
                        self.extra_temps.push((aux, CType::Scalar(*oty)));
                        let call = Stmt::Call(Some(aux), fname, cargs);
                        let copy =
                            self.gen_write(results[0], *oty, Expr::Temp(aux, CType::Scalar(*oty)));
                        Stmt::seq(call, copy)
                    }
                    _ => {
                        let ostruct = out_struct_name(*k, *m);
                        self.fresh += 1;
                        let ovar = Ident::new(&format!("out${i}${m}"));
                        if !self.extra_vars.iter().any(|(v, _)| *v == ovar) {
                            self.extra_vars.push((ovar, CType::Struct(ostruct)));
                        }
                        cargs.push(Expr::AddrOf(Box::new(Expr::Var(
                            ovar,
                            CType::Struct(ostruct),
                        ))));
                        cargs.extend(args.iter().map(|a| self.gen_expr(a)));
                        let call = Stmt::Call(None, fname, cargs);
                        let copies = cm.outputs.iter().zip(results).map(|((o, oty), r)| {
                            self.gen_write(
                                *r,
                                *oty,
                                Expr::Field(
                                    Box::new(Expr::Var(ovar, CType::Struct(ostruct))),
                                    ostruct,
                                    *o,
                                    CType::Scalar(*oty),
                                ),
                            )
                        });
                        let copies: Vec<Stmt> = copies.collect();
                        Stmt::seq(call, Stmt::seq_all(copies))
                    }
                }
            }
        })
    }
}

fn gen_method(
    prog: &ObcProgram<ClightOps>,
    class: &Class<ClightOps>,
    m: &Method<ClightOps>,
) -> Result<Function, ClightError> {
    let multi_out = m.outputs.len() >= 2;
    let out_struct = out_struct_name(class.name, m.name);
    let mut ctx = MCtx {
        class,
        multi_out,
        out_struct,
        outputs: m.outputs.iter().map(|(x, _)| *x).collect(),
        extra_vars: Vec::new(),
        extra_temps: Vec::new(),
        fresh: 0,
    };
    let mut body = ctx.gen_stmt(prog, &m.body)?;

    let mut params = vec![(self_ident(), CType::ptr_to_struct(class.name))];
    if multi_out {
        params.push((out_ident(), CType::ptr_to_struct(out_struct)));
    }
    params.extend(m.inputs.iter().map(|(x, t)| (*x, CType::Scalar(*t))));

    let mut temps: Vec<(Ident, CType)> = m
        .locals
        .iter()
        .map(|(x, t)| (*x, CType::Scalar(*t)))
        .collect();
    temps.extend(ctx.extra_temps.clone());

    let ret = if m.outputs.len() == 1 {
        let (o, oty) = &m.outputs[0];
        temps.push((*o, CType::Scalar(*oty)));
        body = Stmt::seq(
            body,
            Stmt::Return(Some(Expr::Temp(*o, CType::Scalar(*oty)))),
        );
        CType::Scalar(*oty)
    } else {
        CType::Void
    };

    Ok(Function {
        name: method_fn_name(class.name, m.name),
        params,
        vars: ctx.extra_vars,
        temps,
        ret,
        body,
    })
}

fn gen_composites(class: &Class<ClightOps>) -> Vec<Composite> {
    let mut out = Vec::new();
    for m in &class.methods {
        if m.outputs.len() >= 2 {
            out.push(Composite {
                name: out_struct_name(class.name, m.name),
                fields: m
                    .outputs
                    .iter()
                    .map(|(x, t)| (*x, CType::Scalar(*t)))
                    .collect(),
            });
        }
    }
    out.push(Composite {
        name: class.name,
        fields: class
            .memories
            .iter()
            .map(|(x, t)| (*x, CType::Scalar(*t)))
            .chain(class.instances.iter().map(|(i, k)| (*i, CType::Struct(*k))))
            .collect(),
    });
    out
}

/// The generated `main` plus its volatile input and output declarations.
type GeneratedMain = (Function, Vec<(Ident, CTy)>, Vec<(Ident, CTy)>);

/// Generates the simulation `main` for the root class: `reset` once, then
/// an infinite loop of volatile input loads, one `step`, and volatile
/// output stores.
fn gen_main(root: &Class<ClightOps>) -> Result<GeneratedMain, ClightError> {
    let step = root
        .method(step_name())
        .ok_or_else(|| ClightError::Malformed(format!("class {} has no step", root.name)))?;
    let self_var = self_ident();
    let self_expr = Expr::Var(self_var, CType::Struct(root.name));
    let mut vols_in: Vec<(Ident, CTy)> = Vec::new();
    let mut vols_out: Vec<(Ident, CTy)> = Vec::new();
    let mut temps: Vec<(Ident, CType)> = Vec::new();
    let mut vars: Vec<(Ident, CType)> = vec![(self_var, CType::Struct(root.name))];
    let mut loop_body: Vec<Stmt> = Vec::new();

    // Volatile input loads. A node without inputs gets a pacing tick so
    // the simulated loop still consumes one volatile input per instant.
    if step.inputs.is_empty() {
        let tick = Ident::new("tick");
        vols_in.push((vol_in_name(tick), CTy::Bool));
        temps.push((tick, CType::Scalar(CTy::Bool)));
        loop_body.push(Stmt::VolLoad(tick, vol_in_name(tick), CTy::Bool));
    }
    for (x, ty) in &step.inputs {
        vols_in.push((vol_in_name(*x), *ty));
        temps.push((*x, CType::Scalar(*ty)));
        loop_body.push(Stmt::VolLoad(*x, vol_in_name(*x), *ty));
    }

    // The step call.
    let fname = method_fn_name(root.name, step_name());
    let mut args = vec![Expr::AddrOf(Box::new(self_expr.clone()))];
    match step.outputs.len() {
        0 => {
            args.extend(
                step.inputs
                    .iter()
                    .map(|(x, t)| Expr::Temp(*x, CType::Scalar(*t))),
            );
            loop_body.push(Stmt::Call(None, fname, args));
        }
        1 => {
            args.extend(
                step.inputs
                    .iter()
                    .map(|(x, t)| Expr::Temp(*x, CType::Scalar(*t))),
            );
            let (o, oty) = &step.outputs[0];
            let res = Ident::new("res");
            temps.push((res, CType::Scalar(*oty)));
            loop_body.push(Stmt::Call(Some(res), fname, args));
            vols_out.push((vol_out_name(*o), *oty));
            loop_body.push(Stmt::VolStore(
                vol_out_name(*o),
                Expr::Temp(res, CType::Scalar(*oty)),
            ));
        }
        _ => {
            let ostruct = out_struct_name(root.name, step_name());
            let ovar = out_ident();
            vars.push((ovar, CType::Struct(ostruct)));
            args.push(Expr::AddrOf(Box::new(Expr::Var(
                ovar,
                CType::Struct(ostruct),
            ))));
            args.extend(
                step.inputs
                    .iter()
                    .map(|(x, t)| Expr::Temp(*x, CType::Scalar(*t))),
            );
            loop_body.push(Stmt::Call(None, fname, args));
            for (o, oty) in &step.outputs {
                vols_out.push((vol_out_name(*o), *oty));
                loop_body.push(Stmt::VolStore(
                    vol_out_name(*o),
                    Expr::Field(
                        Box::new(Expr::Var(ovar, CType::Struct(ostruct))),
                        ostruct,
                        *o,
                        CType::Scalar(*oty),
                    ),
                ));
            }
        }
    }

    let body = Stmt::seq(
        Stmt::Call(
            None,
            method_fn_name(root.name, reset_name()),
            vec![Expr::AddrOf(Box::new(self_expr))],
        ),
        Stmt::Loop(Box::new(Stmt::seq_all(loop_body))),
    );
    Ok((
        Function {
            name: main_fn_name(),
            params: vec![],
            vars,
            temps,
            ret: CType::Void,
            body,
        },
        vols_in,
        vols_out,
    ))
}

/// Generates a Clight program from an Obc program, with a simulation
/// `main` for the class `root`.
///
/// # Errors
///
/// [`ClightError::Malformed`] on dangling class/method references (which
/// the Obc type checker rules out).
pub fn generate(obc: &ObcProgram<ClightOps>, root: Ident) -> Result<Program, ClightError> {
    let mut composites = Vec::new();
    let mut functions = Vec::new();
    for class in &obc.classes {
        composites.extend(gen_composites(class));
        for m in &class.methods {
            functions.push(gen_method(obc, class, m)?);
        }
    }
    let root_class = obc
        .class(root)
        .ok_or_else(|| ClightError::Malformed(format!("unknown root class {root}")))?;
    let (main, vols_in, vols_out) = gen_main(root_class)?;
    functions.push(main);
    Ok(Program {
        composites,
        functions,
        volatiles_in: vols_in,
        volatiles_out: vols_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{Event, Machine, RVal};
    use velus_obc::ast::{Class, Method, ObcExpr, ObcProgram, Stmt as OStmt};
    use velus_ops::{CBinOp, CConst, CVal};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    /// class acc { memory c: int;
    ///   (y: int) step(x: int) { y := state(c) + x; state(c) := y }
    ///   () reset() { state(c) := 0 } }
    fn acc_class() -> ObcProgram<ClightOps> {
        ObcProgram {
            classes: vec![Class {
                name: id("acc"),
                memories: vec![(id("c"), CTy::I32)],
                instances: vec![],
                methods: vec![
                    Method {
                        name: step_name(),
                        inputs: vec![(id("x"), CTy::I32)],
                        outputs: vec![(id("y"), CTy::I32)],
                        locals: vec![],
                        body: OStmt::seq(
                            OStmt::Assign(
                                id("y"),
                                ObcExpr::Binop(
                                    CBinOp::Add,
                                    Box::new(ObcExpr::State(id("c"), CTy::I32)),
                                    Box::new(ObcExpr::Var(id("x"), CTy::I32)),
                                    CTy::I32,
                                ),
                            ),
                            OStmt::AssignSt(id("c"), ObcExpr::Var(id("y"), CTy::I32)),
                        ),
                    },
                    Method {
                        name: reset_name(),
                        inputs: vec![],
                        outputs: vec![],
                        locals: vec![],
                        body: OStmt::AssignSt(id("c"), ObcExpr::Const(CConst::int(0))),
                    },
                ],
            }],
        }
    }

    #[test]
    fn generated_main_produces_the_expected_trace() {
        let obc = acc_class();
        let prog = generate(&obc, id("acc")).unwrap();
        let mut m = Machine::new(&prog).unwrap();
        m.push_inputs(
            vol_in_name(id("x")),
            [CVal::int(1), CVal::int(2), CVal::int(3)],
        );
        let trace = m.run_main(main_fn_name()).unwrap();
        let outs: Vec<CVal> = trace
            .iter()
            .filter_map(|e| match e {
                Event::Store(_, v) => Some(*v),
                _ => None,
            })
            .collect();
        assert_eq!(outs, vec![CVal::int(1), CVal::int(3), CVal::int(6)]);
    }

    #[test]
    fn single_output_step_returns_by_value() {
        let obc = acc_class();
        let prog = generate(&obc, id("acc")).unwrap();
        let f = prog
            .function(method_fn_name(id("acc"), step_name()))
            .unwrap();
        assert_eq!(f.ret, CType::Scalar(CTy::I32));
        assert_eq!(f.params.len(), 2); // self + x, no out pointer
    }

    #[test]
    fn driving_step_directly() {
        let obc = acc_class();
        let prog = generate(&obc, id("acc")).unwrap();
        let mut m = Machine::new(&prog).unwrap();
        let b = m.alloc_struct(id("acc")).unwrap();
        m.call(method_fn_name(id("acc"), reset_name()), &[RVal::Ptr(b, 0)])
            .unwrap();
        let r = m
            .call(
                method_fn_name(id("acc"), step_name()),
                &[RVal::Ptr(b, 0), RVal::Scalar(CVal::int(5))],
            )
            .unwrap();
        assert_eq!(r, Some(RVal::Scalar(CVal::int(5))));
    }
}
