//! Separation assertions over the block memory (§4.2, Fig. 11).
//!
//! The paper expresses the invariant relating Obc's tree-shaped memory to
//! the generated nested C records with a small library of separation
//! assertions built inside CompCert: an assertion has a *footprint* (a
//! predicate over block/offset pairs) and a predicate over memories, and
//! the separating conjunction requires disjoint footprints.
//!
//! Here assertions are finite syntax checked against a concrete
//! [`Mem`]: `contains ty (b, ofs) v?` asserts a readable, aligned,
//! in-bounds range (holding value `v` when specified), `Star` asserts
//! its conjuncts on *pairwise disjoint* footprints. [`staterep`] is the
//! executable Fig. 11: it maps an Obc class and semantic memory to the
//! assertion describing the corresponding struct in Clight memory. The
//! validation harness checks it at every step boundary, which is how this
//! reproduction "proves" memory safety of generated code — by exhaustive
//! checking along executions instead of by induction.

use velus_common::Ident;
use velus_nlustre::memory::Memory;
use velus_ops::{CTy, CVal, ClightOps};

use crate::ctypes::LayoutEnv;
use crate::memory::{BlockId, Mem};
use crate::ClightError;

/// A separation assertion.
#[derive(Debug, Clone, PartialEq)]
pub enum Assertion {
    /// `contains ty (b, ofs) v?` — the range `[ofs, ofs + sizeof ty)` of
    /// block `b` is valid and aligned for `ty`; when `value` is given,
    /// loading yields exactly that value (the paper's `⌈mem.values x⌉`
    /// is `None` when the cell is not yet defined: the range must merely
    /// exist).
    Contains {
        /// The scalar type of the cell.
        ty: CTy,
        /// The block.
        block: BlockId,
        /// The offset within the block.
        ofs: u32,
        /// The expected value, if constrained.
        value: Option<CVal>,
    },
    /// Separating conjunction of the conjuncts: each must hold, and their
    /// footprints must be pairwise disjoint.
    Star(Vec<Assertion>),
    /// The always-false assertion (`sepfalse`, for empty programs).
    False,
    /// The empty assertion (`emp`).
    Emp,
}

impl Assertion {
    /// The footprint: a list of `(block, start, end)` byte ranges.
    pub fn footprint(&self) -> Vec<(BlockId, u32, u32)> {
        match self {
            Assertion::Contains { ty, block, ofs, .. } => {
                vec![(*block, *ofs, *ofs + ty.size())]
            }
            Assertion::Star(parts) => parts.iter().flat_map(Assertion::footprint).collect(),
            Assertion::False | Assertion::Emp => Vec::new(),
        }
    }

    /// Checks the assertion against a memory: all `contains` hold and all
    /// footprints within every `Star` are pairwise disjoint.
    ///
    /// # Errors
    ///
    /// [`ClightError::Separation`] describing the first violation.
    pub fn check(&self, mem: &Mem) -> Result<(), ClightError> {
        match self {
            Assertion::Emp => Ok(()),
            Assertion::False => Err(ClightError::Separation("sepfalse".to_owned())),
            Assertion::Contains {
                ty,
                block,
                ofs,
                value,
            } => {
                if !mem.range_valid(*block, *ofs, ty.size()) {
                    return Err(ClightError::Separation(format!(
                        "contains {ty} at ({block}, {ofs}): range invalid"
                    )));
                }
                if ofs % ty.align() != 0 {
                    return Err(ClightError::Separation(format!(
                        "contains {ty} at ({block}, {ofs}): misaligned"
                    )));
                }
                if let Some(expected) = value {
                    let actual = mem.load(*ty, *block, *ofs).map_err(|e| {
                        ClightError::Separation(format!("contains {ty} at ({block}, {ofs}): {e}"))
                    })?;
                    if actual != *expected {
                        return Err(ClightError::Separation(format!(
                            "contains {ty} at ({block}, {ofs}): holds {actual}, expected {expected}"
                        )));
                    }
                }
                Ok(())
            }
            Assertion::Star(parts) => {
                for p in parts {
                    p.check(mem)?;
                }
                // Pairwise disjointness of the sub-footprints.
                let mut ranges: Vec<(BlockId, u32, u32, usize)> = Vec::new();
                for (i, p) in parts.iter().enumerate() {
                    for (b, s, e) in p.footprint() {
                        ranges.push((b, s, e, i));
                    }
                }
                ranges.sort();
                for w in ranges.windows(2) {
                    let (b1, s1, e1, i1) = w[0];
                    let (b2, s2, _e2, i2) = w[1];
                    if b1 == b2 && s2 < e1 && i1 != i2 {
                        return Err(ClightError::Separation(format!(
                            "overlapping footprints in block {b1}: [{s1}, {e1}) and [{s2}, …)"
                        )));
                    }
                }
                Ok(())
            }
        }
    }
}

/// Builds the `staterep` assertion of Fig. 11: the struct for class
/// `class` of `prog`, laid out at `(block, ofs)` in Clight memory, holds
/// exactly the Obc semantic memory `mem`.
///
/// Memory cells not present in `mem` (before `reset` defines them) yield
/// unconstrained `contains` assertions, matching the paper's
/// `⌈mem.values x⌉` notation.
///
/// # Errors
///
/// Layout errors (unknown struct or field) if `prog` and the generated
/// composites disagree.
pub fn staterep(
    layouts: &LayoutEnv,
    prog: &velus_obc::ast::ObcProgram<ClightOps>,
    class: Ident,
    mem: &Memory<CVal>,
    block: BlockId,
    ofs: u32,
) -> Result<Assertion, ClightError> {
    let cls = match prog.class(class) {
        Some(c) => c,
        None => return Ok(Assertion::False),
    };
    let mut parts = Vec::new();
    for (x, ty) in &cls.memories {
        let off = layouts.field_offset(class, *x)?;
        parts.push(Assertion::Contains {
            ty: *ty,
            block,
            ofs: ofs + off,
            value: mem.value(*x).copied(),
        });
    }
    static EMPTY: std::sync::OnceLock<Memory<CVal>> = std::sync::OnceLock::new();
    for (inst, sub_class) in &cls.instances {
        let off = layouts.field_offset(class, *inst)?;
        let sub_mem = mem
            .instance(*inst)
            .unwrap_or_else(|| EMPTY.get_or_init(Memory::new));
        parts.push(staterep(
            layouts,
            prog,
            *sub_class,
            sub_mem,
            block,
            ofs + off,
        )?);
    }
    Ok(Assertion::Star(parts))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_checks_value() {
        let mut mem = Mem::new();
        let b = mem.alloc(8);
        mem.store(CTy::I32, b, 0, &CVal::int(5)).unwrap();
        let a = Assertion::Contains {
            ty: CTy::I32,
            block: b,
            ofs: 0,
            value: Some(CVal::int(5)),
        };
        a.check(&mem).unwrap();
        let bad = Assertion::Contains {
            ty: CTy::I32,
            block: b,
            ofs: 0,
            value: Some(CVal::int(6)),
        };
        assert!(bad.check(&mem).is_err());
    }

    #[test]
    fn unconstrained_contains_allows_uninitialized() {
        let mut mem = Mem::new();
        let b = mem.alloc(4);
        let a = Assertion::Contains {
            ty: CTy::I32,
            block: b,
            ofs: 0,
            value: None,
        };
        a.check(&mem).unwrap();
    }

    #[test]
    fn star_requires_disjointness() {
        let mut mem = Mem::new();
        let b = mem.alloc(8);
        mem.store(CTy::I32, b, 0, &CVal::int(1)).unwrap();
        mem.store(CTy::I32, b, 4, &CVal::int(2)).unwrap();
        let ok = Assertion::Star(vec![
            Assertion::Contains {
                ty: CTy::I32,
                block: b,
                ofs: 0,
                value: None,
            },
            Assertion::Contains {
                ty: CTy::I32,
                block: b,
                ofs: 4,
                value: None,
            },
        ]);
        ok.check(&mem).unwrap();
        let overlap = Assertion::Star(vec![
            Assertion::Contains {
                ty: CTy::I64,
                block: b,
                ofs: 0,
                value: None,
            },
            Assertion::Contains {
                ty: CTy::I32,
                block: b,
                ofs: 4,
                value: None,
            },
        ]);
        assert!(matches!(
            overlap.check(&mem),
            Err(ClightError::Separation(_))
        ));
    }

    #[test]
    fn nested_stars_merge_footprints() {
        let mut mem = Mem::new();
        let b = mem.alloc(8);
        // Same-conjunct overlap inside one Contains list is allowed only
        // across *different* conjuncts of a star; identical ranges in one
        // conjunct (e.g. duplicated assertion) must still be caught when
        // they come from different star children.
        let overlap = Assertion::Star(vec![
            Assertion::Star(vec![Assertion::Contains {
                ty: CTy::I32,
                block: b,
                ofs: 0,
                value: None,
            }]),
            Assertion::Contains {
                ty: CTy::I32,
                block: b,
                ofs: 2,
                value: None,
            },
        ]);
        // Offset 2 is misaligned for I32 anyway; use I16 to isolate the
        // disjointness failure.
        let overlap2 = Assertion::Star(vec![
            Assertion::Star(vec![Assertion::Contains {
                ty: CTy::I32,
                block: b,
                ofs: 0,
                value: None,
            }]),
            Assertion::Contains {
                ty: CTy::I16,
                block: b,
                ofs: 2,
                value: None,
            },
        ]);
        assert!(overlap.check(&mem).is_err());
        assert!(matches!(
            overlap2.check(&mem),
            Err(ClightError::Separation(_))
        ));
    }

    #[test]
    fn sepfalse_fails_and_emp_holds() {
        let mem = Mem::new();
        assert!(Assertion::False.check(&mem).is_err());
        Assertion::Emp.check(&mem).unwrap();
    }
}
