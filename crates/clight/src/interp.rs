//! A big-step interpreter for the Clight subset.
//!
//! This is the substitute for CompCert's verified back end: it defines
//! the observable behaviour of generated programs. The judgment
//! `ge, e ⊢stmt le, m, s ⇒ le', m', oc` of §4 becomes `exec_stmt`
//! mutating a frame (temporaries + addressable locals) and the block
//! memory, returning an outcome (normal completion, `break`, or
//! `return`).
//!
//! Volatile loads and stores produce the event trace
//! `⟨VLoad(xs(n)) · VStore(ys(n))⟩` that the end-to-end theorem compares
//! against the dataflow semantics; a volatile load beyond the supplied
//! input prefix terminates the simulation loop (finite-prefix check of
//! the paper's infinite bisimulation).

use std::collections::VecDeque;

use velus_common::{Ident, IdentMap};
use velus_ops::{CVal, ClightOps, Ops};

use crate::ast::{Expr, Function, Program, Stmt};
use crate::ctypes::{CType, LayoutEnv};
use crate::memory::{BlockId, Mem};
use crate::ClightError;

/// A run-time value: a scalar or a pointer.
#[derive(Debug, Clone, PartialEq)]
pub enum RVal {
    /// A scalar machine value.
    Scalar(CVal),
    /// A pointer `(block, offset)`.
    Ptr(BlockId, u32),
}

impl RVal {
    /// Extracts the scalar, if any.
    pub fn scalar(&self) -> Option<&CVal> {
        match self {
            RVal::Scalar(v) => Some(v),
            RVal::Ptr(..) => None,
        }
    }
}

/// An observable volatile event.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A volatile load of an input global.
    Load(Ident, CVal),
    /// A volatile store to an output global.
    Store(Ident, CVal),
}

/// Statement outcome.
#[derive(Debug, Clone, PartialEq)]
enum Outcome {
    Normal,
    Return(Option<RVal>),
}

struct Frame {
    temps: IdentMap<RVal>,
    vars: IdentMap<(BlockId, CType)>,
}

/// The interpreter state for one program.
pub struct Machine<'p> {
    prog: &'p Program,
    /// Struct layouts (public: the separation assertions need them).
    pub layouts: LayoutEnv,
    /// The block memory (public for assertion checking).
    pub mem: Mem,
    vol_inputs: IdentMap<VecDeque<CVal>>,
    /// The volatile event trace accumulated so far.
    pub trace: Vec<Event>,
    /// Call depth guard (generated programs are non-recursive; this
    /// catches malformed inputs instead of overflowing the stack).
    depth: usize,
}

const MAX_DEPTH: usize = 256;

impl<'p> Machine<'p> {
    /// Creates a machine for `prog`, computing struct layouts.
    ///
    /// # Errors
    ///
    /// Layout errors (unknown struct in a field).
    pub fn new(prog: &'p Program) -> Result<Machine<'p>, ClightError> {
        let layouts = LayoutEnv::new(prog.composites.clone())?;
        Ok(Machine {
            prog,
            layouts,
            mem: Mem::new(),
            vol_inputs: IdentMap::default(),
            trace: Vec::new(),
            depth: 0,
        })
    }

    /// Queues input values for the volatile input global `g`.
    pub fn push_inputs(&mut self, g: Ident, values: impl IntoIterator<Item = CVal>) {
        self.vol_inputs.entry(g).or_default().extend(values);
    }

    /// Allocates a block holding one value of struct `s`.
    ///
    /// # Errors
    ///
    /// Unknown struct.
    pub fn alloc_struct(&mut self, s: Ident) -> Result<BlockId, ClightError> {
        let size = self.layouts.layout(s)?.size;
        Ok(self.mem.alloc(size))
    }

    // ---- lvalues and rvalues -------------------------------------------

    fn lval(&mut self, fr: &Frame, e: &Expr) -> Result<(BlockId, u32, CType), ClightError> {
        match e {
            Expr::Var(x, _) => {
                let (b, ty) = fr
                    .vars
                    .get(x)
                    .cloned()
                    .ok_or_else(|| ClightError::Malformed(format!("unknown variable {x}")))?;
                Ok((b, 0, ty))
            }
            Expr::Field(a, s, f, ty) => {
                let (b, o, _) = self.lval(fr, a)?;
                let off = self.layouts.field_offset(*s, *f)?;
                Ok((b, o + off, ty.clone()))
            }
            Expr::DerefField(p, s, f, ty) => {
                let pv = self.rval(fr, p)?;
                match pv {
                    RVal::Ptr(b, o) => {
                        let off = self.layouts.field_offset(*s, *f)?;
                        Ok((b, o + off, ty.clone()))
                    }
                    RVal::Scalar(v) => Err(ClightError::ValueError(format!(
                        "dereference of non-pointer {v}"
                    ))),
                }
            }
            other => Err(ClightError::Malformed(format!(
                "expression is not an lvalue: {other:?}"
            ))),
        }
    }

    fn rval(&mut self, fr: &Frame, e: &Expr) -> Result<RVal, ClightError> {
        match e {
            Expr::Const(v, _) => Ok(RVal::Scalar(*v)),
            Expr::Temp(x, _) => fr
                .temps
                .get(x)
                .cloned()
                .ok_or_else(|| ClightError::Uninitialized(format!("temporary {x}"))),
            Expr::AddrOf(a) => {
                let (b, o, _) = self.lval(fr, a)?;
                Ok(RVal::Ptr(b, o))
            }
            Expr::Var(..) | Expr::Field(..) | Expr::DerefField(..) => {
                let (b, o, ty) = self.lval(fr, e)?;
                match ty.as_scalar() {
                    Some(sc) => Ok(RVal::Scalar(self.mem.load(sc, b, o)?)),
                    None => Err(ClightError::ValueError(
                        "loading a non-scalar rvalue".to_owned(),
                    )),
                }
            }
            Expr::Unop(op, e1, _) => {
                let v = self.rval(fr, e1)?;
                let sc = e1.ty().as_scalar().ok_or_else(|| {
                    ClightError::ValueError("unary operator on non-scalar".to_owned())
                })?;
                match v {
                    RVal::Scalar(v) => ClightOps::sem_unop(*op, &v, &sc)
                        .map(RVal::Scalar)
                        .ok_or_else(|| ClightError::UndefinedOperation(format!("{op} {v}"))),
                    RVal::Ptr(..) => Err(ClightError::ValueError(
                        "unary operator on pointer".to_owned(),
                    )),
                }
            }
            Expr::Binop(op, e1, e2, _) => {
                let v1 = self.rval(fr, e1)?;
                let v2 = self.rval(fr, e2)?;
                let t1 = e1.ty().as_scalar();
                let t2 = e2.ty().as_scalar();
                match (v1, v2, t1, t2) {
                    (RVal::Scalar(a), RVal::Scalar(b), Some(ta), Some(tb)) => {
                        ClightOps::sem_binop(*op, &a, &ta, &b, &tb)
                            .map(RVal::Scalar)
                            .ok_or_else(|| ClightError::UndefinedOperation(format!("{a} {op} {b}")))
                    }
                    _ => Err(ClightError::ValueError(
                        "binary operator on non-scalars".to_owned(),
                    )),
                }
            }
        }
    }

    // ---- statements ------------------------------------------------------

    fn exec(&mut self, fr: &mut Frame, s: &Stmt) -> Result<Outcome, ClightError> {
        match s {
            Stmt::Skip => Ok(Outcome::Normal),
            Stmt::Seq(a, b) => match self.exec(fr, a)? {
                Outcome::Normal => self.exec(fr, b),
                ret => Ok(ret),
            },
            Stmt::Assign(lv, e) => {
                let v = self.rval(fr, e)?;
                let (b, o, ty) = self.lval(fr, lv)?;
                let sc = ty.as_scalar().ok_or_else(|| {
                    ClightError::ValueError("assignment to non-scalar location".to_owned())
                })?;
                match v {
                    RVal::Scalar(v) => {
                        self.mem.store(sc, b, o, &v)?;
                        Ok(Outcome::Normal)
                    }
                    RVal::Ptr(..) => Err(ClightError::ValueError(
                        "storing a pointer into a scalar field".to_owned(),
                    )),
                }
            }
            Stmt::Set(x, e) => {
                let v = self.rval(fr, e)?;
                fr.temps.insert(*x, v);
                Ok(Outcome::Normal)
            }
            Stmt::If(c, t, f) => {
                let v = self.rval(fr, c)?;
                let b = v
                    .scalar()
                    .and_then(ClightOps::as_bool)
                    .ok_or_else(|| ClightError::ValueError(format!("guard {v:?}")))?;
                if b {
                    self.exec(fr, t)
                } else {
                    self.exec(fr, f)
                }
            }
            Stmt::Call(dest, fname, args) => {
                let vals = args
                    .iter()
                    .map(|a| self.rval(fr, a))
                    .collect::<Result<Vec<_>, _>>()?;
                let r = self.call(*fname, &vals)?;
                if let Some(x) = dest {
                    let v = r.ok_or_else(|| {
                        ClightError::ValueError(format!("void call result bound to {x}"))
                    })?;
                    fr.temps.insert(*x, v);
                }
                Ok(Outcome::Normal)
            }
            Stmt::VolLoad(x, g, _) => {
                let q = self
                    .vol_inputs
                    .get_mut(g)
                    .ok_or(ClightError::EndOfInput(*g))?;
                let v = q.pop_front().ok_or(ClightError::EndOfInput(*g))?;
                self.trace.push(Event::Load(*g, v));
                fr.temps.insert(*x, RVal::Scalar(v));
                Ok(Outcome::Normal)
            }
            Stmt::VolStore(g, e) => {
                let v = self.rval(fr, e)?;
                match v {
                    RVal::Scalar(v) => {
                        self.trace.push(Event::Store(*g, v));
                        Ok(Outcome::Normal)
                    }
                    RVal::Ptr(..) => Err(ClightError::ValueError(
                        "volatile store of a pointer".to_owned(),
                    )),
                }
            }
            Stmt::Loop(body) => loop {
                match self.exec(fr, body) {
                    Ok(Outcome::Normal) => continue,
                    Ok(ret @ Outcome::Return(_)) => return Ok(ret),
                    // Exhausted inputs end the simulated infinite loop:
                    // the finite-prefix boundary of the trace check.
                    Err(ClightError::EndOfInput(_)) => return Ok(Outcome::Normal),
                    Err(e) => return Err(e),
                }
            },
            Stmt::Return(e) => {
                let v = match e {
                    Some(e) => Some(self.rval(fr, e)?),
                    None => None,
                };
                Ok(Outcome::Return(v))
            }
        }
    }

    /// Calls function `fname` with the given argument values and returns
    /// its result (`None` for void). Local blocks are allocated on entry
    /// and freed on exit, as in Clight.
    ///
    /// # Errors
    ///
    /// All dynamic errors of the model: unknown functions, arity
    /// mismatches, memory violations, undefined operations.
    pub fn call(&mut self, fname: Ident, args: &[RVal]) -> Result<Option<RVal>, ClightError> {
        if self.depth >= MAX_DEPTH {
            return Err(ClightError::Malformed(format!(
                "call depth exceeded at {fname} (recursive program?)"
            )));
        }
        let f: &Function = self
            .prog
            .function(fname)
            .ok_or(ClightError::UnknownFunction(fname))?;
        if f.params.len() != args.len() {
            return Err(ClightError::Malformed(format!(
                "{fname}: {} arguments for {} parameters",
                args.len(),
                f.params.len()
            )));
        }
        let mut fr = Frame {
            temps: IdentMap::default(),
            vars: IdentMap::default(),
        };
        for ((x, _), v) in f.params.iter().zip(args) {
            fr.temps.insert(*x, v.clone());
        }
        let mut blocks = Vec::new();
        for (x, ty) in &f.vars {
            let size = self.layouts.sizeof(ty)?;
            let b = self.mem.alloc(size);
            blocks.push(b);
            fr.vars.insert(*x, (b, ty.clone()));
        }
        self.depth += 1;
        let body = f.body.clone();
        let outcome = self.exec(&mut fr, &body);
        self.depth -= 1;
        for b in blocks {
            self.mem.free(b)?;
        }
        match outcome? {
            Outcome::Return(v) => Ok(v),
            Outcome::Normal => {
                if f.ret == CType::Void {
                    Ok(None)
                } else {
                    Err(ClightError::Malformed(format!(
                        "{fname} fell through without returning a value"
                    )))
                }
            }
        }
    }

    /// Runs the simulation entry point `main_fn` until the volatile
    /// inputs are exhausted, returning the accumulated event trace.
    ///
    /// # Errors
    ///
    /// See [`Machine::call`].
    pub fn run_main(&mut self, main_fn: Ident) -> Result<&[Event], ClightError> {
        self.call(main_fn, &[])?;
        Ok(&self.trace)
    }
}

/// Formats a trace as one `load`/`store` event per line (for debugging
/// and golden tests).
pub fn render_trace(trace: &[Event]) -> String {
    trace
        .iter()
        .map(|e| match e {
            Event::Load(g, v) => format!("load {g} = {v}"),
            Event::Store(g, v) => format!("store {g} = {v}"),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ctypes::Composite;
    use velus_ops::{CBinOp, CTy};

    fn id(s: &str) -> Ident {
        Ident::new(s)
    }

    /// struct st { int32_t c; };
    /// int32_t bump(struct st *self, int32_t inc) {
    ///   int32_t n = (*self).c + inc; (*self).c = n; return n;
    /// }
    fn bump_program() -> Program {
        let st = id("st");
        let selfp = id("self");
        let self_ty = CType::ptr_to_struct(st);
        let deref_c = Expr::DerefField(
            Box::new(Expr::Temp(selfp, self_ty.clone())),
            st,
            id("c"),
            CType::Scalar(CTy::I32),
        );
        let n = id("n");
        let body = Stmt::seq_all(vec![
            Stmt::Set(
                n,
                Expr::Binop(
                    CBinOp::Add,
                    Box::new(deref_c.clone()),
                    Box::new(Expr::Temp(id("inc"), CType::Scalar(CTy::I32))),
                    CTy::I32,
                ),
            ),
            Stmt::Assign(deref_c, Expr::Temp(n, CType::Scalar(CTy::I32))),
            Stmt::Return(Some(Expr::Temp(n, CType::Scalar(CTy::I32)))),
        ]);
        Program {
            composites: vec![Composite {
                name: st,
                fields: vec![(id("c"), CType::Scalar(CTy::I32))],
            }],
            functions: vec![Function {
                name: id("bump"),
                params: vec![(selfp, self_ty), (id("inc"), CType::Scalar(CTy::I32))],
                vars: vec![],
                temps: vec![(n, CType::Scalar(CTy::I32))],
                ret: CType::Scalar(CTy::I32),
                body,
            }],
            volatiles_in: vec![],
            volatiles_out: vec![],
        }
    }

    #[test]
    fn state_persists_across_calls() {
        let prog = bump_program();
        let mut m = Machine::new(&prog).unwrap();
        let b = m.alloc_struct(id("st")).unwrap();
        m.mem.store(CTy::I32, b, 0, &CVal::int(0)).unwrap();
        for expected in [2, 4, 6] {
            let r = m
                .call(id("bump"), &[RVal::Ptr(b, 0), RVal::Scalar(CVal::int(2))])
                .unwrap();
            assert_eq!(r, Some(RVal::Scalar(CVal::int(expected))));
        }
        assert_eq!(m.mem.load(CTy::I32, b, 0).unwrap(), CVal::int(6));
    }

    #[test]
    fn uninitialized_state_is_caught() {
        let prog = bump_program();
        let mut m = Machine::new(&prog).unwrap();
        let b = m.alloc_struct(id("st")).unwrap();
        // No store to (*self).c before the first call: the load fails.
        let err = m
            .call(id("bump"), &[RVal::Ptr(b, 0), RVal::Scalar(CVal::int(1))])
            .unwrap_err();
        assert!(matches!(err, ClightError::Uninitialized(_)));
    }

    #[test]
    fn volatile_trace_and_loop_termination() {
        // void main() { while (1) { x = vol_load(in); vol_store(out, x + 1); } }
        let body = Stmt::Loop(Box::new(Stmt::seq_all(vec![
            Stmt::VolLoad(id("x"), id("in"), CTy::I32),
            Stmt::VolStore(
                id("out"),
                Expr::Binop(
                    CBinOp::Add,
                    Box::new(Expr::Temp(id("x"), CType::Scalar(CTy::I32))),
                    Box::new(Expr::Const(CVal::int(1), CTy::I32)),
                    CTy::I32,
                ),
            ),
        ])));
        let prog = Program {
            composites: vec![],
            functions: vec![Function {
                name: id("main"),
                params: vec![],
                vars: vec![],
                temps: vec![(id("x"), CType::Scalar(CTy::I32))],
                ret: CType::Void,
                body,
            }],
            volatiles_in: vec![(id("in"), CTy::I32)],
            volatiles_out: vec![(id("out"), CTy::I32)],
        };
        let mut m = Machine::new(&prog).unwrap();
        m.push_inputs(id("in"), [CVal::int(10), CVal::int(20)]);
        let trace = m.run_main(id("main")).unwrap();
        assert_eq!(
            trace,
            &[
                Event::Load(id("in"), CVal::int(10)),
                Event::Store(id("out"), CVal::int(11)),
                Event::Load(id("in"), CVal::int(20)),
                Event::Store(id("out"), CVal::int(21)),
            ]
        );
        assert!(render_trace(trace).contains("store out = 21"));
    }

    #[test]
    fn locals_are_freed_on_return() {
        // void f() { struct st o; } — block freed after the call; a second
        // call allocates a fresh one (no leak observable, but the count of
        // blocks grows monotonically which is fine for the model).
        let prog = Program {
            composites: vec![Composite {
                name: id("st"),
                fields: vec![(id("c"), CType::Scalar(CTy::I32))],
            }],
            functions: vec![Function {
                name: id("f"),
                params: vec![],
                vars: vec![(id("o"), CType::Struct(id("st")))],
                temps: vec![],
                ret: CType::Void,
                body: Stmt::Skip,
            }],
            volatiles_in: vec![],
            volatiles_out: vec![],
        };
        let mut m = Machine::new(&prog).unwrap();
        m.call(id("f"), &[]).unwrap();
        m.call(id("f"), &[]).unwrap();
    }
}
