//! Abstract syntax of the Clight subset.
//!
//! Mirrors the fragment of Clight the generation pass targets (§4):
//! scalar arithmetic, struct field accesses through pointers, function
//! calls, conditionals, and — for the simulation entry point — volatile
//! loads and stores (the observable events of the correctness theorem)
//! and an infinite loop.
//!
//! Variables split into *temporaries* (`le`, register-allocated, no
//! address) and *addressable variables* (`e`, stack-allocated blocks);
//! the address-of operator applies only to the latter, exactly as in
//! Clight. Generated code puts output records in `e` — their addresses
//! are passed to callees — and everything else in temporaries (the
//! `register` variables of Fig. 9).

use velus_common::Ident;
use velus_ops::{CBinOp, CTy, CUnOp, CVal};

use crate::ctypes::CType;

/// A Clight expression, annotated with its type.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A scalar constant.
    Const(CVal, CTy),
    /// A temporary (in `le`).
    Temp(Ident, CType),
    /// An addressable variable (in `e`); an lvalue.
    Var(Ident, CType),
    /// `a.f` — field of an lvalue of struct type `s`.
    Field(Box<Expr>, Ident, Ident, CType),
    /// `(*p).f` — field through a pointer to struct `s`.
    DerefField(Box<Expr>, Ident, Ident, CType),
    /// `&a` — address of an lvalue.
    AddrOf(Box<Expr>),
    /// Unary operation (including casts) on scalars.
    Unop(CUnOp, Box<Expr>, CTy),
    /// Binary operation on scalars.
    Binop(CBinOp, Box<Expr>, Box<Expr>, CTy),
}

impl Expr {
    /// The type of the expression.
    pub fn ty(&self) -> CType {
        match self {
            Expr::Const(_, t) => CType::Scalar(*t),
            Expr::Temp(_, t) | Expr::Var(_, t) => t.clone(),
            Expr::Field(_, _, _, t) | Expr::DerefField(_, _, _, t) => t.clone(),
            Expr::AddrOf(e) => CType::Pointer(Box::new(e.ty())),
            Expr::Unop(_, _, t) | Expr::Binop(_, _, _, t) => CType::Scalar(*t),
        }
    }

    /// Whether the expression is an lvalue (denotes a memory location).
    pub fn is_lvalue(&self) -> bool {
        matches!(self, Expr::Var(..) | Expr::Field(..) | Expr::DerefField(..))
    }
}

/// A Clight statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Do nothing.
    Skip,
    /// `lv = e;` — store to memory.
    Assign(Expr, Expr),
    /// `x = e;` — set a temporary.
    Set(Ident, Expr),
    /// `[x =] f(args);` — call, optionally binding the result temporary.
    Call(Option<Ident>, Ident, Vec<Expr>),
    /// Sequencing.
    Seq(Box<Stmt>, Box<Stmt>),
    /// Conditional.
    If(Expr, Box<Stmt>, Box<Stmt>),
    /// `x = volatile_load(g);` — consumes one input, emits a `Load` event.
    VolLoad(Ident, Ident, CTy),
    /// `volatile_store(g, e);` — emits a `Store` event.
    VolStore(Ident, Expr),
    /// `while (1) { s }` — the simulation main loop.
    Loop(Box<Stmt>),
    /// `return [e];`
    Return(Option<Expr>),
}

impl Stmt {
    /// Sequencing smart constructor eliding `Skip`s.
    pub fn seq(a: Stmt, b: Stmt) -> Stmt {
        match (a, b) {
            (Stmt::Skip, s) | (s, Stmt::Skip) => s,
            (a, b) => Stmt::Seq(Box::new(a), Box::new(b)),
        }
    }

    /// Sequences a list of statements (right-nested).
    pub fn seq_all(stmts: impl IntoIterator<Item = Stmt>) -> Stmt {
        let items: Vec<Stmt> = stmts.into_iter().collect();
        items
            .into_iter()
            .rev()
            .fold(Stmt::Skip, |acc, s| Stmt::seq(s, acc))
    }
}

/// A function definition.
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: Ident,
    /// Parameters (bound as temporaries, as in the paper).
    pub params: Vec<(Ident, CType)>,
    /// Addressable local variables (stack blocks; the output records).
    pub vars: Vec<(Ident, CType)>,
    /// Temporaries.
    pub temps: Vec<(Ident, CType)>,
    /// Return type.
    pub ret: CType,
    /// Body.
    pub body: Stmt,
}

/// A Clight program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Struct definitions, dependencies first.
    pub composites: Vec<crate::ctypes::Composite>,
    /// Functions, callees first.
    pub functions: Vec<Function>,
    /// Volatile input globals (one per root-node input).
    pub volatiles_in: Vec<(Ident, CTy)>,
    /// Volatile output globals (one per root-node output).
    pub volatiles_out: Vec<(Ident, CTy)>,
}

impl Program {
    /// Looks up a function by name.
    pub fn function(&self, name: Ident) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expression_types() {
        let c = Expr::Const(CVal::int(1), CTy::I32);
        assert_eq!(c.ty(), CType::Scalar(CTy::I32));
        let v = Expr::Var(Ident::new("o"), CType::Struct(Ident::new("s")));
        assert!(v.is_lvalue());
        let a = Expr::AddrOf(Box::new(v));
        assert_eq!(
            a.ty(),
            CType::Pointer(Box::new(CType::Struct(Ident::new("s"))))
        );
        assert!(!a.is_lvalue());
    }

    #[test]
    fn seq_elides_skip() {
        let s = Stmt::seq(Stmt::Skip, Stmt::Return(None));
        assert_eq!(s, Stmt::Return(None));
        let s = Stmt::seq_all(vec![Stmt::Skip, Stmt::Skip]);
        assert_eq!(s, Stmt::Skip);
    }
}
