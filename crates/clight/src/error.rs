//! Errors of the Clight layer.

use std::fmt;

use velus_common::{codes, Code, Diagnostic, Diagnostics, Ident, Span, SpanMap, ToDiagnostics};

/// Errors raised by layout computation, the memory model, the interpreter
/// and the generation pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClightError {
    /// Unknown struct name in a layout query.
    UnknownStruct(Ident),
    /// Unknown field in a struct.
    UnknownField(Ident, Ident),
    /// Unknown function.
    UnknownFunction(Ident),
    /// An out-of-bounds, misaligned or dead-block memory access.
    MemoryError(String),
    /// A read of uninitialized memory or an unset temporary.
    Uninitialized(String),
    /// An operator application outside its domain.
    UndefinedOperation(String),
    /// A value of the wrong shape (e.g. scalar where pointer expected).
    ValueError(String),
    /// A volatile load with no input available (end of the input prefix).
    EndOfInput(Ident),
    /// A violated separation assertion.
    Separation(String),
    /// A malformed program reached the interpreter or generator.
    Malformed(String),
}

impl fmt::Display for ClightError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClightError::UnknownStruct(s) => write!(f, "unknown struct {s}"),
            ClightError::UnknownField(s, x) => write!(f, "unknown field {x} of struct {s}"),
            ClightError::UnknownFunction(g) => write!(f, "unknown function {g}"),
            ClightError::MemoryError(m) => write!(f, "memory error: {m}"),
            ClightError::Uninitialized(m) => write!(f, "uninitialized read: {m}"),
            ClightError::UndefinedOperation(m) => write!(f, "undefined operation: {m}"),
            ClightError::ValueError(m) => write!(f, "value error: {m}"),
            ClightError::EndOfInput(g) => write!(f, "volatile input {g} exhausted"),
            ClightError::Separation(m) => write!(f, "separation assertion failed: {m}"),
            ClightError::Malformed(m) => write!(f, "malformed program: {m}"),
        }
    }
}

impl ClightError {
    /// The stable diagnostic code of the error.
    pub fn code(&self) -> Code {
        match self {
            ClightError::UnknownStruct(_) => codes::E0601,
            ClightError::UnknownField(..) => codes::E0602,
            ClightError::UnknownFunction(_) => codes::E0603,
            ClightError::MemoryError(_) => codes::E0604,
            ClightError::Uninitialized(_) => codes::E0605,
            ClightError::UndefinedOperation(_) => codes::E0606,
            ClightError::ValueError(_) => codes::E0607,
            ClightError::EndOfInput(_) => codes::E0608,
            ClightError::Separation(_) => codes::E0609,
            ClightError::Malformed(_) => codes::E0610,
        }
    }
}

impl ToDiagnostics for ClightError {
    /// Clight structs are generated per node, so struct-carrying errors
    /// resolve to the node header; everything else in this layer is far
    /// from the source and keeps a dummy span.
    fn to_diagnostics(&self, spans: &SpanMap) -> Diagnostics {
        let span = match self {
            ClightError::UnknownStruct(s) => spans.node_span(*s),
            _ => Span::DUMMY,
        };
        Diagnostics::from(Diagnostic::error(self.code(), self.to_string(), span))
    }
}

impl std::error::Error for ClightError {}
