//! Service statistics: request/hit/miss/error counters and latency
//! distributions, per pipeline stage and per request.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::cache::CacheCounters;
use crate::{ArtifactKind, Stage, StageSample};

/// Cap on retained latency samples per distribution. Past the cap the
/// recorder degrades to a sliding window (oldest samples overwritten),
/// so memory stays bounded and `snapshot` stays cheap under sustained
/// traffic; counts and totals keep accumulating exactly.
const SAMPLE_CAP: usize = 4096;

/// A bounded latency recorder: exact count/total, plus a ring of the
/// most recent [`SAMPLE_CAP`] samples for percentile estimation.
#[derive(Default)]
struct Reservoir {
    samples: Vec<u64>,
    next: usize,
    count: u64,
    total: u64,
}

impl Reservoir {
    fn record(&mut self, nanos: u64) {
        self.count += 1;
        self.total += nanos;
        if self.samples.len() < SAMPLE_CAP {
            self.samples.push(nanos);
        } else {
            self.samples[self.next] = nanos;
            self.next = (self.next + 1) % SAMPLE_CAP;
        }
    }

    fn percentiles(&self) -> (u64, u64) {
        let mut ns = self.samples.clone();
        ns.sort_unstable();
        (percentile(&ns, 50), percentile(&ns, 95))
    }
}

/// Nearest-rank percentile of a **sorted** sample set; 0 on empty input.
pub fn percentile(sorted: &[u64], pct: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let pct = pct.min(100) as usize;
    // Nearest-rank: the smallest value with at least pct% of samples at
    // or below it.
    let rank = (pct * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Per-kind request/hit/miss counters (one slot per
/// [`ArtifactKind::GROUPS`] entry).
#[derive(Default)]
struct KindCounters {
    requests: [AtomicU64; ArtifactKind::GROUPS.len()],
    hits: [AtomicU64; ArtifactKind::GROUPS.len()],
    misses: [AtomicU64; ArtifactKind::GROUPS.len()],
}

/// Internal collector shared by service handles and worker closures.
#[derive(Default)]
pub(crate) struct StatsCollector {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    warnings: AtomicU64,
    kinds: KindCounters,
    /// Diagnostic code -> failed requests carrying it (a `BTreeMap` so
    /// snapshots list codes in stable order).
    failure_codes: Mutex<BTreeMap<&'static str, u64>>,
    stage_ns: Mutex<[Reservoir; Stage::ALL.len()]>,
    request_ns: Mutex<Reservoir>,
}

impl StatsCollector {
    pub(crate) fn new() -> StatsCollector {
        StatsCollector::default()
    }

    pub(crate) fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts non-fatal warnings emitted by one (uncached) compilation.
    pub(crate) fn record_warnings(&self, n: u64) {
        self.warnings.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts one failed request under each distinct diagnostic code it
    /// carried — the per-code failure rows of the snapshot.
    pub(crate) fn record_failure_codes(&self, codes: &[&'static str]) {
        let mut map = self.failure_codes.lock().expect("stats lock");
        for code in codes {
            *map.entry(code).or_insert(0) += 1;
        }
    }

    /// Records one artifact kind served: requested, and hit or missed
    /// the cache. (Request-level hit/miss counters stay the coarse "all
    /// kinds hit?" view; these are the per-kind rows.)
    pub(crate) fn record_kind(&self, kind: &ArtifactKind, hit: bool) {
        let g = kind.group_index();
        self.kinds.requests[g].fetch_add(1, Ordering::Relaxed);
        if hit {
            self.kinds.hits[g].fetch_add(1, Ordering::Relaxed);
        } else {
            self.kinds.misses[g].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_stages(&self, samples: &[StageSample]) {
        let mut per_stage = self.stage_ns.lock().expect("stats lock");
        for s in samples {
            per_stage[s.stage.index()].record(s.nanos);
        }
    }

    pub(crate) fn record_latency(&self, nanos: u64) {
        self.request_ns.lock().expect("stats lock").record(nanos);
    }

    pub(crate) fn snapshot(&self, cache: CacheCounters) -> StatsSnapshot {
        let stages = {
            let per_stage = self.stage_ns.lock().expect("stats lock");
            Stage::ALL
                .iter()
                .map(|stage| {
                    let r = &per_stage[stage.index()];
                    let (p50_nanos, p95_nanos) = r.percentiles();
                    StageLatency {
                        stage: *stage,
                        count: r.count,
                        p50_nanos,
                        p95_nanos,
                        total_nanos: r.total,
                    }
                })
                .collect()
        };
        let (request_p50_nanos, request_p95_nanos) =
            self.request_ns.lock().expect("stats lock").percentiles();
        let kinds = ArtifactKind::GROUPS
            .iter()
            .enumerate()
            .map(|(g, name)| KindStats {
                kind: name,
                requests: self.kinds.requests[g].load(Ordering::Relaxed),
                hits: self.kinds.hits[g].load(Ordering::Relaxed),
                misses: self.kinds.misses[g].load(Ordering::Relaxed),
            })
            .collect();
        let failure_codes: Vec<(&'static str, u64)> = self
            .failure_codes
            .lock()
            .expect("stats lock")
            .iter()
            .map(|(code, n)| (*code, *n))
            .collect();
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            warnings: self.warnings.load(Ordering::Relaxed),
            failure_codes,
            cache_entries: cache.entries,
            cache_bytes: cache.bytes,
            cache_evictions: cache.evictions,
            kinds,
            stages,
            request_p50_nanos,
            request_p95_nanos,
        }
    }
}

/// Per-artifact-kind serving counters (one row per
/// [`ArtifactKind::GROUPS`] group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindStats {
    /// The kind group's stable name (`c`, `wcet`, `baseline-diff`,
    /// `ir-dump`).
    pub kind: &'static str,
    /// Artifacts of this kind requested (hits + misses).
    pub requests: u64,
    /// Artifacts of this kind served from the cache.
    pub hits: u64,
    /// Artifacts of this kind that required compilation.
    pub misses: u64,
}

/// Latency distribution of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLatency {
    /// Which stage.
    pub stage: Stage,
    /// Number of (uncached) compilations sampled.
    pub count: u64,
    /// Median stage latency in nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile stage latency in nanoseconds.
    pub p95_nanos: u64,
    /// Total nanoseconds spent in the stage.
    pub total_nanos: u64,
}

/// A point-in-time view of the service counters and latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests accepted (hits + misses).
    pub requests: u64,
    /// Requests answered from the artifact cache.
    pub cache_hits: u64,
    /// Requests that ran the pipeline.
    pub cache_misses: u64,
    /// Requests that failed with a compile error (panics are counted
    /// separately in `panics`, never here).
    pub errors: u64,
    /// Requests whose compilation panicked (contained).
    pub panics: u64,
    /// Non-fatal warnings emitted across all (uncached) compilations.
    pub warnings: u64,
    /// Failed requests per diagnostic code, code-ordered. A request
    /// carrying several distinct codes counts once under each.
    pub failure_codes: Vec<(&'static str, u64)>,
    /// Artifacts currently held by the cache.
    pub cache_entries: u64,
    /// Weighed bytes currently held by the cache (stored source plus
    /// the compiler's artifact-size estimate).
    pub cache_bytes: u64,
    /// Entries evicted to honor a capacity cap (monotone).
    pub cache_evictions: u64,
    /// Per-artifact-kind serving counters ([`ArtifactKind::GROUPS`]
    /// order; a kind never requested has all-zero counters).
    pub kinds: Vec<KindStats>,
    /// Per-stage latency distributions (pipeline order). Percentiles are
    /// computed over a sliding window of recent samples (memory-bounded);
    /// `count` and `total_nanos` are exact.
    pub stages: Vec<StageLatency>,
    /// Median end-to-end request latency in nanoseconds.
    pub request_p50_nanos: u64,
    /// 95th-percentile end-to-end request latency in nanoseconds.
    pub request_p95_nanos: u64,
}

impl StatsSnapshot {
    /// Cache hit ratio in `[0, 1]`; 0 when no requests were served.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }
}

fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl std::fmt::Display for StatsSnapshot {
    /// Renders an aligned plain-text table (the `velus batch` CLI and
    /// the service bench print this verbatim).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests {}  hits {}  misses {}  errors {}  panics {}  warnings {}  hit-ratio {:.0}%",
            self.requests,
            self.cache_hits,
            self.cache_misses,
            self.errors,
            self.panics,
            self.warnings,
            self.hit_ratio() * 100.0
        )?;
        if !self.failure_codes.is_empty() {
            let rows: Vec<String> = self
                .failure_codes
                .iter()
                .map(|(code, n)| format!("{code}:{n}"))
                .collect();
            writeln!(f, "failures by code: {}", rows.join("  "))?;
        }
        writeln!(
            f,
            "cache: {} entries, {} bytes, {} evictions",
            self.cache_entries, self.cache_bytes, self.cache_evictions
        )?;
        writeln!(
            f,
            "request latency: p50 {}  p95 {}",
            fmt_nanos(self.request_p50_nanos),
            fmt_nanos(self.request_p95_nanos)
        )?;
        if self.kinds.iter().any(|k| k.requests > 0) {
            writeln!(
                f,
                "{:<14} {:>10} {:>8} {:>8}",
                "kind", "requests", "hits", "misses"
            )?;
            for k in self.kinds.iter().filter(|k| k.requests > 0) {
                writeln!(
                    f,
                    "{:<14} {:>10} {:>8} {:>8}",
                    k.kind, k.requests, k.hits, k.misses
                )?;
            }
        }
        writeln!(
            f,
            "{:<12} {:>8} {:>12} {:>12} {:>12}",
            "stage", "count", "p50", "p95", "total"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "{:<12} {:>8} {:>12} {:>12} {:>12}",
                s.stage.name(),
                s.count,
                fmt_nanos(s.p50_nanos),
                fmt_nanos(s.p95_nanos),
                fmt_nanos(s.total_nanos)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50), 50);
        assert_eq!(percentile(&xs, 95), 95);
        assert_eq!(percentile(&xs, 100), 100);
        assert_eq!(percentile(&xs, 0), 1);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 95), 7);
        assert_eq!(percentile(&[1, 2], 50), 1);
        assert_eq!(percentile(&[1, 2], 95), 2);
    }

    #[test]
    fn snapshot_collects_stage_samples() {
        let c = StatsCollector::new();
        c.record_request();
        c.record_miss();
        c.record_stages(&[
            StageSample {
                stage: Stage::Frontend,
                nanos: 100,
            },
            StageSample {
                stage: Stage::Emit,
                nanos: 10,
            },
        ]);
        c.record_latency(110);
        let snap = c.snapshot(CacheCounters::default());
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.cache_misses, 1);
        let frontend = &snap.stages[Stage::Frontend.index()];
        assert_eq!((frontend.count, frontend.p50_nanos), (1, 100));
        assert_eq!(snap.request_p50_nanos, 110);
        // The table renders every stage row.
        let rendered = snap.to_string();
        for stage in Stage::ALL {
            assert!(rendered.contains(stage.name()), "{rendered}");
        }
    }

    #[test]
    fn kind_counters_surface_as_rows() {
        let c = StatsCollector::new();
        c.record_kind(&ArtifactKind::CCode, false);
        c.record_kind(&ArtifactKind::CCode, true);
        c.record_kind(
            &ArtifactKind::Wcet {
                model: crate::WcetModelKind::Gcc,
            },
            false,
        );
        let snap = c.snapshot(CacheCounters::default());
        let row = |name: &str| *snap.kinds.iter().find(|k| k.kind == name).unwrap();
        assert_eq!(
            (row("c").requests, row("c").hits, row("c").misses),
            (2, 1, 1)
        );
        assert_eq!((row("wcet").requests, row("wcet").misses), (1, 1));
        // Only requested kinds render; the others stay off the table.
        let rendered = snap.to_string();
        assert!(rendered.contains("wcet"), "{rendered}");
        assert!(!rendered.contains("baseline-diff"), "{rendered}");
    }
}
