//! Service statistics: request/hit/miss/error counters and latency
//! distributions, per pipeline stage and per request.
//!
//! Latency distributions are [`velus_obs`] log-linear histograms:
//! recording is a few relaxed atomic increments on the recording
//! worker's own shard (no mutex, no allocation), counts are exact over
//! the **full run** (not a sliding sample window), and shards merge
//! associatively at snapshot time, which is what makes p99/p999
//! trustworthy under sustained traffic.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use velus_common::codes;
use velus_obs::{PromWriter, ShardedHistogram};

use crate::cache::CacheCounters;
use crate::{ArtifactKind, Stage, StageSample};

/// Nearest-rank percentile of a **sorted** sample set; 0 on empty input.
///
/// The serving statistics themselves use histograms now, but the
/// benches still rank their (small, exact) sample vectors with this.
pub fn percentile(sorted: &[u64], pct: u32) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let pct = pct.min(100) as usize;
    // Nearest-rank: the smallest value with at least pct% of samples at
    // or below it.
    let rank = (pct * sorted.len()).div_ceil(100).max(1);
    sorted[rank - 1]
}

/// Per-kind request/hit/miss counters (one slot per
/// [`ArtifactKind::GROUPS`] entry).
#[derive(Default)]
struct KindCounters {
    requests: [AtomicU64; ArtifactKind::GROUPS.len()],
    hits: [AtomicU64; ArtifactKind::GROUPS.len()],
    misses: [AtomicU64; ArtifactKind::GROUPS.len()],
}

/// Internal collector shared by service handles and worker closures.
#[derive(Default)]
pub(crate) struct StatsCollector {
    requests: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    errors: AtomicU64,
    panics: AtomicU64,
    warnings: AtomicU64,
    shed: AtomicU64,
    deadline_exceeded: AtomicU64,
    retries_attempted: AtomicU64,
    retries_succeeded: AtomicU64,
    quarantine_hits: AtomicU64,
    drains: AtomicU64,
    drain_ns: AtomicU64,
    kinds: KindCounters,
    /// Lint findings per code, indexed by the code's position in
    /// [`codes::LINT_CODES`] (a fixed key space, so plain atomics
    /// suffice — no lock on the warning path).
    lint_codes: [AtomicU64; codes::LINT_CODES.len()],
    /// Diagnostic code -> failed requests carrying it (a `BTreeMap` so
    /// snapshots list codes in stable order).
    failure_codes: Mutex<BTreeMap<&'static str, u64>>,
    stage_ns: [ShardedHistogram; Stage::ALL.len()],
    request_ns: ShardedHistogram,
}

impl StatsCollector {
    pub(crate) fn new() -> StatsCollector {
        StatsCollector::default()
    }

    pub(crate) fn record_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_panic(&self) {
        self.panics.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts non-fatal warnings emitted by one (uncached) compilation.
    pub(crate) fn record_warnings(&self, n: u64) {
        self.warnings.fetch_add(n, Ordering::Relaxed);
    }

    /// Counts findings under their lint codes. Ids outside
    /// [`codes::LINT_CODES`] only land in the coarse `warnings` total.
    pub(crate) fn record_lint_codes<'a>(&self, ids: impl IntoIterator<Item = &'a str>) {
        for id in ids {
            if let Some(i) = codes::LINT_CODES.iter().position(|c| c.id == id) {
                self.lint_codes[i].fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Counts one request rejected at admission (overload or drain).
    pub(crate) fn record_shed(&self) {
        self.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request that failed because its deadline expired.
    pub(crate) fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one retry attempt of a transient failure.
    pub(crate) fn record_retry_attempt(&self) {
        self.retries_attempted.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request that ultimately succeeded on a retry.
    pub(crate) fn record_retry_success(&self) {
        self.retries_succeeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Counts one request rejected by the panic quarantine.
    pub(crate) fn record_quarantine_hit(&self) {
        self.quarantine_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed drain and its wall-clock duration.
    pub(crate) fn record_drain(&self, nanos: u64) {
        self.drains.fetch_add(1, Ordering::Relaxed);
        self.drain_ns.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Counts one failed request under each distinct diagnostic code it
    /// carried — the per-code failure rows of the snapshot.
    pub(crate) fn record_failure_codes(&self, codes: &[&'static str]) {
        let mut map = self.failure_codes.lock().expect("stats lock");
        for code in codes {
            *map.entry(code).or_insert(0) += 1;
        }
    }

    /// Records one artifact kind served: requested, and hit or missed
    /// the cache. (Request-level hit/miss counters stay the coarse "all
    /// kinds hit?" view; these are the per-kind rows.)
    pub(crate) fn record_kind(&self, kind: &ArtifactKind, hit: bool) {
        let g = kind.group_index();
        self.kinds.requests[g].fetch_add(1, Ordering::Relaxed);
        if hit {
            self.kinds.hits[g].fetch_add(1, Ordering::Relaxed);
        } else {
            self.kinds.misses[g].fetch_add(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn record_stages(&self, samples: &[StageSample]) {
        for s in samples {
            self.stage_ns[s.stage.index()].record(s.nanos);
        }
    }

    pub(crate) fn record_latency(&self, nanos: u64) {
        self.request_ns.record(nanos);
    }

    pub(crate) fn snapshot(
        &self,
        cache: CacheCounters,
        queue_depth: u64,
        quarantined: u64,
    ) -> StatsSnapshot {
        let stages = Stage::ALL
            .iter()
            .map(|stage| {
                let h = self.stage_ns[stage.index()].snapshot();
                StageLatency {
                    stage: *stage,
                    count: h.count(),
                    p50_nanos: h.percentile(50.0),
                    p95_nanos: h.percentile(95.0),
                    p99_nanos: h.percentile(99.0),
                    total_nanos: h.sum(),
                }
            })
            .collect();
        let request = self.request_ns.snapshot();
        let kinds = ArtifactKind::GROUPS
            .iter()
            .enumerate()
            .map(|(g, name)| KindStats {
                kind: name,
                requests: self.kinds.requests[g].load(Ordering::Relaxed),
                hits: self.kinds.hits[g].load(Ordering::Relaxed),
                misses: self.kinds.misses[g].load(Ordering::Relaxed),
            })
            .collect();
        let failure_codes: Vec<(&'static str, u64)> = self
            .failure_codes
            .lock()
            .expect("stats lock")
            .iter()
            .map(|(code, n)| (*code, *n))
            .collect();
        let lint_codes: Vec<(&'static str, u64)> = codes::LINT_CODES
            .iter()
            .zip(&self.lint_codes)
            .map(|(code, n)| (code.id, n.load(Ordering::Relaxed)))
            .filter(|(_, n)| *n > 0)
            .collect();
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            errors: self.errors.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            warnings: self.warnings.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            retries_attempted: self.retries_attempted.load(Ordering::Relaxed),
            retries_succeeded: self.retries_succeeded.load(Ordering::Relaxed),
            quarantine_hits: self.quarantine_hits.load(Ordering::Relaxed),
            quarantined,
            drains: self.drains.load(Ordering::Relaxed),
            drain_ns: self.drain_ns.load(Ordering::Relaxed),
            failure_codes,
            lint_codes,
            cache_entries: cache.entries,
            cache_bytes: cache.bytes,
            cache_evictions: cache.evictions,
            queue_depth,
            kinds,
            stages,
            request_p50_nanos: request.percentile(50.0),
            request_p95_nanos: request.percentile(95.0),
            request_p99_nanos: request.percentile(99.0),
            request_p999_nanos: request.percentile(99.9),
            request_count: request.count(),
            request_total_nanos: request.sum(),
        }
    }
}

/// Per-artifact-kind serving counters (one row per
/// [`ArtifactKind::GROUPS`] group).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KindStats {
    /// The kind group's stable name (`c`, `wcet`, `baseline-diff`,
    /// `ir-dump`).
    pub kind: &'static str,
    /// Artifacts of this kind requested (hits + misses).
    pub requests: u64,
    /// Artifacts of this kind served from the cache.
    pub hits: u64,
    /// Artifacts of this kind that required compilation.
    pub misses: u64,
}

/// Latency distribution of one pipeline stage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageLatency {
    /// Which stage.
    pub stage: Stage,
    /// Number of (uncached) compilations sampled.
    pub count: u64,
    /// Median stage latency in nanoseconds.
    pub p50_nanos: u64,
    /// 95th-percentile stage latency in nanoseconds.
    pub p95_nanos: u64,
    /// 99th-percentile stage latency in nanoseconds.
    pub p99_nanos: u64,
    /// Total nanoseconds spent in the stage.
    pub total_nanos: u64,
}

/// A point-in-time view of the service counters and latencies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Requests accepted (hits + misses).
    pub requests: u64,
    /// Requests answered from the artifact cache.
    pub cache_hits: u64,
    /// Requests that ran the pipeline.
    pub cache_misses: u64,
    /// Requests that failed with a compile error (panics are counted
    /// separately in `panics`, never here).
    pub errors: u64,
    /// Requests whose compilation panicked (contained).
    pub panics: u64,
    /// Non-fatal warnings emitted across all (uncached) compilations.
    pub warnings: u64,
    /// Requests rejected at admission (overload shedding plus
    /// rejections while draining); never counted under `requests`.
    pub shed: u64,
    /// Requests that failed because their deadline expired.
    pub deadline_exceeded: u64,
    /// Retry attempts of transient failures (each re-execution counts
    /// one, whatever its outcome).
    pub retries_attempted: u64,
    /// Requests that ultimately succeeded on a retry.
    pub retries_succeeded: u64,
    /// Requests rejected because their input digest was quarantined.
    pub quarantine_hits: u64,
    /// Input digests held by the panic quarantine at snapshot time.
    pub quarantined: u64,
    /// Graceful drains performed (usually 0 or 1 per service lifetime).
    pub drains: u64,
    /// Total wall-clock nanoseconds spent draining.
    pub drain_ns: u64,
    /// Failed requests per diagnostic code, code-ordered. A request
    /// carrying several distinct codes counts once under each.
    pub failure_codes: Vec<(&'static str, u64)>,
    /// Lint findings per code ([`codes::LINT_CODES`] order, zero rows
    /// elided). Each finding counts one, so one compilation can add
    /// several to the same code.
    pub lint_codes: Vec<(&'static str, u64)>,
    /// Artifacts currently held by the cache.
    pub cache_entries: u64,
    /// Weighed bytes currently held by the cache (stored source plus
    /// the compiler's artifact-size estimate).
    pub cache_bytes: u64,
    /// Entries evicted to honor a capacity cap (monotone).
    pub cache_evictions: u64,
    /// Requests in flight when the snapshot was taken.
    pub queue_depth: u64,
    /// Per-artifact-kind serving counters ([`ArtifactKind::GROUPS`]
    /// order; a kind never requested has all-zero counters).
    pub kinds: Vec<KindStats>,
    /// Per-stage latency distributions (pipeline order), from merged
    /// per-worker histograms: exact counts over the full run,
    /// bucket-quantized percentile values.
    pub stages: Vec<StageLatency>,
    /// Median end-to-end request latency in nanoseconds.
    pub request_p50_nanos: u64,
    /// 95th-percentile end-to-end request latency in nanoseconds.
    pub request_p95_nanos: u64,
    /// 99th-percentile end-to-end request latency in nanoseconds.
    pub request_p99_nanos: u64,
    /// 99.9th-percentile end-to-end request latency in nanoseconds.
    pub request_p999_nanos: u64,
    /// End-to-end latency samples recorded (exact).
    pub request_count: u64,
    /// Total end-to-end latency across all requests, in nanoseconds.
    pub request_total_nanos: u64,
}

impl StatsSnapshot {
    /// Cache hit ratio in `[0, 1]`; 0 when no requests were served.
    pub fn hit_ratio(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.requests as f64
        }
    }

    /// Renders the snapshot in the Prometheus text exposition format —
    /// the body a `/stats` endpoint serves and `velus batch
    /// --metrics-out` writes.
    ///
    /// Name conventions: everything is prefixed `velus_`, monotone
    /// counters end in `_total`, latencies are `_seconds` summaries
    /// with `quantile` labels, and per-code failure counters carry a
    /// `class` label (`source` / `transient`) from
    /// [`velus_common::codes::retry_class_of`] so dashboards can
    /// separate deterministic input failures from environmental ones.
    pub fn render_prometheus(&self) -> String {
        let secs = |ns: u64| ns as f64 / 1e9;
        let mut w = PromWriter::new("velus");
        w.header(
            "requests_total",
            "Requests accepted (hits + misses).",
            "counter",
        );
        w.sample("requests_total", &[], self.requests as f64);
        w.header(
            "cache_hits_total",
            "Requests fully served from the cache.",
            "counter",
        );
        w.sample("cache_hits_total", &[], self.cache_hits as f64);
        w.header(
            "cache_misses_total",
            "Requests that ran the pipeline.",
            "counter",
        );
        w.sample("cache_misses_total", &[], self.cache_misses as f64);
        w.header(
            "errors_total",
            "Requests failed with a compile error.",
            "counter",
        );
        w.sample("errors_total", &[], self.errors as f64);
        w.header(
            "panics_total",
            "Requests whose compilation panicked.",
            "counter",
        );
        w.sample("panics_total", &[], self.panics as f64);
        w.header(
            "warnings_total",
            "Non-fatal warnings across compilations.",
            "counter",
        );
        w.sample("warnings_total", &[], self.warnings as f64);
        if !self.lint_codes.is_empty() {
            w.header(
                "lint_findings_total",
                "Static-analysis lint findings per diagnostic code.",
                "counter",
            );
            for (code, n) in &self.lint_codes {
                w.sample("lint_findings_total", &[("code", code)], *n as f64);
            }
        }
        w.header(
            "shed_total",
            "Requests rejected at admission (overload or drain).",
            "counter",
        );
        w.sample("shed_total", &[], self.shed as f64);
        w.header(
            "deadline_exceeded_total",
            "Requests failed by an expired deadline.",
            "counter",
        );
        w.sample(
            "deadline_exceeded_total",
            &[],
            self.deadline_exceeded as f64,
        );
        w.header(
            "retries_total",
            "Retry attempts of transient failures.",
            "counter",
        );
        w.sample("retries_total", &[], self.retries_attempted as f64);
        w.header(
            "retry_successes_total",
            "Requests that succeeded on a retry.",
            "counter",
        );
        w.sample("retry_successes_total", &[], self.retries_succeeded as f64);
        w.header(
            "quarantine_hits_total",
            "Requests rejected by the panic quarantine.",
            "counter",
        );
        w.sample("quarantine_hits_total", &[], self.quarantine_hits as f64);
        w.header(
            "quarantined",
            "Input digests currently quarantined.",
            "gauge",
        );
        w.sample("quarantined", &[], self.quarantined as f64);
        w.header("drains_total", "Graceful drains performed.", "counter");
        w.sample("drains_total", &[], self.drains as f64);
        w.header(
            "drain_seconds_total",
            "Total wall-clock time spent draining.",
            "counter",
        );
        w.sample("drain_seconds_total", &[], secs(self.drain_ns));
        if !self.failure_codes.is_empty() {
            w.header(
                "failures_total",
                "Failed requests per diagnostic code, with retry class.",
                "counter",
            );
            for (code, n) in &self.failure_codes {
                let class = codes::retry_class_of(code).label();
                w.sample(
                    "failures_total",
                    &[("code", code), ("class", class)],
                    *n as f64,
                );
            }
        }
        w.header(
            "kind_requests_total",
            "Artifacts requested, per kind.",
            "counter",
        );
        w.header(
            "kind_cache_hits_total",
            "Artifacts served from cache, per kind.",
            "counter",
        );
        w.header(
            "kind_cache_misses_total",
            "Artifacts compiled, per kind.",
            "counter",
        );
        for k in &self.kinds {
            let labels = [("kind", k.kind)];
            w.sample("kind_requests_total", &labels, k.requests as f64);
            w.sample("kind_cache_hits_total", &labels, k.hits as f64);
            w.sample("kind_cache_misses_total", &labels, k.misses as f64);
        }
        w.header("cache_entries", "Artifacts currently cached.", "gauge");
        w.sample("cache_entries", &[], self.cache_entries as f64);
        w.header("cache_bytes", "Weighed bytes currently cached.", "gauge");
        w.sample("cache_bytes", &[], self.cache_bytes as f64);
        w.header(
            "cache_evictions_total",
            "Cache entries evicted for capacity.",
            "counter",
        );
        w.sample("cache_evictions_total", &[], self.cache_evictions as f64);
        w.header(
            "queue_depth",
            "Requests in flight at snapshot time.",
            "gauge",
        );
        w.sample("queue_depth", &[], self.queue_depth as f64);
        w.header(
            "request_latency_seconds",
            "End-to-end request latency (merged-histogram quantiles).",
            "summary",
        );
        for (q, ns) in [
            ("0.5", self.request_p50_nanos),
            ("0.95", self.request_p95_nanos),
            ("0.99", self.request_p99_nanos),
            ("0.999", self.request_p999_nanos),
        ] {
            w.sample("request_latency_seconds", &[("quantile", q)], secs(ns));
        }
        w.sample(
            "request_latency_seconds_sum",
            &[],
            secs(self.request_total_nanos),
        );
        w.sample(
            "request_latency_seconds_count",
            &[],
            self.request_count as f64,
        );
        w.header(
            "stage_latency_seconds",
            "Per-pipeline-stage latency (merged-histogram quantiles).",
            "summary",
        );
        for s in &self.stages {
            let stage = s.stage.name();
            for (q, ns) in [
                ("0.5", s.p50_nanos),
                ("0.95", s.p95_nanos),
                ("0.99", s.p99_nanos),
            ] {
                w.sample(
                    "stage_latency_seconds",
                    &[("stage", stage), ("quantile", q)],
                    secs(ns),
                );
            }
            w.sample(
                "stage_latency_seconds_sum",
                &[("stage", stage)],
                secs(s.total_nanos),
            );
            w.sample(
                "stage_latency_seconds_count",
                &[("stage", stage)],
                s.count as f64,
            );
        }
        w.finish()
    }
}

fn fmt_nanos(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl std::fmt::Display for StatsSnapshot {
    /// Renders an aligned plain-text table (the `velus batch` CLI and
    /// the service bench print this verbatim).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "requests {}  hits {}  misses {}  errors {}  panics {}  warnings {}  hit-ratio {:.0}%",
            self.requests,
            self.cache_hits,
            self.cache_misses,
            self.errors,
            self.panics,
            self.warnings,
            self.hit_ratio() * 100.0
        )?;
        if !self.failure_codes.is_empty() {
            let rows: Vec<String> = self
                .failure_codes
                .iter()
                .map(|(code, n)| format!("{code}:{n}"))
                .collect();
            writeln!(f, "failures by code: {}", rows.join("  "))?;
        }
        if !self.lint_codes.is_empty() {
            let rows: Vec<String> = self
                .lint_codes
                .iter()
                .map(|(code, n)| format!("{code}:{n}"))
                .collect();
            writeln!(f, "lint findings by code: {}", rows.join("  "))?;
        }
        writeln!(
            f,
            "robustness: shed {}  deadline-exceeded {}  retries {}/{}  \
             quarantine {} held / {} hits  drains {} ({})",
            self.shed,
            self.deadline_exceeded,
            self.retries_succeeded,
            self.retries_attempted,
            self.quarantined,
            self.quarantine_hits,
            self.drains,
            fmt_nanos(self.drain_ns)
        )?;
        writeln!(
            f,
            "cache: {} entries, {} bytes, {} evictions",
            self.cache_entries, self.cache_bytes, self.cache_evictions
        )?;
        writeln!(
            f,
            "request latency: p50 {}  p95 {}  p99 {}  p999 {}",
            fmt_nanos(self.request_p50_nanos),
            fmt_nanos(self.request_p95_nanos),
            fmt_nanos(self.request_p99_nanos),
            fmt_nanos(self.request_p999_nanos)
        )?;
        if self.kinds.iter().any(|k| k.requests > 0) {
            writeln!(
                f,
                "{:<14} {:>10} {:>8} {:>8}",
                "kind", "requests", "hits", "misses"
            )?;
            for k in self.kinds.iter().filter(|k| k.requests > 0) {
                writeln!(
                    f,
                    "{:<14} {:>10} {:>8} {:>8}",
                    k.kind, k.requests, k.hits, k.misses
                )?;
            }
        }
        writeln!(
            f,
            "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
            "stage", "count", "p50", "p95", "p99", "total"
        )?;
        for s in &self.stages {
            writeln!(
                f,
                "{:<12} {:>8} {:>12} {:>12} {:>12} {:>12}",
                s.stage.name(),
                s.count,
                fmt_nanos(s.p50_nanos),
                fmt_nanos(s.p95_nanos),
                fmt_nanos(s.p99_nanos),
                fmt_nanos(s.total_nanos)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_is_nearest_rank() {
        let xs: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&xs, 50), 50);
        assert_eq!(percentile(&xs, 95), 95);
        assert_eq!(percentile(&xs, 100), 100);
        assert_eq!(percentile(&xs, 0), 1);
        assert_eq!(percentile(&[], 50), 0);
        assert_eq!(percentile(&[7], 50), 7);
        assert_eq!(percentile(&[7], 95), 7);
        assert_eq!(percentile(&[1, 2], 50), 1);
        assert_eq!(percentile(&[1, 2], 95), 2);
    }

    #[test]
    fn percentile_edge_cases_hold() {
        // Empty and single-sample inputs (the degenerate distributions
        // a cold service reports).
        assert_eq!(percentile(&[], 0), 0);
        assert_eq!(percentile(&[], 100), 0);
        assert_eq!(percentile(&[42], 0), 42);
        assert_eq!(percentile(&[42], 100), 42);
        // Percentiles above 100 clamp instead of indexing out of range.
        assert_eq!(percentile(&[1, 2, 3], 1000), 3);
    }

    #[test]
    fn latency_recording_is_insertion_order_independent() {
        // The old sliding-window reservoir changed percentiles when its
        // ring wrapped; the histogram counts every sample, so rotating
        // the insertion order (the wraparound scenario) cannot change
        // any reported statistic.
        let samples: Vec<u64> = (0..10_000u64).map(|k| (k * 7919) % 100_000).collect();
        let forward = StatsCollector::new();
        let rotated = StatsCollector::new();
        for &s in &samples {
            forward.record_latency(s);
        }
        for &s in samples[5000..].iter().chain(&samples[..5000]) {
            rotated.record_latency(s);
        }
        let a = forward.snapshot(CacheCounters::default(), 0, 0);
        let b = rotated.snapshot(CacheCounters::default(), 0, 0);
        assert_eq!(a.request_p50_nanos, b.request_p50_nanos);
        assert_eq!(a.request_p999_nanos, b.request_p999_nanos);
        assert_eq!(a.request_count, 10_000);
        assert_eq!(a.request_total_nanos, b.request_total_nanos);
    }

    #[test]
    fn snapshot_collects_stage_samples() {
        let c = StatsCollector::new();
        c.record_request();
        c.record_miss();
        c.record_stages(&[
            StageSample {
                stage: Stage::Frontend,
                nanos: 100,
            },
            StageSample {
                stage: Stage::Emit,
                nanos: 10,
            },
        ]);
        c.record_latency(110);
        let snap = c.snapshot(CacheCounters::default(), 0, 0);
        assert_eq!(snap.requests, 1);
        assert_eq!(snap.cache_misses, 1);
        let frontend = &snap.stages[Stage::Frontend.index()];
        assert_eq!((frontend.count, frontend.p50_nanos), (1, 100));
        assert_eq!(snap.request_p50_nanos, 110);
        // The table renders every stage row.
        let rendered = snap.to_string();
        for stage in Stage::ALL {
            assert!(rendered.contains(stage.name()), "{rendered}");
        }
        assert!(rendered.contains("p999"), "{rendered}");
    }

    #[test]
    fn kind_counters_surface_as_rows() {
        let c = StatsCollector::new();
        c.record_kind(&ArtifactKind::CCode, false);
        c.record_kind(&ArtifactKind::CCode, true);
        c.record_kind(
            &ArtifactKind::Wcet {
                model: crate::WcetModelKind::Gcc,
            },
            false,
        );
        let snap = c.snapshot(CacheCounters::default(), 0, 0);
        let row = |name: &str| *snap.kinds.iter().find(|k| k.kind == name).unwrap();
        assert_eq!(
            (row("c").requests, row("c").hits, row("c").misses),
            (2, 1, 1)
        );
        assert_eq!((row("wcet").requests, row("wcet").misses), (1, 1));
        // Only requested kinds render; the others stay off the table.
        let rendered = snap.to_string();
        assert!(rendered.contains("wcet"), "{rendered}");
        assert!(!rendered.contains("baseline-diff"), "{rendered}");
    }

    #[test]
    fn prometheus_rendering_validates_and_labels_retry_class() {
        let c = StatsCollector::new();
        c.record_request();
        c.record_miss();
        c.record_error();
        c.record_failure_codes(&["E0201", "E0000"]);
        c.record_warnings(3);
        c.record_lint_codes(["W0102", "W0102", "W0104", "E0042"]);
        c.record_kind(&ArtifactKind::CCode, false);
        c.record_latency(1_500_000);
        c.record_shed();
        c.record_shed();
        c.record_deadline_exceeded();
        c.record_retry_attempt();
        c.record_retry_attempt();
        c.record_retry_success();
        c.record_quarantine_hit();
        c.record_drain(2_000_000_000);
        let snap = c.snapshot(CacheCounters::default(), 3, 1);
        let text = snap.render_prometheus();
        velus_obs::prom::check(&text).expect("exposition must validate");
        assert!(text.contains("velus_failures_total{code=\"E0201\",class=\"source\"} 1"));
        assert!(text.contains("velus_failures_total{code=\"E0000\",class=\"transient\"} 1"));
        // Lint findings count per code; unregistered ids stay out.
        assert!(text.contains("velus_lint_findings_total{code=\"W0102\"} 2"));
        assert!(text.contains("velus_lint_findings_total{code=\"W0104\"} 1"));
        assert!(!text.contains("E0042"), "{text}");
        assert_eq!(snap.lint_codes, vec![("W0102", 2), ("W0104", 1)]);
        assert!(text.contains("velus_queue_depth 3"));
        assert!(text.contains("velus_kind_requests_total{kind=\"c\"} 1"));
        assert!(text.contains("request_latency_seconds{quantile=\"0.999\"}"));
        assert!(text.contains("velus_stage_latency_seconds_count{stage=\"frontend\"} 0"));
        // The robustness counters render and validate too.
        assert!(text.contains("velus_shed_total 2"));
        assert!(text.contains("velus_deadline_exceeded_total 1"));
        assert!(text.contains("velus_retries_total 2"));
        assert!(text.contains("velus_retry_successes_total 1"));
        assert!(text.contains("velus_quarantine_hits_total 1"));
        assert!(text.contains("velus_quarantined 1"));
        assert!(text.contains("velus_drains_total 1"));
        assert!(text.contains("velus_drain_seconds_total 2"));
        // …and the plain-text table carries the robustness row.
        let table = snap.to_string();
        assert!(
            table.contains("robustness: shed 2  deadline-exceeded 1  retries 1/2"),
            "{table}"
        );
        assert!(
            table.contains("lint findings by code: W0102:2  W0104:1"),
            "{table}"
        );
        assert!(
            table.contains("quarantine 1 held / 1 hits  drains 1"),
            "{table}"
        );
    }

    #[test]
    fn stage_histograms_merge_across_threads() {
        let c = std::sync::Arc::new(StatsCollector::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = std::sync::Arc::clone(&c);
                s.spawn(move || {
                    for k in 0..500u64 {
                        c.record_stages(&[StageSample {
                            stage: Stage::Check,
                            nanos: 1000 + k,
                        }]);
                    }
                });
            }
        });
        let snap = c.snapshot(CacheCounters::default(), 0, 0);
        let check = &snap.stages[Stage::Check.index()];
        assert_eq!(check.count, 2000);
        assert!(check.p50_nanos >= 1000 && check.p99_nanos <= 1600);
    }
}
