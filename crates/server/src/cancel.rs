//! Cooperative cancellation: a cheap, clonable token checked at pass
//! boundaries.
//!
//! A [`CancelToken`] is created per request when the service admits it
//! and threaded into the compiler through
//! [`Compiler::compile_cancellable`](crate::Compiler::compile_cancellable).
//! It combines three signals:
//!
//! * a **deadline** (from the request's `deadline_ms`, measured from
//!   admission so queue wait counts against it),
//! * an **explicit flag** (`cancel()`),
//! * a shared **kill switch** the service flips when a drain deadline
//!   expires, cancelling every in-flight request at once.
//!
//! Checking is a couple of relaxed atomic loads plus (when a deadline is
//! set) one `Instant::now()` — cheap enough for every pass boundary.
//! Cancellation is *cooperative*: a pass that is already running
//! finishes; the pipeline aborts before starting the next one.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a token reports itself cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelReason {
    /// The request's deadline expired (code `E0802`).
    Deadline,
    /// The service is shutting down or draining (code `E0805`).
    Shutdown,
}

#[derive(Debug, Default)]
struct Inner {
    deadline: Option<Instant>,
    cancelled: AtomicBool,
    /// Service-wide drain/shutdown switch, shared across every token
    /// the service hands out. `None` for standalone tokens.
    kill: Option<Arc<AtomicBool>>,
}

/// A clonable cancellation token (clones observe the same state).
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never cancels on its own (only via [`cancel`]).
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn unbounded() -> CancelToken {
        CancelToken::default()
    }

    /// A token that cancels when `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                deadline: Some(deadline),
                ..Inner::default()
            }),
        }
    }

    /// A per-request token: optional deadline plus the service's shared
    /// kill switch.
    pub(crate) fn for_request(deadline: Option<Instant>, kill: Arc<AtomicBool>) -> CancelToken {
        CancelToken {
            inner: Arc::new(Inner {
                deadline,
                cancelled: AtomicBool::new(false),
                kill: Some(kill),
            }),
        }
    }

    /// Cancels the token explicitly (reported as [`CancelReason::Shutdown`]).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Relaxed);
    }

    /// The token's deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Why the token is cancelled, or `None` while work may continue.
    /// An expired deadline wins over a concurrent shutdown: the client
    /// sees the per-request condition, not the service-wide one.
    pub fn state(&self) -> Option<CancelReason> {
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Some(CancelReason::Deadline);
            }
        }
        if self.inner.cancelled.load(Ordering::Relaxed)
            || self
                .inner
                .kill
                .as_ref()
                .is_some_and(|k| k.load(Ordering::Relaxed))
        {
            return Some(CancelReason::Shutdown);
        }
        None
    }

    /// Whether the token is cancelled (deadline, explicit, or kill switch).
    pub fn is_cancelled(&self) -> bool {
        self.state().is_some()
    }

    /// Time remaining until the deadline (`None` = no deadline;
    /// `Some(ZERO)` = already expired).
    pub fn remaining(&self) -> Option<Duration> {
        self.inner
            .deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

impl CancelReason {
    /// The diagnostic code of the cancellation (`E0802` / `E0805`).
    pub fn code(self) -> &'static str {
        match self {
            CancelReason::Deadline => "E0802",
            CancelReason::Shutdown => "E0805",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_token_only_cancels_explicitly() {
        let t = CancelToken::unbounded();
        assert_eq!(t.state(), None);
        assert!(!t.is_cancelled());
        let clone = t.clone();
        t.cancel();
        assert_eq!(clone.state(), Some(CancelReason::Shutdown));
    }

    #[test]
    fn expired_deadline_cancels_and_wins_over_shutdown() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(t.state(), Some(CancelReason::Deadline));
        t.cancel();
        assert_eq!(t.state(), Some(CancelReason::Deadline));
        assert_eq!(t.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn future_deadline_does_not_cancel() {
        let t = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert_eq!(t.state(), None);
        assert!(t.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn kill_switch_cancels_every_request_token() {
        let kill = Arc::new(AtomicBool::new(false));
        let a = CancelToken::for_request(None, Arc::clone(&kill));
        let b = CancelToken::for_request(None, Arc::clone(&kill));
        assert!(!a.is_cancelled() && !b.is_cancelled());
        kill.store(true, Ordering::Relaxed);
        assert_eq!(a.state(), Some(CancelReason::Shutdown));
        assert_eq!(b.state(), Some(CancelReason::Shutdown));
    }

    #[test]
    fn reasons_map_to_codes() {
        assert_eq!(CancelReason::Deadline.code(), "E0802");
        assert_eq!(CancelReason::Shutdown.code(), "E0805");
    }
}
