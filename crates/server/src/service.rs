//! The compilation service proper: cache lookup, worker-pool dispatch,
//! panic containment, and statistics.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use velus_obs::trace;
use velus_obs::Recorder;

use crate::cache::{ArtifactCache, CacheConfig, CacheKey};
use crate::pool::WorkerPool;
use crate::sched::{submission_order, CostModel, SchedulePolicy};
use crate::stats::{StatsCollector, StatsSnapshot};
use crate::{ArtifactKind, CompileRequest, Compiler, DiagRecord, FailureReport};

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Whether the artifact cache is consulted and filled.
    pub caching: bool,
    /// Cache shape and capacity (shard count, entry/byte caps).
    pub cache: CacheConfig,
    /// Batch submission order (FIFO or cost-predicted LPT).
    pub schedule: SchedulePolicy,
    /// Structured-tracing recorder. When set, every request runs under
    /// a trace scope (queue wait, scheduling, cache probe, pipeline
    /// passes, artifact handling) and the recorder's flight recorder
    /// retains the slowest requests' span trees. `None` (the default)
    /// keeps the service entirely trace-free.
    pub recorder: Option<Recorder>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            caching: true,
            cache: CacheConfig::default(),
            schedule: SchedulePolicy::default(),
            recorder: None,
        }
    }
}

/// Why a request failed.
#[derive(Debug)]
pub enum ServiceError<E> {
    /// The compiler reported an error (the usual case: bad input). The
    /// payload is no longer an opaque `Display` string: the structured
    /// [`FailureReport`] carries every diagnostic's stable code,
    /// originating stage, severity and resolved position, and the
    /// original typed error rides along for programmatic access.
    Compile {
        /// The compiler's typed error.
        error: E,
        /// The flattened, coded diagnostics of the failure.
        report: FailureReport,
    },
    /// The compiler panicked; the panic was contained to this request.
    Panic(String),
    /// The compiler returned no artifact for a requested kind — a bug in
    /// the [`Compiler`] implementation, surfaced loudly rather than
    /// served as a partial result.
    MissingArtifact(ArtifactKind),
    /// The worker executing the request disappeared before reporting
    /// (should not happen; a defensive placeholder, never silent).
    Lost,
}

impl<E: std::fmt::Display> std::fmt::Display for ServiceError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Compile { report, .. } => write!(f, "{report}"),
            ServiceError::Panic(msg) => write!(f, "compiler panicked: {msg}"),
            ServiceError::MissingArtifact(kind) => {
                write!(f, "compiler produced no `{kind}` artifact")
            }
            ServiceError::Lost => f.write_str("request lost by the worker pool"),
        }
    }
}

/// One served artifact of one request (a request yields one per
/// requested kind, in the request's kind order).
pub struct ArtifactReport<C: Compiler> {
    /// Which kind this artifact is.
    pub kind: ArtifactKind,
    /// The shared artifact.
    pub artifact: Arc<C::Artifact>,
    /// Whether *this kind* came from the cache (a mixed request can hit
    /// some kinds and compile others).
    pub cache_hit: bool,
}

/// The outcome of one request within a batch.
pub struct RequestReport<C: Compiler> {
    /// The request's label.
    pub name: String,
    /// The served artifacts (one per requested kind, in kind order), or
    /// the failure.
    pub result: Result<Vec<ArtifactReport<C>>, ServiceError<C::Error>>,
    /// Whether **every** requested kind was served from the cache (the
    /// pipeline did not run at all).
    pub cache_hit: bool,
    /// Non-fatal warnings the compilation emitted (empty when every
    /// kind was served from the cache — warnings surface when the
    /// pipeline actually runs).
    pub warnings: Vec<DiagRecord>,
    /// End-to-end latency of this request (queueing excluded; measured
    /// from when a worker picks it up).
    pub latency: Duration,
}

impl<C: Compiler> RequestReport<C> {
    /// The served artifact of the given kind, if the request succeeded
    /// and asked for it.
    pub fn artifact(&self, kind: &ArtifactKind) -> Option<&Arc<C::Artifact>> {
        self.result
            .as_ref()
            .ok()?
            .iter()
            .find(|a| a.kind == *kind)
            .map(|a| &a.artifact)
    }

    /// The first served artifact (the request's primary kind), if any.
    /// For a default request this is the C artifact.
    pub fn primary(&self) -> Option<&Arc<C::Artifact>> {
        self.result.as_ref().ok()?.first().map(|a| &a.artifact)
    }
}

/// The outcome of a whole batch, in request order.
pub struct BatchReport<C: Compiler> {
    /// Per-request reports, positionally matching the submitted batch.
    pub items: Vec<RequestReport<C>>,
    /// Wall-clock time for the batch.
    pub wall: Duration,
}

impl<C: Compiler> BatchReport<C> {
    /// Number of successful requests.
    pub fn ok_count(&self) -> usize {
        self.items.iter().filter(|r| r.result.is_ok()).count()
    }

    /// Number of failed requests.
    pub fn err_count(&self) -> usize {
        self.items.len() - self.ok_count()
    }

    /// Number of requests served from the cache.
    pub fn hit_count(&self) -> usize {
        self.items.iter().filter(|r| r.cache_hit).count()
    }

    /// Requests per second over the batch wall time.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.items.len() as f64 / secs
        }
    }
}

/// A parallel, cache-backed batch compilation service over any
/// [`Compiler`]. See the crate docs for the architecture.
pub struct CompileService<C: Compiler> {
    compiler: Arc<C>,
    cache: Arc<ArtifactCache<C::Artifact>>,
    caching: bool,
    schedule: SchedulePolicy,
    pool: WorkerPool,
    stats: Arc<StatsCollector>,
    cost_model: Arc<CostModel>,
    in_flight: Arc<AtomicU64>,
    recorder: Option<Recorder>,
}

impl<C: Compiler> CompileService<C> {
    /// Builds a service with its own worker pool and empty cache.
    pub fn new(compiler: C, config: ServiceConfig) -> CompileService<C> {
        CompileService {
            compiler: Arc::new(compiler),
            cache: Arc::new(ArtifactCache::with_config(
                config.cache,
                Box::new(C::artifact_bytes),
            )),
            caching: config.caching,
            schedule: config.schedule,
            pool: WorkerPool::new(config.workers),
            stats: Arc::new(StatsCollector::new()),
            cost_model: Arc::new(CostModel::new()),
            in_flight: Arc::new(AtomicU64::new(0)),
            recorder: config.recorder,
        }
    }

    /// The tracing recorder, when the service was configured with one
    /// (drain it for Chrome-trace output, query it for flight records).
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.pool.worker_count()
    }

    /// Number of distinct artifacts cached.
    pub fn cache_len(&self) -> usize {
        self.cache.len()
    }

    /// Requests currently being compiled (approximate, for monitoring).
    pub fn in_flight(&self) -> u64 {
        self.in_flight.load(Ordering::Relaxed)
    }

    /// A point-in-time statistics snapshot (including the cache's
    /// occupancy and eviction counters and the in-flight queue depth).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot(self.cache.counters(), self.in_flight())
    }

    /// The online cost model driving [`SchedulePolicy::Cost`].
    pub fn cost_model(&self) -> &CostModel {
        &self.cost_model
    }

    /// Drops every cached artifact (for benchmarking cold paths).
    pub fn clear_cache(&self) {
        self.cache.clear();
    }

    /// Compiles one request on the calling thread (same cache and
    /// accounting as a batch; traced when a recorder is configured —
    /// without a queue-wait interval, since nothing queued).
    pub fn compile_one(&self, req: CompileRequest) -> RequestReport<C> {
        let _scope = self.recorder.as_ref().map(|rec| rec.scope(&req.name));
        run_request(
            self.compiler.as_ref(),
            &self.cache,
            self.caching,
            &self.stats,
            &self.cost_model,
            &self.in_flight,
            req,
        )
    }

    /// Compiles a batch on the worker pool and reports per-request
    /// outcomes **in request order** (output order does not depend on
    /// worker count or scheduling).
    ///
    /// Submission order follows the configured [`SchedulePolicy`]:
    /// FIFO submits in request order; cost-predicted scheduling submits
    /// longest-predicted-first (LPT), which shortens the makespan of
    /// skewed batches by keeping the expensive requests off the tail.
    pub fn compile_batch(&self, reqs: Vec<CompileRequest>) -> BatchReport<C> {
        let start = Instant::now();
        let n = reqs.len();
        let order = match self.schedule {
            SchedulePolicy::Fifo => (0..n).collect(),
            SchedulePolicy::Cost => {
                // One lock + sort for the whole batch, not per request.
                let ratio = self.cost_model.ns_per_hint().unwrap_or(1.0);
                let costs: Vec<u64> = reqs
                    .iter()
                    .map(|r| (self.compiler.cost_hint(r) as f64 * ratio) as u64)
                    .collect();
                submission_order(SchedulePolicy::Cost, &costs)
            }
        };
        let mut slots_in: Vec<Option<CompileRequest>> = reqs.into_iter().map(Some).collect();
        let (tx, rx) = mpsc::channel::<(usize, RequestReport<C>)>();
        for (submit_index, index) in order.into_iter().enumerate() {
            let req = slots_in[index].take().expect("each request submits once");
            let tx = tx.clone();
            let compiler = Arc::clone(&self.compiler);
            let cache = Arc::clone(&self.cache);
            let stats = Arc::clone(&self.stats);
            let cost_model = Arc::clone(&self.cost_model);
            let in_flight = Arc::clone(&self.in_flight);
            let caching = self.caching;
            let schedule = self.schedule;
            // The trace ID is allocated at submission so the queue-wait
            // interval (submit → worker pickup) can be keyed to it.
            let traced = self
                .recorder
                .clone()
                .map(|rec| (rec.new_trace(), rec.now_ns(), rec));
            self.pool.execute(move || {
                let _scope = traced.as_ref().map(|(trace_id, submit_ns, rec)| {
                    let scope = rec.scope_with(&req.name, *trace_id);
                    trace::complete(
                        "queue-wait",
                        *submit_ns,
                        rec.now_ns().saturating_sub(*submit_ns),
                    );
                    trace::instant(
                        "sched",
                        Some(format!("policy={schedule:?} submit_index={submit_index}")),
                    );
                    scope
                });
                let report = run_request(
                    compiler.as_ref(),
                    &cache,
                    caching,
                    &stats,
                    &cost_model,
                    &in_flight,
                    req,
                );
                // The receiver outlives the batch; a send failure means
                // the batch was abandoned, which compile_batch never does.
                let _ = tx.send((index, report));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<RequestReport<C>>> = (0..n).map(|_| None).collect();
        for (index, report) in rx {
            slots[index] = Some(report);
        }
        let items = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| RequestReport {
                    name: format!("request-{i}"),
                    result: Err(ServiceError::Lost),
                    cache_hit: false,
                    warnings: Vec::new(),
                    latency: Duration::ZERO,
                })
            })
            .collect();
        BatchReport {
            items,
            wall: start.elapsed(),
        }
    }
}

/// The per-request path: per-kind cache probe, one guarded compile for
/// the missing kinds, per-kind cache fill, accounting. Runs on a worker
/// (batch) or the caller (`compile_one`).
fn run_request<C: Compiler>(
    compiler: &C,
    cache: &ArtifactCache<C::Artifact>,
    caching: bool,
    stats: &StatsCollector,
    cost_model: &CostModel,
    in_flight: &AtomicU64,
    req: CompileRequest,
) -> RequestReport<C> {
    let start = Instant::now();
    stats.record_request();
    in_flight.fetch_add(1, Ordering::Relaxed);
    let kinds = req.options.effective_kinds();
    let keys: Vec<CacheKey> = kinds
        .iter()
        .map(|kind| CacheKey::of_request(&req, kind))
        .collect();

    // Probe every kind first: a request recompiles only for the kinds
    // the cache cannot serve, and a fully warm request never touches
    // the compiler at all.
    let probe = trace::enter("cache-probe");
    let mut slots: Vec<Option<Arc<C::Artifact>>> = Vec::with_capacity(kinds.len());
    for (kind, key) in kinds.iter().zip(&keys) {
        let found = if caching {
            cache.get(key, &req, kind)
        } else {
            None
        };
        stats.record_kind(kind, found.is_some());
        if trace::active() {
            let outcome = if found.is_some() { "hit" } else { "miss" };
            trace::instant("probe", Some(format!("{kind}:{outcome}")));
        }
        slots.push(found);
    }
    trace::exit(probe);
    let missing: Vec<usize> = (0..kinds.len()).filter(|&i| slots[i].is_none()).collect();
    let all_hit = missing.is_empty();
    if all_hit {
        stats.record_hit();
    } else {
        stats.record_miss();
    }

    let mut warnings: Vec<DiagRecord> = Vec::new();
    let result = if all_hit {
        Ok(())
    } else {
        let missing_kinds: Vec<ArtifactKind> = missing.iter().map(|&i| kinds[i]).collect();
        compile_guarded(compiler, stats, cost_model, &req, &missing_kinds).map(|output| {
            let _store = trace::span("cache-fill");
            stats.record_warnings(output.warnings.len() as u64);
            warnings = output.warnings;
            for (kind, artifact) in output.artifacts {
                // Only requested-and-missing kinds are admitted; a
                // compiler returning extras (or duplicates) does not
                // grow the cache beyond what was asked for.
                let Some(slot) = (0..kinds.len()).find(|&i| kinds[i] == kind && slots[i].is_none())
                else {
                    continue;
                };
                let shared = if caching {
                    cache.insert(keys[slot], &req, kind, artifact)
                } else {
                    Arc::new(artifact)
                };
                slots[slot] = Some(shared);
            }
        })
    };

    let result = result.and_then(|()| {
        let mut artifacts: Vec<ArtifactReport<C>> = Vec::with_capacity(kinds.len());
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(artifact) => artifacts.push(ArtifactReport {
                    kind: kinds[i],
                    artifact,
                    cache_hit: !missing.contains(&i),
                }),
                None => return Err(ServiceError::MissingArtifact(kinds[i])),
            }
        }
        Ok(artifacts)
    });

    // Compile errors and panics are disjoint counters (a panicking
    // request counts only under `panics`, recorded in compile_guarded).
    if let Err(ServiceError::Compile { report, .. }) = &result {
        stats.record_error();
        stats.record_failure_codes(&report.codes());
    }
    let latency = start.elapsed();
    stats.record_latency(latency.as_nanos() as u64);
    in_flight.fetch_sub(1, Ordering::Relaxed);
    RequestReport {
        name: req.name,
        result,
        cache_hit: all_hit,
        warnings,
        latency,
    }
}

fn compile_guarded<C: Compiler>(
    compiler: &C,
    stats: &StatsCollector,
    cost_model: &CostModel,
    req: &CompileRequest,
    kinds: &[ArtifactKind],
) -> Result<crate::CompileOutput<C::Artifact>, ServiceError<C::Error>> {
    let compile_start = Instant::now();
    let guard = trace::enter("compile");
    let outcome = catch_unwind(AssertUnwindSafe(|| compiler.compile(req, kinds)));
    trace::exit(guard);
    match outcome {
        Ok(Ok(output)) => {
            stats.record_stages(&output.samples);
            // Teach the cost model what this request actually cost
            // (successes only: failures abort early and would skew the
            // nanoseconds-per-hint ratio down).
            cost_model.record(
                compiler.cost_hint(req),
                compile_start.elapsed().as_nanos() as u64,
            );
            Ok(output)
        }
        Ok(Err(error)) => {
            let report = compiler.failure_report(req, &error);
            Err(ServiceError::Compile { error, report })
        }
        Err(panic) => {
            stats.record_panic();
            Err(ServiceError::Panic(panic_message(panic.as_ref())))
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, StageSample};

    /// A toy compiler: uppercases the source; `source == "BOOM"` panics,
    /// `source == "ERR"` errors, and each compile counts its invocations
    /// so cache hits are observable as *absent* invocations.
    struct Toy {
        calls: AtomicU64,
    }

    impl Toy {
        fn new() -> Toy {
            Toy {
                calls: AtomicU64::new(0),
            }
        }
    }

    impl Compiler for Toy {
        type Artifact = String;
        type Error = String;

        fn compile(
            &self,
            req: &CompileRequest,
            kinds: &[ArtifactKind],
        ) -> Result<crate::CompileOutput<String>, String> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            match req.source.as_str() {
                "BOOM" => panic!("toy compiler exploded"),
                "ERR" => Err("toy compile error".to_owned()),
                "FORGETFUL" => Ok(crate::CompileOutput::new(Vec::new(), Vec::new())),
                src => Ok(crate::CompileOutput::new(
                    kinds
                        .iter()
                        .map(|kind| {
                            let body = match kind {
                                ArtifactKind::CCode => src.to_uppercase(),
                                other => format!("{other}:{}", src.to_uppercase()),
                            };
                            (*kind, body)
                        })
                        .collect(),
                    vec![StageSample {
                        stage: crate::Stage::Frontend,
                        nanos: 5,
                    }],
                )
                .with_warnings(if src == "warny" {
                    vec![crate::DiagRecord {
                        code: "W0001",
                        severity: velus_common::Severity::Warning,
                        stage: "elaborate",
                        message: "toy warning".to_owned(),
                        line: 1,
                        col: 1,
                    }]
                } else {
                    Vec::new()
                })),
            }
        }
    }

    fn service(workers: usize) -> CompileService<Toy> {
        CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers,
                caching: true,
                ..Default::default()
            },
        )
    }

    #[test]
    fn batch_results_are_in_request_order() {
        let svc = service(4);
        let reqs: Vec<CompileRequest> = (0..32)
            .map(|i| CompileRequest::new(format!("r{i}"), format!("src{i}")))
            .collect();
        let batch = svc.compile_batch(reqs);
        assert_eq!(batch.ok_count(), 32);
        for (i, item) in batch.items.iter().enumerate() {
            assert_eq!(item.name, format!("r{i}"));
            assert_eq!(**item.primary().unwrap(), format!("SRC{i}"));
        }
    }

    #[test]
    fn warm_requests_hit_the_cache_and_skip_the_compiler() {
        let svc = service(2);
        let reqs: Vec<CompileRequest> = (0..8)
            .map(|i| CompileRequest::new(format!("r{i}"), format!("s{i}")))
            .collect();
        let cold = svc.compile_batch(reqs.clone());
        assert_eq!(cold.hit_count(), 0);
        let calls_after_cold = svc.compiler.calls.load(Ordering::SeqCst);
        let warm = svc.compile_batch(reqs);
        assert_eq!(warm.hit_count(), 8);
        // The compiler ran zero additional times: the pipeline was skipped.
        assert_eq!(svc.compiler.calls.load(Ordering::SeqCst), calls_after_cold);
        // And the artifacts are the identical allocations.
        for (a, b) in cold.items.iter().zip(&warm.items) {
            assert!(Arc::ptr_eq(a.primary().unwrap(), b.primary().unwrap()));
        }
        let stats = svc.stats();
        assert_eq!(
            (stats.requests, stats.cache_hits, stats.cache_misses),
            (16, 8, 8)
        );
    }

    #[test]
    fn equal_content_under_different_names_shares_one_artifact() {
        let svc = service(2);
        let batch = svc.compile_batch(vec![
            CompileRequest::new("a", "same"),
            CompileRequest::new("b", "same"),
        ]);
        assert_eq!(batch.ok_count(), 2);
        assert_eq!(svc.cache_len(), 1);
    }

    #[test]
    fn errors_and_panics_are_contained_per_request() {
        let svc = service(2);
        let batch = svc.compile_batch(vec![
            CompileRequest::new("good1", "alpha"),
            CompileRequest::new("bad", "ERR"),
            CompileRequest::new("ugly", "BOOM"),
            CompileRequest::new("good2", "beta"),
        ]);
        assert_eq!(batch.ok_count(), 2);
        match &batch.items[1].result {
            Err(ServiceError::Compile { report, .. }) => {
                // The default failure report is the uncoded E0000 record.
                assert_eq!(report.primary_code(), Some("E0000"));
                assert!(report.to_string().contains("toy compile error"), "{report}");
            }
            other => panic!("expected a compile error, got ok={}", other.is_ok()),
        }
        match &batch.items[2].result {
            Err(ServiceError::Panic(msg)) => assert!(msg.contains("exploded"), "{msg}"),
            other => panic!("expected a contained panic, got {:?}", other.is_ok()),
        }
        // The pool survives and serves subsequent batches.
        let after = svc.compile_batch(vec![CompileRequest::new("again", "gamma")]);
        assert_eq!(after.ok_count(), 1);
        // Errors and panics are disjoint counters: 1 compile error, 1
        // contained panic.
        let stats = svc.stats();
        assert_eq!((stats.errors, stats.panics), (1, 1));
    }

    #[test]
    fn caching_can_be_disabled() {
        let svc = CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers: 1,
                caching: false,
                ..Default::default()
            },
        );
        let req = CompileRequest::new("r", "x");
        svc.compile_one(req.clone());
        let report = svc.compile_one(req);
        assert!(!report.cache_hit);
        assert_eq!(svc.cache_len(), 0);
        assert_eq!(svc.compiler.calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn stats_snapshot_reflects_stage_samples() {
        let svc = service(1);
        svc.compile_one(CompileRequest::new("r", "x"));
        let stats = svc.stats();
        let frontend = &stats.stages[crate::Stage::Frontend.index()];
        assert_eq!(frontend.count, 1);
        assert_eq!(frontend.p50_nanos, 5);
    }

    #[test]
    fn a_capped_cache_evicts_and_the_evictee_recompiles() {
        let svc = CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers: 1,
                caching: true,
                cache: crate::CacheConfig {
                    max_entries: Some(1),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let (ra, rb) = (
            CompileRequest::new("a", "one"),
            CompileRequest::new("b", "two"),
        );
        svc.compile_one(ra.clone());
        svc.compile_one(rb.clone()); // evicts `a` (cap 1)
        let stats = svc.stats();
        assert_eq!((stats.cache_entries, stats.cache_evictions), (1, 1));
        // `a` was evicted: its next request misses, recompiles, and the
        // fresh artifact verifies against the request content again.
        let again = svc.compile_one(ra);
        assert!(!again.cache_hit);
        assert_eq!(**again.primary().unwrap(), "ONE");
        assert_eq!(svc.compiler.calls.load(Ordering::SeqCst), 3);
        assert!(svc.stats().cache_evictions >= 1);
        let _ = rb;
    }

    #[test]
    fn multi_kind_requests_compile_once_and_cache_per_kind() {
        let svc = service(2);
        let kinds = vec![ArtifactKind::CCode, ArtifactKind::BaselineDiff];
        let req =
            CompileRequest::new("r", "x").with_options(CompileOptions::for_kinds(kinds.clone()));
        let cold = svc.compile_one(req.clone());
        let artifacts = cold.result.as_ref().unwrap();
        assert_eq!(artifacts.len(), 2);
        assert_eq!(*artifacts[0].artifact, "X");
        assert_eq!(*artifacts[1].artifact, "baseline-diff:X");
        // One compiler invocation produced both kinds; both were cached
        // under separate keys.
        assert_eq!(svc.compiler.calls.load(Ordering::SeqCst), 1);
        assert_eq!(svc.cache_len(), 2);

        // A request for just one of the kinds hits that kind's entry.
        let one = svc.compile_one(
            CompileRequest::new("r", "x")
                .with_options(CompileOptions::for_kinds(vec![ArtifactKind::BaselineDiff])),
        );
        assert!(one.cache_hit);
        assert!(Arc::ptr_eq(
            one.artifact(&ArtifactKind::BaselineDiff).unwrap(),
            &artifacts[1].artifact
        ));
        assert_eq!(svc.compiler.calls.load(Ordering::SeqCst), 1);

        // A request widening the kind set compiles only the missing kind.
        let wider = svc.compile_one(req.with_options(CompileOptions::for_kinds(vec![
            ArtifactKind::CCode,
            ArtifactKind::BaselineDiff,
            ArtifactKind::IrDump {
                stage: crate::IrStageKind::Obc,
            },
        ])));
        assert!(!wider.cache_hit, "a new kind forces a compile");
        let wider_artifacts = wider.result.as_ref().unwrap();
        assert_eq!(wider_artifacts.len(), 3);
        assert!(wider_artifacts[0].cache_hit, "the C entry was reused");
        assert!(wider_artifacts[1].cache_hit);
        assert!(!wider_artifacts[2].cache_hit);
        assert_eq!(svc.cache_len(), 3);

        // Per-kind stats rows saw every kind request.
        let stats = svc.stats();
        let row = |name: &str| *stats.kinds.iter().find(|k| k.kind == name).unwrap();
        assert_eq!((row("c").requests, row("c").hits), (2, 1));
        assert_eq!(
            (row("baseline-diff").requests, row("baseline-diff").hits),
            (3, 2)
        );
        assert_eq!((row("ir-dump").requests, row("ir-dump").hits), (1, 0));
    }

    #[test]
    fn a_compiler_omitting_a_kind_is_a_loud_error() {
        let svc = service(1);
        let report = svc.compile_one(CompileRequest::new("r", "FORGETFUL"));
        assert!(matches!(
            report.result,
            Err(ServiceError::MissingArtifact(ArtifactKind::CCode))
        ));
        // Nothing was cached for the failed request.
        assert_eq!(svc.cache_len(), 0);
    }

    #[test]
    fn warnings_and_failure_codes_reach_the_stats() {
        let svc = service(1);
        // A cold compile surfaces its warnings on the report and counts
        // them in the statistics.
        let cold = svc.compile_one(CompileRequest::new("w", "warny"));
        assert_eq!(cold.warnings.len(), 1);
        assert_eq!(cold.warnings[0].code, "W0001");
        // A warm request skips the pipeline: no (re-)warnings.
        let warm = svc.compile_one(CompileRequest::new("w", "warny"));
        assert!(warm.cache_hit && warm.warnings.is_empty());
        // Failures count under their codes.
        let _ = svc.compile_one(CompileRequest::new("bad", "ERR"));
        let stats = svc.stats();
        assert_eq!(stats.warnings, 1);
        assert_eq!(stats.failure_codes, vec![("E0000", 1)]);
        let rendered = stats.to_string();
        assert!(rendered.contains("warnings 1"), "{rendered}");
        assert!(rendered.contains("failures by code: E0000:1"), "{rendered}");
    }

    #[test]
    fn cost_scheduling_reorders_submission_but_not_results() {
        let svc = CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers: 1,
                caching: true,
                schedule: crate::SchedulePolicy::Cost,
                ..Default::default()
            },
        );
        // Toy's default cost hint is the source length: the longest
        // source is submitted (and with one worker, compiled) first.
        let reqs = vec![
            CompileRequest::new("short", "s"),
            CompileRequest::new("long", "the longest source of them all"),
            CompileRequest::new("mid", "a medium one"),
        ];
        let batch = svc.compile_batch(reqs.clone());
        assert_eq!(batch.ok_count(), 3);
        // Reports stay in request order regardless of submission order.
        let names: Vec<&str> = batch.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["short", "long", "mid"]);
        // The model learned from the uncached compilations.
        assert_eq!(svc.cost_model().samples(), 3);
        // A warm batch is unaffected by scheduling: all hits.
        let warm = svc.compile_batch(reqs);
        assert_eq!(warm.hit_count(), 3);
    }
}
