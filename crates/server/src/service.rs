//! The compilation service proper: admission control, cache lookup,
//! worker-pool dispatch, deadlines, retry, panic containment and
//! quarantine, graceful drain, and statistics.
//!
//! The fault-tolerance layer (see `docs/ARCHITECTURE.md`, "Fault
//! tolerance in the serving layer") wraps every request in a fixed
//! state machine:
//!
//! ```text
//! submit ── admission ──► queued ──► gate ──► attempt ──► done
//!              │ E0801/E0805          │ E0802/E0803  │
//!              ▼                      ▼              ▼ transient?
//!            shed                 rejected      retry w/ backoff
//! ```
//!
//! * **Admission** ([`crate::AdmissionConfig`]) bounds outstanding work
//!   by count and by *predicted cost* (the cost model's ns/hint ratio)
//!   and sheds the excess with [`ServiceError::Overloaded`] instead of
//!   queueing unboundedly.
//! * **Deadlines**: a request's `deadline_ms` starts at admission; the
//!   per-request [`CancelToken`] is checked before each attempt and at
//!   every pass boundary of a cooperative compiler.
//! * **Retry**: transient failures (per
//!   [`velus_common::codes::retry_class_of`]) are re-attempted up to
//!   [`crate::RetryPolicy::budget`] with decorrelated-jitter backoff;
//!   source failures never are.
//! * **Quarantine**: an input whose compilation still panics after its
//!   retries has its digest blocklisted; repeat offenders are rejected
//!   with [`ServiceError::Quarantined`] before touching a worker.
//! * **Drain** ([`CompileService::drain`]) closes admission, waits for
//!   in-flight work, and cancels stragglers via the shared kill switch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;
use std::time::{Duration, Instant};

use velus_common::{codes, RetryClass, Severity};
use velus_obs::trace;
use velus_obs::Recorder;

use crate::admit::{Admission, AdmissionConfig, AdmitReject, Backoff, Quarantine, RetryPolicy};
use crate::cache::{ArtifactCache, CacheConfig, CacheKey};
use crate::cancel::{CancelReason, CancelToken};
use crate::pool::{WorkerPool, DEFAULT_SHUTDOWN_TIMEOUT};
use crate::sched::{submission_order, CostModel, SchedulePolicy};
use crate::stats::{StatsCollector, StatsSnapshot};
use crate::{ArtifactKind, CompileRequest, Compiler, DiagRecord, FailureReport};

/// How long past the drain deadline the service waits for cooperative
/// cancellation to land after flipping the kill switch.
const DRAIN_GRACE: Duration = Duration::from_millis(500);

/// Service construction knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Whether the artifact cache is consulted and filled.
    pub caching: bool,
    /// Cache shape and capacity (shard count, entry/byte caps).
    pub cache: CacheConfig,
    /// Batch submission order (FIFO or cost-predicted LPT).
    pub schedule: SchedulePolicy,
    /// Structured-tracing recorder. When set, every request runs under
    /// a trace scope (queue wait, scheduling, cache probe, pipeline
    /// passes, artifact handling) and the recorder's flight recorder
    /// retains the slowest requests' span trees. `None` (the default)
    /// keeps the service entirely trace-free.
    pub recorder: Option<Recorder>,
    /// Admission bounds (queue cap, cost budget). The default admits
    /// everything, matching the pre-admission behavior.
    pub admission: AdmissionConfig,
    /// Retry policy for transient failures. The default budget is 0:
    /// retrying is opt-in.
    pub retry: RetryPolicy,
    /// Capacity of the panic quarantine (input digests); 0 disables it.
    pub quarantine_cap: usize,
    /// How long shutdown waits for each worker to acknowledge before
    /// surfacing a coded `E0804` timeout (and how long `Drop` waits
    /// before detaching wedged workers instead of hanging).
    pub shutdown_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(2, |n| n.get().min(8)),
            caching: true,
            cache: CacheConfig::default(),
            schedule: SchedulePolicy::default(),
            recorder: None,
            admission: AdmissionConfig::default(),
            retry: RetryPolicy::default(),
            quarantine_cap: 64,
            shutdown_timeout: DEFAULT_SHUTDOWN_TIMEOUT,
        }
    }
}

/// Why a request failed.
#[derive(Debug)]
pub enum ServiceError<E> {
    /// The compiler reported an error (the usual case: bad input). The
    /// payload is no longer an opaque `Display` string: the structured
    /// [`FailureReport`] carries every diagnostic's stable code,
    /// originating stage, severity and resolved position, and the
    /// original typed error rides along for programmatic access.
    Compile {
        /// The compiler's typed error.
        error: E,
        /// The flattened, coded diagnostics of the failure.
        report: FailureReport,
    },
    /// The compiler panicked; the panic was contained to this request.
    Panic(String),
    /// The compiler returned no artifact for a requested kind — a bug in
    /// the [`Compiler`] implementation, surfaced loudly rather than
    /// served as a partial result.
    MissingArtifact(ArtifactKind),
    /// The worker executing the request disappeared before reporting
    /// (should not happen; a defensive placeholder, never silent).
    Lost,
    /// Admission control shed the request: the queue cap or cost budget
    /// was exceeded (`E0801`). Retrying later, when load has receded,
    /// may succeed.
    Overloaded {
        /// Outstanding admitted requests at rejection time.
        queued: u64,
    },
    /// The request's deadline expired — while queued, or at a pass
    /// boundary of a cooperative compiler (`E0802`).
    DeadlineExceeded,
    /// The input's digest is quarantined after repeated panics
    /// (`E0803`). Resubmitting the identical input is rejected until
    /// the quarantine entry ages out.
    Quarantined,
    /// The service is draining or shut down; the request was rejected
    /// or cancelled (`E0805`).
    Draining,
}

impl<E> ServiceError<E> {
    /// The structured, coded report of this failure — every variant
    /// yields at least one [`DiagRecord`] with a stable code, so shed
    /// and timed-out requests are machine-readable like compile errors.
    pub fn failure_report(&self) -> FailureReport {
        fn coded(code: velus_common::Code, message: String) -> FailureReport {
            FailureReport {
                diagnostics: vec![DiagRecord {
                    code: code.id,
                    severity: Severity::Error,
                    stage: velus_common::DiagStage::Driver.name(),
                    message,
                    line: 0,
                    col: 0,
                }],
            }
        }
        match self {
            ServiceError::Compile { report, .. } => report.clone(),
            ServiceError::Panic(msg) => {
                FailureReport::from_message(format!("compiler panicked: {msg}"))
            }
            ServiceError::MissingArtifact(kind) => {
                FailureReport::from_message(format!("compiler produced no `{kind}` artifact"))
            }
            ServiceError::Lost => {
                FailureReport::from_message("request lost by the worker pool".to_owned())
            }
            ServiceError::Overloaded { queued } => coded(
                codes::E0801,
                format!("service overloaded: shed with {queued} requests outstanding"),
            ),
            ServiceError::DeadlineExceeded => {
                coded(codes::E0802, "request deadline exceeded".to_owned())
            }
            ServiceError::Quarantined => coded(
                codes::E0803,
                "input quarantined after repeated compiler panics".to_owned(),
            ),
            ServiceError::Draining => coded(
                codes::E0805,
                "service is draining; request rejected or cancelled".to_owned(),
            ),
        }
    }
}

impl<E: std::fmt::Display> std::fmt::Display for ServiceError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServiceError::Compile { report, .. } => write!(f, "{report}"),
            ServiceError::Panic(msg) => write!(f, "compiler panicked: {msg}"),
            ServiceError::MissingArtifact(kind) => {
                write!(f, "compiler produced no `{kind}` artifact")
            }
            ServiceError::Lost => f.write_str("request lost by the worker pool"),
            ServiceError::Overloaded { queued } => write!(
                f,
                "error[E0801]: service overloaded ({queued} requests outstanding)"
            ),
            ServiceError::DeadlineExceeded => f.write_str("error[E0802]: deadline exceeded"),
            ServiceError::Quarantined => f.write_str("error[E0803]: input quarantined"),
            ServiceError::Draining => f.write_str("error[E0805]: service draining"),
        }
    }
}

/// One served artifact of one request (a request yields one per
/// requested kind, in the request's kind order).
pub struct ArtifactReport<C: Compiler> {
    /// Which kind this artifact is.
    pub kind: ArtifactKind,
    /// The shared artifact.
    pub artifact: Arc<C::Artifact>,
    /// Whether *this kind* came from the cache (a mixed request can hit
    /// some kinds and compile others).
    pub cache_hit: bool,
}

/// The outcome of one request within a batch.
pub struct RequestReport<C: Compiler> {
    /// The request's label.
    pub name: String,
    /// The served artifacts (one per requested kind, in kind order), or
    /// the failure.
    pub result: Result<Vec<ArtifactReport<C>>, ServiceError<C::Error>>,
    /// Whether **every** requested kind was served from the cache (the
    /// pipeline did not run at all).
    pub cache_hit: bool,
    /// Non-fatal warnings the compilation emitted (empty when every
    /// kind was served from the cache — warnings surface when the
    /// pipeline actually runs).
    pub warnings: Vec<DiagRecord>,
    /// End-to-end latency of this request (queueing excluded; measured
    /// from when a worker picks it up).
    pub latency: Duration,
    /// Compilation attempts executed: 1 for the normal path, more when
    /// transient failures were retried, 0 when the request never ran
    /// (shed at admission, quarantined, or expired while queued).
    pub attempts: u32,
}

impl<C: Compiler> RequestReport<C> {
    /// The served artifact of the given kind, if the request succeeded
    /// and asked for it.
    pub fn artifact(&self, kind: &ArtifactKind) -> Option<&Arc<C::Artifact>> {
        self.result
            .as_ref()
            .ok()?
            .iter()
            .find(|a| a.kind == *kind)
            .map(|a| &a.artifact)
    }

    /// The first served artifact (the request's primary kind), if any.
    /// For a default request this is the C artifact.
    pub fn primary(&self) -> Option<&Arc<C::Artifact>> {
        self.result.as_ref().ok()?.first().map(|a| &a.artifact)
    }
}

/// The outcome of a whole batch, in request order.
pub struct BatchReport<C: Compiler> {
    /// Per-request reports, positionally matching the submitted batch.
    pub items: Vec<RequestReport<C>>,
    /// Wall-clock time for the batch.
    pub wall: Duration,
}

impl<C: Compiler> BatchReport<C> {
    /// Number of successful requests.
    pub fn ok_count(&self) -> usize {
        self.items.iter().filter(|r| r.result.is_ok()).count()
    }

    /// Number of failed requests.
    pub fn err_count(&self) -> usize {
        self.items.len() - self.ok_count()
    }

    /// Number of requests served from the cache.
    pub fn hit_count(&self) -> usize {
        self.items.iter().filter(|r| r.cache_hit).count()
    }

    /// Number of requests shed at admission (overload or drain).
    pub fn shed_count(&self) -> usize {
        self.items
            .iter()
            .filter(|r| {
                matches!(
                    r.result,
                    Err(ServiceError::Overloaded { .. }) | Err(ServiceError::Draining)
                ) && r.attempts == 0
            })
            .count()
    }

    /// Requests per second over the batch wall time.
    pub fn throughput(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs <= 0.0 {
            f64::INFINITY
        } else {
            self.items.len() as f64 / secs
        }
    }
}

/// The outcome of a [`CompileService::drain`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Requests still in flight when the drain deadline expired and the
    /// kill switch was flipped (each was cancelled cooperatively).
    pub cancelled: u64,
    /// Requests still outstanding when the drain returned — 0 unless a
    /// non-cooperative compilation outlived the grace period too.
    pub outstanding: u64,
    /// Wall-clock time the drain took.
    pub duration: Duration,
}

impl DrainReport {
    /// Whether every in-flight request completed before the deadline
    /// (nothing was cancelled, nothing left outstanding).
    pub fn clean(&self) -> bool {
        self.cancelled == 0 && self.outstanding == 0
    }
}

impl std::fmt::Display for DrainReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.clean() {
            write!(f, "drain: clean in {:.1?}", self.duration)
        } else {
            write!(
                f,
                "drain: cancelled {} in-flight ({} unresponsive) in {:.1?}",
                self.cancelled, self.outstanding, self.duration
            )
        }
    }
}

/// A single request dispatched through [`CompileService::submit`].
pub struct Submission<C: Compiler> {
    admitted: bool,
    rx: mpsc::Receiver<RequestReport<C>>,
}

impl<C: Compiler> Submission<C> {
    /// Whether the request passed admission (a shed request still
    /// resolves — immediately, with its coded rejection).
    pub fn admitted(&self) -> bool {
        self.admitted
    }

    /// Blocks until the request's report is available.
    pub fn wait(self) -> RequestReport<C> {
        self.rx.recv().unwrap_or_else(|_| RequestReport {
            name: "<lost>".to_owned(),
            result: Err(ServiceError::Lost),
            cache_hit: false,
            warnings: Vec::new(),
            latency: Duration::ZERO,
            attempts: 0,
        })
    }
}

/// Everything a request's execution needs, shared once per job instead
/// of cloning six `Arc`s into every closure.
struct Inner<C: Compiler> {
    compiler: C,
    cache: ArtifactCache<C::Artifact>,
    caching: bool,
    stats: StatsCollector,
    cost_model: CostModel,
    in_flight: AtomicU64,
    admission: Admission,
    quarantine: Quarantine,
    retry: RetryPolicy,
    /// Drain/shutdown kill switch shared with every request token.
    kill: Arc<AtomicBool>,
}

impl<C: Compiler> Inner<C> {
    /// The cost-model ratio for admission pricing — `None` (and no
    /// pricing work at all) unless a cost budget is configured *and*
    /// the model has observed samples. `ns_per_hint` locks and sorts
    /// the model's window, so the fault-free warm path must not pay it.
    fn admission_ratio(&self) -> Option<f64> {
        if self.admission.config().cost_budget_ms.is_some() {
            self.cost_model.ns_per_hint()
        } else {
            None
        }
    }

    fn price(&self, req: &CompileRequest, ratio: Option<f64>) -> u64 {
        ratio.map_or(0, |r| (self.compiler.cost_hint(req) as f64 * r) as u64)
    }

    fn token_for(&self, req: &CompileRequest) -> CancelToken {
        CancelToken::for_request(
            req.deadline_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            Arc::clone(&self.kill),
        )
    }
}

/// A parallel, cache-backed batch compilation service over any
/// [`Compiler`]. See the crate docs for the architecture.
pub struct CompileService<C: Compiler> {
    inner: Arc<Inner<C>>,
    schedule: SchedulePolicy,
    pool: WorkerPool,
    recorder: Option<Recorder>,
}

impl<C: Compiler> CompileService<C> {
    /// Builds a service with its own worker pool and empty cache.
    pub fn new(compiler: C, config: ServiceConfig) -> CompileService<C> {
        CompileService {
            inner: Arc::new(Inner {
                compiler,
                cache: ArtifactCache::with_config(config.cache, Box::new(C::artifact_bytes)),
                caching: config.caching,
                stats: StatsCollector::new(),
                cost_model: CostModel::new(),
                in_flight: AtomicU64::new(0),
                admission: Admission::new(config.admission),
                quarantine: Quarantine::new(config.quarantine_cap),
                retry: config.retry,
                kill: Arc::new(AtomicBool::new(false)),
            }),
            schedule: config.schedule,
            pool: WorkerPool::with_shutdown_timeout(config.workers, config.shutdown_timeout),
            recorder: config.recorder,
        }
    }

    /// The tracing recorder, when the service was configured with one
    /// (drain it for Chrome-trace output, query it for flight records).
    pub fn recorder(&self) -> Option<&Recorder> {
        self.recorder.as_ref()
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.pool.worker_count()
    }

    /// The wrapped compiler (e.g. to read a fault injector's counters).
    pub fn compiler(&self) -> &C {
        &self.inner.compiler
    }

    /// Worker threads that died (0 in a healthy service: panics are
    /// contained per request, and per-job as a second line of defense).
    pub fn dead_workers(&self) -> usize {
        self.pool.dead_workers()
    }

    /// Number of distinct artifacts cached.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Requests currently being compiled (approximate, for monitoring).
    pub fn in_flight(&self) -> u64 {
        self.inner.in_flight.load(Ordering::Relaxed)
    }

    /// Admitted requests not yet completed (queued + running).
    pub fn outstanding(&self) -> u64 {
        self.inner.admission.outstanding()
    }

    /// A point-in-time statistics snapshot (including the cache's
    /// occupancy and eviction counters, the in-flight queue depth, and
    /// the robustness counters).
    pub fn stats(&self) -> StatsSnapshot {
        self.inner.stats.snapshot(
            self.inner.cache.counters(),
            self.in_flight(),
            self.inner.quarantine.len(),
        )
    }

    /// The online cost model driving [`SchedulePolicy::Cost`] and the
    /// admission cost budget.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost_model
    }

    /// Drops every cached artifact (for benchmarking cold paths).
    pub fn clear_cache(&self) {
        self.inner.cache.clear();
    }

    /// Compiles one request on the calling thread (same cache,
    /// deadline/retry/quarantine handling, and accounting as a batch;
    /// traced when a recorder is configured — without a queue-wait
    /// interval, since nothing queued). Runs outside admission — it
    /// consumes no pool capacity — but a draining service rejects it.
    pub fn compile_one(&self, req: CompileRequest) -> RequestReport<C> {
        let _scope = self.recorder.as_ref().map(|rec| rec.scope(&req.name));
        if self.inner.admission.is_closed() {
            return rejected(&self.inner.stats, req.name, ServiceError::Draining);
        }
        let token = self.inner.token_for(&req);
        run_request(&self.inner, req, &token)
    }

    /// Dispatches one request to the worker pool without blocking: the
    /// open-loop entry point (arrivals are not gated on completions).
    /// A shed request resolves immediately with its coded rejection.
    pub fn submit(&self, req: CompileRequest) -> Submission<C> {
        let (tx, rx) = mpsc::channel();
        let cost_ns = self.inner.price(&req, self.inner.admission_ratio());
        if let Err(reject) = self.inner.admission.try_admit(cost_ns) {
            let report = rejected(&self.inner.stats, req.name, reject_error(reject));
            let _ = tx.send(report);
            return Submission {
                admitted: false,
                rx,
            };
        }
        let token = self.inner.token_for(&req);
        let inner = Arc::clone(&self.inner);
        self.pool.execute(move || {
            let report = run_request(&inner, req, &token);
            inner.admission.release(cost_ns);
            let _ = tx.send(report);
        });
        Submission { admitted: true, rx }
    }

    /// Compiles a batch on the worker pool and reports per-request
    /// outcomes **in request order** (output order does not depend on
    /// worker count or scheduling).
    ///
    /// Submission order follows the configured [`SchedulePolicy`]:
    /// FIFO submits in request order; cost-predicted scheduling submits
    /// longest-predicted-first (LPT), which shortens the makespan of
    /// skewed batches by keeping the expensive requests off the tail.
    ///
    /// Requests the admission layer sheds fail immediately with a coded
    /// [`ServiceError::Overloaded`]/[`ServiceError::Draining`] — their
    /// slots in the report are never silently dropped.
    pub fn compile_batch(&self, reqs: Vec<CompileRequest>) -> BatchReport<C> {
        let start = Instant::now();
        let n = reqs.len();
        let order = match self.schedule {
            SchedulePolicy::Fifo => (0..n).collect(),
            SchedulePolicy::Cost => {
                // One lock + sort for the whole batch, not per request.
                let ratio = self.inner.cost_model.ns_per_hint().unwrap_or(1.0);
                let costs: Vec<u64> = reqs
                    .iter()
                    .map(|r| (self.inner.compiler.cost_hint(r) as f64 * ratio) as u64)
                    .collect();
                submission_order(SchedulePolicy::Cost, &costs)
            }
        };
        let admit_ratio = self.inner.admission_ratio();
        let mut slots_in: Vec<Option<CompileRequest>> = reqs.into_iter().map(Some).collect();
        let (tx, rx) = mpsc::channel::<(usize, RequestReport<C>)>();
        for (submit_index, index) in order.into_iter().enumerate() {
            let req = slots_in[index].take().expect("each request submits once");
            let cost_ns = self.inner.price(&req, admit_ratio);
            if let Err(reject) = self.inner.admission.try_admit(cost_ns) {
                let report = rejected(&self.inner.stats, req.name, reject_error(reject));
                let _ = tx.send((index, report));
                continue;
            }
            // The token starts now, at admission: queue wait counts
            // against the request's deadline.
            let token = self.inner.token_for(&req);
            let tx = tx.clone();
            let inner = Arc::clone(&self.inner);
            let schedule = self.schedule;
            // The trace ID is allocated at submission so the queue-wait
            // interval (submit → worker pickup) can be keyed to it.
            let traced = self
                .recorder
                .clone()
                .map(|rec| (rec.new_trace(), rec.now_ns(), rec));
            self.pool.execute(move || {
                let _scope = traced.as_ref().map(|(trace_id, submit_ns, rec)| {
                    let scope = rec.scope_with(&req.name, *trace_id);
                    trace::complete(
                        "queue-wait",
                        *submit_ns,
                        rec.now_ns().saturating_sub(*submit_ns),
                    );
                    trace::instant(
                        "sched",
                        Some(format!("policy={schedule:?} submit_index={submit_index}")),
                    );
                    scope
                });
                let report = run_request(&inner, req, &token);
                inner.admission.release(cost_ns);
                // The receiver outlives the batch; a send failure means
                // the batch was abandoned, which compile_batch never does.
                let _ = tx.send((index, report));
            });
        }
        drop(tx);
        let mut slots: Vec<Option<RequestReport<C>>> = (0..n).map(|_| None).collect();
        for (index, report) in rx {
            slots[index] = Some(report);
        }
        let items = slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.unwrap_or_else(|| RequestReport {
                    name: format!("request-{i}"),
                    result: Err(ServiceError::Lost),
                    cache_hit: false,
                    warnings: Vec::new(),
                    latency: Duration::ZERO,
                    attempts: 0,
                })
            })
            .collect();
        BatchReport {
            items,
            wall: start.elapsed(),
        }
    }

    /// Gracefully drains the service: closes admission (subsequent
    /// requests are rejected with `E0805`), waits up to `deadline` for
    /// admitted work to complete, then flips the shared kill switch so
    /// stragglers cancel cooperatively at their next check point. The
    /// drain duration is recorded in the statistics, so the final
    /// snapshot/Prometheus flush reflects it.
    ///
    /// Admission stays closed forever — draining is one-way. Work
    /// running via [`CompileService::compile_one`] on a caller's thread
    /// is cancelled by the kill switch but not waited for (it was never
    /// admitted).
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        let start = Instant::now();
        self.inner.admission.close();
        let end = start + deadline;
        while self.inner.admission.outstanding() > 0 && Instant::now() < end {
            thread::sleep(Duration::from_micros(200));
        }
        let cancelled = self.inner.admission.outstanding();
        if cancelled > 0 {
            self.inner.kill.store(true, Ordering::Relaxed);
            let grace_end = end + DRAIN_GRACE;
            while self.inner.admission.outstanding() > 0 && Instant::now() < grace_end {
                thread::sleep(Duration::from_micros(200));
            }
        }
        let duration = start.elapsed();
        self.inner.stats.record_drain(duration.as_nanos() as u64);
        DrainReport {
            cancelled,
            outstanding: self.inner.admission.outstanding(),
            duration,
        }
    }

    /// Shuts the worker pool down, waiting up to the configured
    /// `shutdown_timeout` for every worker to acknowledge.
    ///
    /// # Errors
    ///
    /// [`crate::ShutdownTimeout`] (`E0804`) when a worker fails to ack
    /// in time (its thread is detached, not joined — no hang).
    pub fn shutdown(&self) -> Result<(), crate::pool::ShutdownTimeout> {
        self.inner.admission.close();
        self.inner.kill.store(true, Ordering::Relaxed);
        self.pool.shutdown(self.pool.shutdown_timeout())
    }
}

fn reject_error<E>(reject: AdmitReject) -> ServiceError<E> {
    match reject {
        AdmitReject::Overloaded { queued } => ServiceError::Overloaded { queued },
        AdmitReject::Draining => ServiceError::Draining,
    }
}

/// Builds the immediate report of a request rejected at admission and
/// records it: one `shed` count plus its coded failure row.
fn rejected<C: Compiler>(
    stats: &StatsCollector,
    name: String,
    err: ServiceError<C::Error>,
) -> RequestReport<C> {
    stats.record_shed();
    stats.record_failure_codes(&err.failure_report().codes());
    RequestReport {
        name,
        result: Err(err),
        cache_hit: false,
        warnings: Vec::new(),
        latency: Duration::ZERO,
        attempts: 0,
    }
}

fn cancel_to_error<E>(reason: CancelReason) -> ServiceError<E> {
    match reason {
        CancelReason::Deadline => ServiceError::DeadlineExceeded,
        CancelReason::Shutdown => ServiceError::Draining,
    }
}

/// The per-request path: cancellation gate, quarantine gate, then the
/// attempt loop (per-kind cache probe, one guarded compile for the
/// missing kinds, per-kind cache fill) with transient-failure retry,
/// and accounting. Runs on a worker (batch/submit) or the caller
/// (`compile_one`).
fn run_request<C: Compiler>(
    inner: &Inner<C>,
    req: CompileRequest,
    token: &CancelToken,
) -> RequestReport<C> {
    let start = Instant::now();
    inner.stats.record_request();
    inner.in_flight.fetch_add(1, Ordering::Relaxed);
    let kinds = req.options.effective_kinds();
    let keys: Vec<CacheKey> = kinds
        .iter()
        .map(|kind| CacheKey::of_request(&req, kind))
        .collect();

    let mut attempts: u32 = 0;
    let mut backoff = Backoff::new(inner.retry, keys[0].seed());
    let mut all_hit = false;
    let mut warnings: Vec<DiagRecord> = Vec::new();
    let result = loop {
        // Gates, re-checked before every attempt: a request that
        // expired while queued (or while backing off) never runs, and a
        // quarantined input never reaches a worker's compiler.
        if let Some(reason) = token.state() {
            break Err(cancel_to_error(reason));
        }
        if inner.quarantine.check(&keys[0]) {
            inner.stats.record_quarantine_hit();
            break Err(ServiceError::Quarantined);
        }
        let first = attempts == 0;
        attempts += 1;
        let (hit, warn, outcome) = attempt(inner, &req, &kinds, &keys, token, first);
        all_hit = hit;
        warnings = warn;
        match outcome {
            Ok(artifacts) => {
                if attempts > 1 {
                    inner.stats.record_retry_success();
                }
                break Ok(artifacts);
            }
            Err(err) => {
                // A cooperative compiler surfaces cancellation as a
                // coded compile failure; map it back to the
                // service-level condition (and never retry it — the
                // E08xx transient class is for *client-side* retries
                // with a fresh deadline, not for re-running a request
                // whose own deadline is already spent).
                if let ServiceError::Compile { report, .. } = &err {
                    let codes = report.codes();
                    if codes.contains(&codes::E0802.id) {
                        break Err(ServiceError::DeadlineExceeded);
                    }
                    if codes.contains(&codes::E0805.id) {
                        break Err(ServiceError::Draining);
                    }
                }
                let transient = match &err {
                    ServiceError::Panic(_) => true,
                    ServiceError::Compile { report, .. } => {
                        let failure_codes = report.codes();
                        !failure_codes.is_empty()
                            && failure_codes
                                .iter()
                                .all(|c| codes::retry_class_of(c) == RetryClass::Transient)
                    }
                    _ => false,
                };
                if transient && attempts <= inner.retry.budget {
                    let sleep = backoff.next();
                    // Retry only when the backoff fits inside the
                    // remaining deadline; otherwise the sleep itself
                    // would turn a real failure into E0802.
                    let fits = token.remaining().is_none_or(|rem| rem > sleep);
                    if fits && !token.is_cancelled() {
                        inner.stats.record_retry_attempt();
                        thread::sleep(sleep);
                        continue;
                    }
                }
                // Final outcome. A panic that survived its retries
                // quarantines the input's digest: repeat offenders are
                // rejected instantly instead of re-poisoning workers.
                if matches!(err, ServiceError::Panic(_)) {
                    inner.quarantine.insert(keys[0]);
                }
                break Err(err);
            }
        }
    };

    match &result {
        // Compile errors and panics are disjoint counters (a panicking
        // request counts only under `panics`, recorded per attempt in
        // compile_guarded).
        Err(ServiceError::Compile { report, .. }) => {
            inner.stats.record_error();
            inner.stats.record_failure_codes(&report.codes());
        }
        Err(ServiceError::DeadlineExceeded) => {
            inner.stats.record_deadline_exceeded();
            inner.stats.record_failure_codes(&[codes::E0802.id]);
        }
        Err(ServiceError::Quarantined) => {
            inner.stats.record_failure_codes(&[codes::E0803.id]);
        }
        Err(ServiceError::Draining) => {
            inner.stats.record_failure_codes(&[codes::E0805.id]);
        }
        _ => {}
    }
    let latency = start.elapsed();
    inner.stats.record_latency(latency.as_nanos() as u64);
    inner.in_flight.fetch_sub(1, Ordering::Relaxed);
    RequestReport {
        name: req.name,
        result,
        cache_hit: all_hit,
        warnings,
        latency,
        attempts,
    }
}

/// One attempt: per-kind cache probe, one guarded compile for the
/// missing kinds, per-kind cache fill, artifact assembly. Kind and
/// hit/miss counters record only on the first attempt so retries do
/// not inflate per-request statistics; the cache is re-probed on every
/// attempt (another worker may have filled it meanwhile).
#[allow(clippy::type_complexity)]
fn attempt<C: Compiler>(
    inner: &Inner<C>,
    req: &CompileRequest,
    kinds: &[ArtifactKind],
    keys: &[CacheKey],
    token: &CancelToken,
    first: bool,
) -> (
    bool,
    Vec<DiagRecord>,
    Result<Vec<ArtifactReport<C>>, ServiceError<C::Error>>,
) {
    let probe = trace::enter("cache-probe");
    let mut slots: Vec<Option<Arc<C::Artifact>>> = Vec::with_capacity(kinds.len());
    for (kind, key) in kinds.iter().zip(keys) {
        let found = if inner.caching {
            inner.cache.get(key, req, kind)
        } else {
            None
        };
        if first {
            inner.stats.record_kind(kind, found.is_some());
        }
        if trace::active() {
            let outcome = if found.is_some() { "hit" } else { "miss" };
            trace::instant("probe", Some(format!("{kind}:{outcome}")));
        }
        slots.push(found);
    }
    trace::exit(probe);
    let missing: Vec<usize> = (0..kinds.len()).filter(|&i| slots[i].is_none()).collect();
    let all_hit = missing.is_empty();
    if first {
        if all_hit {
            inner.stats.record_hit();
        } else {
            inner.stats.record_miss();
        }
    }

    let mut warnings: Vec<DiagRecord> = Vec::new();
    let result = if all_hit {
        Ok(())
    } else {
        let missing_kinds: Vec<ArtifactKind> = missing.iter().map(|&i| kinds[i]).collect();
        compile_guarded(inner, req, &missing_kinds, token).map(|output| {
            let _store = trace::span("cache-fill");
            inner.stats.record_warnings(output.warnings.len() as u64);
            inner
                .stats
                .record_lint_codes(output.warnings.iter().map(|w| w.code));
            warnings = output.warnings;
            for (kind, artifact) in output.artifacts {
                // Only requested-and-missing kinds are admitted; a
                // compiler returning extras (or duplicates) does not
                // grow the cache beyond what was asked for.
                let Some(slot) = (0..kinds.len()).find(|&i| kinds[i] == kind && slots[i].is_none())
                else {
                    continue;
                };
                let shared = if inner.caching {
                    inner.cache.insert(keys[slot], req, kind, artifact)
                } else {
                    Arc::new(artifact)
                };
                slots[slot] = Some(shared);
            }
        })
    };

    let result = result.and_then(|()| {
        let mut artifacts: Vec<ArtifactReport<C>> = Vec::with_capacity(kinds.len());
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                Some(artifact) => artifacts.push(ArtifactReport {
                    kind: kinds[i],
                    artifact,
                    cache_hit: !missing.contains(&i),
                }),
                None => return Err(ServiceError::MissingArtifact(kinds[i])),
            }
        }
        Ok(artifacts)
    });
    (all_hit, warnings, result)
}

fn compile_guarded<C: Compiler>(
    inner: &Inner<C>,
    req: &CompileRequest,
    kinds: &[ArtifactKind],
    token: &CancelToken,
) -> Result<crate::CompileOutput<C::Artifact>, ServiceError<C::Error>> {
    let compile_start = Instant::now();
    let guard = trace::enter("compile");
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        inner.compiler.compile_cancellable(req, kinds, token)
    }));
    trace::exit(guard);
    match outcome {
        Ok(Ok(output)) => {
            inner.stats.record_stages(&output.samples);
            // Teach the cost model what this request actually cost
            // (successes only: failures abort early and would skew the
            // nanoseconds-per-hint ratio down).
            inner.cost_model.record(
                inner.compiler.cost_hint(req),
                compile_start.elapsed().as_nanos() as u64,
            );
            Ok(output)
        }
        Ok(Err(error)) => {
            let report = inner.compiler.failure_report(req, &error);
            Err(ServiceError::Compile { error, report })
        }
        Err(panic) => {
            inner.stats.record_panic();
            Err(ServiceError::Panic(panic_message(panic.as_ref())))
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, StageSample};

    /// A toy compiler: uppercases the source; `source == "BOOM"` panics,
    /// `source == "ERR"` errors (uncoded → transient class),
    /// `source == "SRCERR"` errors with a source-class code,
    /// `source == "FLAKY"` fails transiently on the first attempt only,
    /// `source == "SLOW"` spins cooperatively until cancelled, and each
    /// compile counts its invocations so cache hits (and retries) are
    /// observable as invocation counts.
    struct Toy {
        calls: AtomicU64,
        /// Sources already attempted once (drives `FLAKY`).
        seen: std::sync::Mutex<std::collections::HashSet<String>>,
    }

    impl Toy {
        fn new() -> Toy {
            Toy {
                calls: AtomicU64::new(0),
                seen: std::sync::Mutex::new(std::collections::HashSet::new()),
            }
        }
    }

    impl Compiler for Toy {
        type Artifact = String;
        type Error = String;

        fn compile(
            &self,
            req: &CompileRequest,
            kinds: &[ArtifactKind],
        ) -> Result<crate::CompileOutput<String>, String> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            match req.source.as_str() {
                "BOOM" => panic!("toy compiler exploded"),
                "ERR" => Err("toy compile error".to_owned()),
                "SRCERR" => Err("source:bad program".to_owned()),
                "FLAKY" => {
                    let fresh = self
                        .seen
                        .lock()
                        .unwrap()
                        .insert(format!("{}:{}", req.name, req.source));
                    if fresh {
                        Err("transient glitch".to_owned())
                    } else {
                        Ok(crate::CompileOutput::new(
                            kinds.iter().map(|k| (*k, "FLAKY-OK".to_owned())).collect(),
                            Vec::new(),
                        ))
                    }
                }
                "FORGETFUL" => Ok(crate::CompileOutput::new(Vec::new(), Vec::new())),
                src => Ok(crate::CompileOutput::new(
                    kinds
                        .iter()
                        .map(|kind| {
                            let body = match kind {
                                ArtifactKind::CCode => src.to_uppercase(),
                                other => format!("{other}:{}", src.to_uppercase()),
                            };
                            (*kind, body)
                        })
                        .collect(),
                    vec![StageSample {
                        stage: crate::Stage::Frontend,
                        nanos: 5,
                    }],
                )
                .with_warnings(if src == "warny" {
                    vec![crate::DiagRecord {
                        code: "W0102",
                        severity: velus_common::Severity::Warning,
                        stage: "elaborate",
                        message: "toy warning".to_owned(),
                        line: 1,
                        col: 1,
                    }]
                } else {
                    Vec::new()
                })),
            }
        }

        fn compile_cancellable(
            &self,
            req: &CompileRequest,
            kinds: &[ArtifactKind],
            cancel: &CancelToken,
        ) -> Result<crate::CompileOutput<String>, String> {
            if req.source == "SLOW" {
                self.calls.fetch_add(1, Ordering::SeqCst);
                // Spin in short slices like a cooperative pipeline
                // checking the token at pass boundaries (bounded as a
                // failsafe so a broken drain cannot hang the tests).
                for _ in 0..30_000 {
                    if let Some(reason) = cancel.state() {
                        return Err(format!("cancelled:{}", reason.code()));
                    }
                    thread::sleep(Duration::from_millis(1));
                }
                return Err("slow request was never cancelled".to_owned());
            }
            self.compile(req, kinds)
        }

        fn failure_report(&self, _req: &CompileRequest, err: &String) -> FailureReport {
            // `source:` errors carry a source-class code; `cancelled:`
            // errors carry the cancellation code the token reported —
            // the same shapes the real pipeline produces.
            let coded = |code: &'static str| FailureReport {
                diagnostics: vec![DiagRecord {
                    code,
                    severity: velus_common::Severity::Error,
                    stage: "driver",
                    message: err.clone(),
                    line: 0,
                    col: 0,
                }],
            };
            if err.starts_with("source:") {
                coded(codes::E0201.id)
            } else if let Some(code) = err.strip_prefix("cancelled:") {
                match code {
                    "E0802" => coded(codes::E0802.id),
                    _ => coded(codes::E0805.id),
                }
            } else {
                FailureReport::from_message(err.clone())
            }
        }
    }

    fn service(workers: usize) -> CompileService<Toy> {
        CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers,
                caching: true,
                ..Default::default()
            },
        )
    }

    fn fast_retry(budget: u32) -> RetryPolicy {
        RetryPolicy {
            budget,
            backoff_base: Duration::from_micros(100),
            backoff_cap: Duration::from_millis(2),
        }
    }

    #[test]
    fn batch_results_are_in_request_order() {
        let svc = service(4);
        let reqs: Vec<CompileRequest> = (0..32)
            .map(|i| CompileRequest::new(format!("r{i}"), format!("src{i}")))
            .collect();
        let batch = svc.compile_batch(reqs);
        assert_eq!(batch.ok_count(), 32);
        for (i, item) in batch.items.iter().enumerate() {
            assert_eq!(item.name, format!("r{i}"));
            assert_eq!(**item.primary().unwrap(), format!("SRC{i}"));
            assert_eq!(item.attempts, 1);
        }
    }

    #[test]
    fn warm_requests_hit_the_cache_and_skip_the_compiler() {
        let svc = service(2);
        let reqs: Vec<CompileRequest> = (0..8)
            .map(|i| CompileRequest::new(format!("r{i}"), format!("s{i}")))
            .collect();
        let cold = svc.compile_batch(reqs.clone());
        assert_eq!(cold.hit_count(), 0);
        let calls_after_cold = svc.inner.compiler.calls.load(Ordering::SeqCst);
        let warm = svc.compile_batch(reqs);
        assert_eq!(warm.hit_count(), 8);
        // The compiler ran zero additional times: the pipeline was skipped.
        assert_eq!(
            svc.inner.compiler.calls.load(Ordering::SeqCst),
            calls_after_cold
        );
        // And the artifacts are the identical allocations.
        for (a, b) in cold.items.iter().zip(&warm.items) {
            assert!(Arc::ptr_eq(a.primary().unwrap(), b.primary().unwrap()));
        }
        let stats = svc.stats();
        assert_eq!(
            (stats.requests, stats.cache_hits, stats.cache_misses),
            (16, 8, 8)
        );
    }

    #[test]
    fn equal_content_under_different_names_shares_one_artifact() {
        let svc = service(2);
        let batch = svc.compile_batch(vec![
            CompileRequest::new("a", "same"),
            CompileRequest::new("b", "same"),
        ]);
        assert_eq!(batch.ok_count(), 2);
        assert_eq!(svc.cache_len(), 1);
    }

    #[test]
    fn errors_and_panics_are_contained_per_request() {
        let svc = service(2);
        let batch = svc.compile_batch(vec![
            CompileRequest::new("good1", "alpha"),
            CompileRequest::new("bad", "ERR"),
            CompileRequest::new("ugly", "BOOM"),
            CompileRequest::new("good2", "beta"),
        ]);
        assert_eq!(batch.ok_count(), 2);
        match &batch.items[1].result {
            Err(ServiceError::Compile { report, .. }) => {
                // The default failure report is the uncoded E0000 record.
                assert_eq!(report.primary_code(), Some("E0000"));
                assert!(report.to_string().contains("toy compile error"), "{report}");
            }
            other => panic!("expected a compile error, got ok={}", other.is_ok()),
        }
        match &batch.items[2].result {
            Err(ServiceError::Panic(msg)) => assert!(msg.contains("exploded"), "{msg}"),
            other => panic!("expected a contained panic, got {:?}", other.is_ok()),
        }
        // The pool survives and serves subsequent batches.
        let after = svc.compile_batch(vec![CompileRequest::new("again", "gamma")]);
        assert_eq!(after.ok_count(), 1);
        assert_eq!(svc.dead_workers(), 0);
        // Errors and panics are disjoint counters: 1 compile error, 1
        // contained panic.
        let stats = svc.stats();
        assert_eq!((stats.errors, stats.panics), (1, 1));
    }

    #[test]
    fn caching_can_be_disabled() {
        let svc = CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers: 1,
                caching: false,
                ..Default::default()
            },
        );
        let req = CompileRequest::new("r", "x");
        svc.compile_one(req.clone());
        let report = svc.compile_one(req);
        assert!(!report.cache_hit);
        assert_eq!(svc.cache_len(), 0);
        assert_eq!(svc.inner.compiler.calls.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn stats_snapshot_reflects_stage_samples() {
        let svc = service(1);
        svc.compile_one(CompileRequest::new("r", "x"));
        let stats = svc.stats();
        let frontend = &stats.stages[crate::Stage::Frontend.index()];
        assert_eq!(frontend.count, 1);
        assert_eq!(frontend.p50_nanos, 5);
    }

    #[test]
    fn a_capped_cache_evicts_and_the_evictee_recompiles() {
        let svc = CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers: 1,
                caching: true,
                cache: crate::CacheConfig {
                    max_entries: Some(1),
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        let (ra, rb) = (
            CompileRequest::new("a", "one"),
            CompileRequest::new("b", "two"),
        );
        svc.compile_one(ra.clone());
        svc.compile_one(rb.clone()); // evicts `a` (cap 1)
        let stats = svc.stats();
        assert_eq!((stats.cache_entries, stats.cache_evictions), (1, 1));
        // `a` was evicted: its next request misses, recompiles, and the
        // fresh artifact verifies against the request content again.
        let again = svc.compile_one(ra);
        assert!(!again.cache_hit);
        assert_eq!(**again.primary().unwrap(), "ONE");
        assert_eq!(svc.inner.compiler.calls.load(Ordering::SeqCst), 3);
        assert!(svc.stats().cache_evictions >= 1);
        let _ = rb;
    }

    #[test]
    fn multi_kind_requests_compile_once_and_cache_per_kind() {
        let svc = service(2);
        let kinds = vec![ArtifactKind::CCode, ArtifactKind::BaselineDiff];
        let req =
            CompileRequest::new("r", "x").with_options(CompileOptions::for_kinds(kinds.clone()));
        let cold = svc.compile_one(req.clone());
        let artifacts = cold.result.as_ref().unwrap();
        assert_eq!(artifacts.len(), 2);
        assert_eq!(*artifacts[0].artifact, "X");
        assert_eq!(*artifacts[1].artifact, "baseline-diff:X");
        // One compiler invocation produced both kinds; both were cached
        // under separate keys.
        assert_eq!(svc.inner.compiler.calls.load(Ordering::SeqCst), 1);
        assert_eq!(svc.cache_len(), 2);

        // A request for just one of the kinds hits that kind's entry.
        let one = svc.compile_one(
            CompileRequest::new("r", "x")
                .with_options(CompileOptions::for_kinds(vec![ArtifactKind::BaselineDiff])),
        );
        assert!(one.cache_hit);
        assert!(Arc::ptr_eq(
            one.artifact(&ArtifactKind::BaselineDiff).unwrap(),
            &artifacts[1].artifact
        ));
        assert_eq!(svc.inner.compiler.calls.load(Ordering::SeqCst), 1);

        // A request widening the kind set compiles only the missing kind.
        let wider = svc.compile_one(req.with_options(CompileOptions::for_kinds(vec![
            ArtifactKind::CCode,
            ArtifactKind::BaselineDiff,
            ArtifactKind::IrDump {
                stage: crate::IrStageKind::Obc,
            },
        ])));
        assert!(!wider.cache_hit, "a new kind forces a compile");
        let wider_artifacts = wider.result.as_ref().unwrap();
        assert_eq!(wider_artifacts.len(), 3);
        assert!(wider_artifacts[0].cache_hit, "the C entry was reused");
        assert!(wider_artifacts[1].cache_hit);
        assert!(!wider_artifacts[2].cache_hit);
        assert_eq!(svc.cache_len(), 3);

        // Per-kind stats rows saw every kind request.
        let stats = svc.stats();
        let row = |name: &str| *stats.kinds.iter().find(|k| k.kind == name).unwrap();
        assert_eq!((row("c").requests, row("c").hits), (2, 1));
        assert_eq!(
            (row("baseline-diff").requests, row("baseline-diff").hits),
            (3, 2)
        );
        assert_eq!((row("ir-dump").requests, row("ir-dump").hits), (1, 0));
    }

    #[test]
    fn a_compiler_omitting_a_kind_is_a_loud_error() {
        let svc = service(1);
        let report = svc.compile_one(CompileRequest::new("r", "FORGETFUL"));
        assert!(matches!(
            report.result,
            Err(ServiceError::MissingArtifact(ArtifactKind::CCode))
        ));
        // Nothing was cached for the failed request.
        assert_eq!(svc.cache_len(), 0);
    }

    #[test]
    fn warnings_and_failure_codes_reach_the_stats() {
        let svc = service(1);
        // A cold compile surfaces its warnings on the report and counts
        // them in the statistics.
        let cold = svc.compile_one(CompileRequest::new("w", "warny"));
        assert_eq!(cold.warnings.len(), 1);
        assert_eq!(cold.warnings[0].code, "W0102");
        // A warm request skips the pipeline: no (re-)warnings.
        let warm = svc.compile_one(CompileRequest::new("w", "warny"));
        assert!(warm.cache_hit && warm.warnings.is_empty());
        // Failures count under their codes.
        let _ = svc.compile_one(CompileRequest::new("bad", "ERR"));
        let stats = svc.stats();
        assert_eq!(stats.warnings, 1);
        assert_eq!(stats.failure_codes, vec![("E0000", 1)]);
        // The warning carried a registered lint code: its per-code row
        // counts the cold compile once (the warm hit adds nothing).
        assert_eq!(stats.lint_codes, vec![("W0102", 1)]);
        let rendered = stats.to_string();
        assert!(rendered.contains("warnings 1"), "{rendered}");
        assert!(rendered.contains("failures by code: E0000:1"), "{rendered}");
    }

    #[test]
    fn cost_scheduling_reorders_submission_but_not_results() {
        let svc = CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers: 1,
                caching: true,
                schedule: crate::SchedulePolicy::Cost,
                ..Default::default()
            },
        );
        // Toy's default cost hint is the source length: the longest
        // source is submitted (and with one worker, compiled) first.
        let reqs = vec![
            CompileRequest::new("short", "s"),
            CompileRequest::new("long", "the longest source of them all"),
            CompileRequest::new("mid", "a medium one"),
        ];
        let batch = svc.compile_batch(reqs.clone());
        assert_eq!(batch.ok_count(), 3);
        // Reports stay in request order regardless of submission order.
        let names: Vec<&str> = batch.items.iter().map(|i| i.name.as_str()).collect();
        assert_eq!(names, ["short", "long", "mid"]);
        // The model learned from the uncached compilations.
        assert_eq!(svc.cost_model().samples(), 3);
        // A warm batch is unaffected by scheduling: all hits.
        let warm = svc.compile_batch(reqs);
        assert_eq!(warm.hit_count(), 3);
    }

    #[test]
    fn a_zero_queue_cap_sheds_every_request_with_coded_errors() {
        let svc = CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers: 2,
                admission: AdmissionConfig {
                    queue_cap: Some(0),
                    cost_budget_ms: None,
                },
                ..Default::default()
            },
        );
        let batch = svc.compile_batch(vec![
            CompileRequest::new("a", "x"),
            CompileRequest::new("b", "y"),
            CompileRequest::new("c", "z"),
        ]);
        assert_eq!(batch.ok_count(), 0);
        assert_eq!(batch.shed_count(), 3);
        for item in &batch.items {
            match &item.result {
                Err(err @ ServiceError::Overloaded { .. }) => {
                    assert_eq!(err.failure_report().primary_code(), Some("E0801"));
                    assert_eq!(item.attempts, 0);
                }
                other => panic!("expected Overloaded, got ok={}", other.is_ok()),
            }
        }
        let stats = svc.stats();
        assert_eq!((stats.shed, stats.requests), (3, 0));
        assert_eq!(stats.failure_codes, vec![("E0801", 3)]);
        assert_eq!(svc.inner.compiler.calls.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn transient_failures_retry_and_succeed_within_budget() {
        let svc = CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers: 1,
                retry: fast_retry(2),
                ..Default::default()
            },
        );
        let report = svc.compile_one(CompileRequest::new("f", "FLAKY"));
        assert!(report.result.is_ok(), "flaky request must succeed on retry");
        assert_eq!(report.attempts, 2);
        let stats = svc.stats();
        assert_eq!((stats.retries_attempted, stats.retries_succeeded), (1, 1));
        assert_eq!(stats.errors, 0, "the retried failure is not a failure");
    }

    #[test]
    fn source_failures_are_never_retried() {
        let svc = CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers: 1,
                retry: fast_retry(3),
                ..Default::default()
            },
        );
        let report = svc.compile_one(CompileRequest::new("s", "SRCERR"));
        assert!(matches!(
            &report.result,
            Err(ServiceError::Compile { report, .. }) if report.primary_code() == Some("E0201")
        ));
        assert_eq!(report.attempts, 1, "source-class failures never retry");
        assert_eq!(svc.stats().retries_attempted, 0);
        assert_eq!(svc.inner.compiler.calls.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn transient_retries_exhaust_their_budget_then_fail() {
        let svc = CompileService::new(
            Toy::new(),
            ServiceConfig {
                workers: 1,
                retry: fast_retry(2),
                ..Default::default()
            },
        );
        // "ERR" fails identically on every attempt with the transient
        // E0000 class: the budget is spent, then the error surfaces.
        let report = svc.compile_one(CompileRequest::new("e", "ERR"));
        assert!(matches!(&report.result, Err(ServiceError::Compile { .. })));
        assert_eq!(report.attempts, 3, "1 initial + 2 retries");
        let stats = svc.stats();
        assert_eq!((stats.retries_attempted, stats.retries_succeeded), (2, 0));
        assert_eq!(stats.errors, 1, "one failed request, not three");
    }

    #[test]
    fn a_panicking_input_is_quarantined_and_rejected_on_resubmit() {
        let svc = service(1);
        let first = svc.compile_one(CompileRequest::new("p1", "BOOM"));
        assert!(matches!(first.result, Err(ServiceError::Panic(_))));
        assert_eq!(first.attempts, 1);
        let calls = svc.inner.compiler.calls.load(Ordering::SeqCst);
        // Same input (different name — quarantine keys on content):
        // rejected before reaching the compiler.
        let second = svc.compile_one(CompileRequest::new("p2", "BOOM"));
        match &second.result {
            Err(err @ ServiceError::Quarantined) => {
                assert_eq!(err.failure_report().primary_code(), Some("E0803"));
            }
            other => panic!("expected Quarantined, got ok={}", other.is_ok()),
        }
        assert_eq!(second.attempts, 0);
        assert_eq!(
            svc.inner.compiler.calls.load(Ordering::SeqCst),
            calls,
            "the quarantined input never reached the compiler again"
        );
        let stats = svc.stats();
        assert_eq!(
            (stats.panics, stats.quarantine_hits, stats.quarantined),
            (1, 1, 1)
        );
        // Other inputs are unaffected.
        assert!(svc
            .compile_one(CompileRequest::new("ok", "fine"))
            .result
            .is_ok());
    }

    #[test]
    fn an_expired_deadline_rejects_before_compiling() {
        let svc = service(1);
        let report = svc.compile_one(CompileRequest::new("d", "x").with_deadline_ms(0));
        match &report.result {
            Err(err @ ServiceError::DeadlineExceeded) => {
                assert_eq!(err.failure_report().primary_code(), Some("E0802"));
            }
            other => panic!("expected DeadlineExceeded, got ok={}", other.is_ok()),
        }
        assert_eq!(report.attempts, 0);
        let stats = svc.stats();
        assert_eq!(stats.deadline_exceeded, 1);
        assert_eq!(stats.failure_codes, vec![("E0802", 1)]);
        assert_eq!(svc.inner.compiler.calls.load(Ordering::SeqCst), 0);
        // A generous deadline compiles normally.
        let ok = svc.compile_one(CompileRequest::new("d2", "y").with_deadline_ms(60_000));
        assert!(ok.result.is_ok());
    }

    #[test]
    fn drain_completes_quiet_services_cleanly() {
        let svc = service(2);
        let batch = svc.compile_batch(vec![CompileRequest::new("a", "x")]);
        assert_eq!(batch.ok_count(), 1);
        let drained = svc.drain(Duration::from_secs(5));
        assert!(drained.clean(), "{drained}");
        // Admission is closed: everything afterwards is rejected with a
        // coded error, through every entry point.
        let after = svc.compile_batch(vec![CompileRequest::new("late", "y")]);
        assert!(matches!(after.items[0].result, Err(ServiceError::Draining)));
        assert!(matches!(
            svc.compile_one(CompileRequest::new("later", "z")).result,
            Err(ServiceError::Draining)
        ));
        let sub = svc.submit(CompileRequest::new("latest", "w"));
        assert!(!sub.admitted());
        assert!(matches!(sub.wait().result, Err(ServiceError::Draining)));
        let stats = svc.stats();
        assert_eq!(stats.drains, 1);
        assert_eq!(stats.shed, 3);
    }

    #[test]
    fn drain_cancels_in_flight_work_by_the_deadline_without_losing_counts() {
        let svc = service(2);
        // Occupy both workers with cooperative slow compilations and
        // queue a third request behind them.
        let s1 = svc.submit(CompileRequest::new("slow1", "SLOW"));
        let s2 = svc.submit(CompileRequest::new("slow2", "SLOW"));
        let s3 = svc.submit(CompileRequest::new("queued", "x"));
        assert!(s1.admitted() && s2.admitted() && s3.admitted());
        // Wait until both slow compilations actually started.
        let began = Instant::now();
        while svc.inner.compiler.calls.load(Ordering::SeqCst) < 2 {
            assert!(
                began.elapsed() < Duration::from_secs(10),
                "workers never started"
            );
            thread::sleep(Duration::from_millis(1));
        }
        let drained = svc.drain(Duration::from_millis(100));
        // The slow requests could not finish by the deadline: they were
        // cancelled cooperatively; nothing is left outstanding.
        assert!(drained.cancelled >= 2, "{drained}");
        assert_eq!(drained.outstanding, 0, "{drained}");
        assert!(!drained.clean());
        // Every submission resolves — no lost requests.
        let r1 = s1.wait();
        let r2 = s2.wait();
        let r3 = s3.wait();
        for r in [&r1, &r2] {
            assert!(
                matches!(r.result, Err(ServiceError::Draining)),
                "slow requests resolve as cancelled-by-drain"
            );
        }
        // The queued request either completed before the kill switch or
        // was rejected by it — never lost.
        assert!(
            r3.result.is_ok() || matches!(r3.result, Err(ServiceError::Draining)),
            "queued request must resolve"
        );
        let stats = svc.stats();
        assert_eq!(stats.requests, 3, "all admitted requests were accounted");
        assert_eq!(stats.drains, 1);
        assert!(stats.drain_ns > 0);
        assert_eq!(svc.dead_workers(), 0);
        // The failure rows carry the drain code for the cancelled work.
        assert!(
            stats.failure_codes.iter().any(|(c, _)| *c == "E0805"),
            "{:?}",
            stats.failure_codes
        );
    }

    #[test]
    fn submit_resolves_like_compile_one() {
        let svc = service(2);
        let ok = svc.submit(CompileRequest::new("s", "hello")).wait();
        assert_eq!(**ok.primary().unwrap(), "HELLO");
        assert_eq!(ok.attempts, 1);
        let warm = svc.submit(CompileRequest::new("s", "hello")).wait();
        assert!(warm.cache_hit);
    }

    #[test]
    fn service_shutdown_is_acknowledged() {
        let svc = service(2);
        assert_eq!(
            svc.compile_batch(vec![CompileRequest::new("a", "x")])
                .ok_count(),
            1
        );
        svc.shutdown().expect("idle workers ack shutdown promptly");
    }
}
