//! Admission control: bounded queues, cost-aware load shedding, panic
//! quarantine, and the retry/backoff policy.
//!
//! The service admits a request before queueing it and releases the
//! admission when the request completes. Two independent bounds apply:
//!
//! * a **count cap** ([`AdmissionConfig::queue_cap`]) on outstanding
//!   admitted requests (queued + running) — the classic bounded queue;
//! * a **cost budget** ([`AdmissionConfig::cost_budget_ms`]) on the
//!   *predicted* total compile time of outstanding work, priced with
//!   the same [`CostModel`](crate::CostModel) ratio that drives
//!   `--sched cost`. A single thousand-node program can exhaust the
//!   budget that a hundred ten-line programs fit into, which is the
//!   point: shedding is proportional to offered load, not request
//!   count. While the model is cold (no observed ratio yet) the budget
//!   is not enforced — there is nothing sound to price with.
//!
//! Over-budget work is rejected with `E0801` immediately instead of
//! queueing unboundedly; a draining service rejects with `E0805`.
//!
//! `Quarantine` is the panic blocklist: when a request's compilation
//! still panics after its retry budget, its cache digest enters a small
//! ring; subsequent requests with the same digest are rejected with
//! `E0803` before touching a worker. The ring is bounded, so a stream
//! of distinct poisonous inputs ages old entries out rather than
//! growing without limit.
//!
//! [`RetryPolicy`] implements decorrelated-jitter backoff
//! (`sleep = uniform(base, prev * 3)`, capped): retries of transient
//! failures spread out instead of synchronizing into retry storms.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::cache::CacheKey;

/// Admission bounds. The default is unbounded (every request admitted),
/// which preserves the pre-admission behavior of `compile_batch`.
#[derive(Debug, Clone, Copy, Default)]
pub struct AdmissionConfig {
    /// Maximum outstanding admitted requests (queued + running).
    /// `None` = unbounded.
    pub queue_cap: Option<usize>,
    /// Maximum *predicted* total compile time of outstanding work, in
    /// milliseconds, priced with the cost model's observed
    /// nanoseconds-per-hint ratio. `None` = unbounded; not enforced
    /// while the model is cold.
    pub cost_budget_ms: Option<u64>,
}

/// Why a request was not admitted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum AdmitReject {
    /// Queue cap or cost budget exceeded (`E0801`).
    Overloaded {
        /// Outstanding admitted requests at rejection time.
        queued: u64,
    },
    /// Admission is closed by a drain (`E0805`).
    Draining,
}

/// The admission gate: outstanding-work accounting plus the drain flag.
#[derive(Debug, Default)]
pub(crate) struct Admission {
    config: AdmissionConfig,
    /// Admitted, not yet completed requests.
    outstanding: AtomicU64,
    /// Predicted nanoseconds of outstanding work (only maintained when
    /// a cost budget is configured).
    outstanding_cost_ns: AtomicU64,
    draining: AtomicBool,
}

impl Admission {
    pub(crate) fn new(config: AdmissionConfig) -> Admission {
        Admission {
            config,
            ..Admission::default()
        }
    }

    pub(crate) fn config(&self) -> AdmissionConfig {
        self.config
    }

    /// Tries to admit one request predicted to cost `cost_ns`
    /// nanoseconds (0 when no budget is configured or the model is
    /// cold). On success the caller owns one admission and must
    /// [`release`](Admission::release) it with the same cost.
    pub(crate) fn try_admit(&self, cost_ns: u64) -> Result<(), AdmitReject> {
        if self.draining.load(Ordering::Relaxed) {
            return Err(AdmitReject::Draining);
        }
        // Optimistically reserve, then check; over-budget reservations
        // roll back. Two racing admits can both reserve the last slot
        // and one rolls back — the cap is honored, never overshot
        // silently by more than the race window.
        let queued = self.outstanding.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(cap) = self.config.queue_cap {
            if queued > cap as u64 {
                self.outstanding.fetch_sub(1, Ordering::Relaxed);
                return Err(AdmitReject::Overloaded { queued: queued - 1 });
            }
        }
        if self.config.cost_budget_ms.is_some() && cost_ns > 0 {
            let budget_ns = self.config.cost_budget_ms.unwrap_or(0) * 1_000_000;
            let total = self
                .outstanding_cost_ns
                .fetch_add(cost_ns, Ordering::Relaxed)
                + cost_ns;
            // The *first* outstanding request is always admitted even if
            // it alone exceeds the budget — otherwise a single large
            // program could never compile at all.
            if total > budget_ns && total != cost_ns {
                self.outstanding_cost_ns
                    .fetch_sub(cost_ns, Ordering::Relaxed);
                self.outstanding.fetch_sub(1, Ordering::Relaxed);
                return Err(AdmitReject::Overloaded { queued: queued - 1 });
            }
        }
        Ok(())
    }

    /// Releases one admission obtained from [`try_admit`](Admission::try_admit).
    pub(crate) fn release(&self, cost_ns: u64) {
        self.outstanding.fetch_sub(1, Ordering::Relaxed);
        if cost_ns > 0 {
            self.outstanding_cost_ns
                .fetch_sub(cost_ns, Ordering::Relaxed);
        }
    }

    /// Outstanding admitted requests.
    pub(crate) fn outstanding(&self) -> u64 {
        self.outstanding.load(Ordering::Relaxed)
    }

    /// Closes admission (drain). Idempotent; never reopened.
    pub(crate) fn close(&self) {
        self.draining.store(true, Ordering::Relaxed);
    }

    /// Whether admission is closed.
    pub(crate) fn is_closed(&self) -> bool {
        self.draining.load(Ordering::Relaxed)
    }
}

/// A bounded ring of quarantined input digests. Empty-checking is a
/// single relaxed load, so the fault-free path never takes the lock.
#[derive(Debug, Default)]
pub(crate) struct Quarantine {
    cap: usize,
    len: AtomicU64,
    ring: Mutex<Vec<CacheKey>>,
    hits: AtomicU64,
}

impl Quarantine {
    /// A quarantine holding at most `cap` digests (0 disables it).
    pub(crate) fn new(cap: usize) -> Quarantine {
        Quarantine {
            cap,
            ..Quarantine::default()
        }
    }

    /// Whether `key` is quarantined; counts a hit when it is.
    pub(crate) fn check(&self, key: &CacheKey) -> bool {
        if self.len.load(Ordering::Relaxed) == 0 {
            return false;
        }
        let hit = self.ring.lock().expect("quarantine lock").contains(key);
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        hit
    }

    /// Quarantines `key` (dedup; oldest entry evicted at capacity).
    pub(crate) fn insert(&self, key: CacheKey) {
        if self.cap == 0 {
            return;
        }
        let mut ring = self.ring.lock().expect("quarantine lock");
        if ring.contains(&key) {
            return;
        }
        if ring.len() == self.cap {
            ring.remove(0);
        }
        ring.push(key);
        self.len.store(ring.len() as u64, Ordering::Relaxed);
    }

    /// Digests currently quarantined.
    pub(crate) fn len(&self) -> u64 {
        self.len.load(Ordering::Relaxed)
    }

    /// Requests rejected by the quarantine so far.
    #[cfg(test)]
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }
}

/// How transient failures are retried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries per request beyond the first attempt (0 disables
    /// retrying — the default, so retry behavior is always opt-in).
    pub budget: u32,
    /// Lower bound of the first backoff sleep.
    pub backoff_base: Duration,
    /// Upper bound any backoff sleep is clamped to.
    pub backoff_cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            budget: 0,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(100),
        }
    }
}

impl RetryPolicy {
    /// A policy retrying up to `budget` times with the default backoff.
    pub fn with_budget(budget: u32) -> RetryPolicy {
        RetryPolicy {
            budget,
            ..RetryPolicy::default()
        }
    }
}

/// Decorrelated-jitter backoff state: `next = uniform(base, prev * 3)`,
/// clamped to the cap. Seeded per request (from the input digest) so
/// backoff is deterministic for a given input yet decorrelated across
/// requests — concurrent retries spread out instead of thundering back
/// together.
#[derive(Debug)]
pub(crate) struct Backoff {
    policy: RetryPolicy,
    prev: Duration,
    rng: u64,
}

impl Backoff {
    pub(crate) fn new(policy: RetryPolicy, seed: u64) -> Backoff {
        Backoff {
            policy,
            prev: policy.backoff_base,
            // A zero xorshift state would stay zero forever.
            rng: seed | 1,
        }
    }

    /// The next sleep duration.
    pub(crate) fn next(&mut self) -> Duration {
        // xorshift64*: tiny, deterministic, no dependency.
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        let r = x.wrapping_mul(0x2545_F491_4F6C_DD1D);

        let base = self.policy.backoff_base.as_nanos() as u64;
        let hi = (self.prev.as_nanos() as u64)
            .saturating_mul(3)
            .max(base + 1);
        let span = hi - base;
        let sleep = Duration::from_nanos(base + r % span).min(self.policy.backoff_cap);
        self.prev = sleep.max(self.policy.backoff_base);
        sleep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(n: u8) -> CacheKey {
        CacheKey::of_request(
            &crate::CompileRequest::new("k", format!("src{n}")),
            &crate::ArtifactKind::CCode,
        )
    }

    #[test]
    fn unbounded_admission_admits_everything() {
        let a = Admission::new(AdmissionConfig::default());
        for _ in 0..10_000 {
            a.try_admit(0).unwrap();
        }
        assert_eq!(a.outstanding(), 10_000);
    }

    #[test]
    fn queue_cap_sheds_and_release_reopens() {
        let a = Admission::new(AdmissionConfig {
            queue_cap: Some(2),
            cost_budget_ms: None,
        });
        a.try_admit(0).unwrap();
        a.try_admit(0).unwrap();
        assert_eq!(a.try_admit(0), Err(AdmitReject::Overloaded { queued: 2 }));
        assert_eq!(a.outstanding(), 2, "rejection rolls its reservation back");
        a.release(0);
        a.try_admit(0).unwrap();
        assert_eq!(a.outstanding(), 2);
    }

    #[test]
    fn cost_budget_sheds_but_always_fits_one_request() {
        let a = Admission::new(AdmissionConfig {
            queue_cap: None,
            cost_budget_ms: Some(10), // 10 ms budget
        });
        // A single 50 ms request is admitted (budget would deadlock an
        // empty service otherwise)…
        a.try_admit(50_000_000).unwrap();
        // …but a second request on top of the blown budget is shed.
        assert!(a.try_admit(1_000_000).is_err());
        a.release(50_000_000);
        // Cheap requests fit side by side.
        a.try_admit(4_000_000).unwrap();
        a.try_admit(4_000_000).unwrap();
        assert!(a.try_admit(4_000_000).is_err());
    }

    #[test]
    fn draining_closes_admission() {
        let a = Admission::new(AdmissionConfig::default());
        a.try_admit(0).unwrap();
        a.close();
        assert!(a.is_closed());
        assert_eq!(a.try_admit(0), Err(AdmitReject::Draining));
        assert_eq!(a.outstanding(), 1, "in-flight work is unaffected");
    }

    #[test]
    fn quarantine_is_a_bounded_dedup_ring() {
        let q = Quarantine::new(2);
        assert!(!q.check(&key(1)));
        q.insert(key(1));
        q.insert(key(1)); // dedup
        assert_eq!(q.len(), 1);
        assert!(q.check(&key(1)));
        q.insert(key(2));
        q.insert(key(3)); // evicts key(1)
        assert_eq!(q.len(), 2);
        assert!(!q.check(&key(1)));
        assert!(q.check(&key(2)) && q.check(&key(3)));
        assert_eq!(q.hits(), 3);
    }

    #[test]
    fn zero_capacity_disables_quarantine() {
        let q = Quarantine::new(0);
        q.insert(key(1));
        assert_eq!(q.len(), 0);
        assert!(!q.check(&key(1)));
    }

    #[test]
    fn backoff_jitters_within_bounds_and_caps() {
        let policy = RetryPolicy {
            budget: 5,
            backoff_base: Duration::from_millis(2),
            backoff_cap: Duration::from_millis(20),
        };
        let mut b = Backoff::new(policy, 0xDEAD_BEEF);
        let mut prev = policy.backoff_base;
        for _ in 0..50 {
            let s = b.next();
            assert!(s >= Duration::ZERO && s <= policy.backoff_cap, "{s:?}");
            // Decorrelated jitter: bounded by 3x the previous sleep
            // (before capping).
            assert!(
                s <= (prev * 3).max(policy.backoff_base).min(policy.backoff_cap)
                    + Duration::from_nanos(1)
            );
            prev = s.max(policy.backoff_base);
        }
        // Deterministic per seed.
        let a: Vec<Duration> = (0..5).map(|_| Backoff::new(policy, 7).next()).collect();
        assert!(a.windows(2).all(|w| w[0] == w[1]));
        // Different seeds decorrelate.
        assert_ne!(
            Backoff::new(policy, 1).next(),
            Backoff::new(policy, 0x5555_5555).next()
        );
    }
}
