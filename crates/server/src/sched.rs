//! Cost-predicted batch scheduling.
//!
//! A batch of compilation requests is embarrassingly parallel, but its
//! *makespan* (time until the last request finishes) depends on the
//! submission order: FIFO can leave one expensive program running alone
//! at the tail of the batch while every other worker sits idle. The
//! classic remedy is **longest-processing-time-first** (LPT) list
//! scheduling — submit the predicted-expensive requests first so the
//! tail is made of cheap ones — which is a 4/3-approximation of the
//! optimal makespan versus FIFO's unbounded adversarial ratio.
//!
//! Costs are predicted, not known: [`CostModel`] combines a cheap
//! syntactic hint from the request ([`crate::Compiler::cost_hint`] —
//! source bytes plus a node-count pre-scan in the Vélus instantiation)
//! with a sliding window of observed `(hint, latency)` pairs from the
//! service's own uncached compilations, so predictions are in
//! nanoseconds once the service has seen a few requests and degrade
//! gracefully to hint-proportional ordering cold.
//!
//! [`simulate_makespan`] is the trace-driven evaluation companion: it
//! replays measured per-request costs through an idealized W-worker list
//! schedule, which makes scheduling wins measurable even on machines
//! whose physical core count hides them (threads time-slicing one core
//! finish at the same time regardless of order).

use std::collections::VecDeque;
use std::sync::Mutex;

/// How [`crate::CompileService::compile_batch`] orders submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulePolicy {
    /// Submit in request order.
    #[default]
    Fifo,
    /// Submit in decreasing predicted cost (LPT list scheduling).
    Cost,
}

impl std::str::FromStr for SchedulePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<SchedulePolicy, String> {
        velus_common::parse_enum_flag(
            "schedule",
            s,
            &[
                ("fifo", SchedulePolicy::Fifo),
                ("cost", SchedulePolicy::Cost),
            ],
        )
    }
}

/// Retained `(hint, nanos)` observations. Small: predictions only need
/// a stable central tendency, and a bounded window adapts to drift
/// (e.g. a corpus switching from small to industrial-scale programs).
const WINDOW: usize = 256;

/// An online predictor of compilation cost from a syntactic hint.
///
/// Records `(hint, observed nanoseconds)` pairs for uncached
/// compilations in a sliding window; predicts `hint × median(ns/hint)`.
/// The ratio's median (rather than mean) shrugs off the occasional
/// wildly slow sample a busy machine produces. With an empty window the
/// prediction is the hint itself — dimensionally wrong but order-exact,
/// which is all LPT needs.
#[derive(Default)]
pub struct CostModel {
    window: Mutex<VecDeque<(u64, u64)>>,
}

impl CostModel {
    /// An empty model.
    pub fn new() -> CostModel {
        CostModel::default()
    }

    /// Records one observed compilation: its hint and its latency.
    pub fn record(&self, hint: u64, nanos: u64) {
        let mut window = self.window.lock().expect("cost model lock");
        if window.len() == WINDOW {
            window.pop_front();
        }
        window.push_back((hint.max(1), nanos));
    }

    /// The window's median nanoseconds-per-hint-unit ratio, or `None`
    /// while the model is cold. Computing it locks and sorts the window
    /// once — callers pricing a whole batch should call this once and
    /// multiply, not [`CostModel::predict`] per request.
    pub fn ns_per_hint(&self) -> Option<f64> {
        let window = self.window.lock().expect("cost model lock");
        if window.is_empty() {
            return None;
        }
        let mut ratios: Vec<f64> = window.iter().map(|&(h, ns)| ns as f64 / h as f64).collect();
        ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
        Some(ratios[ratios.len() / 2])
    }

    /// Predicts the cost of a request with the given hint, in
    /// nanoseconds once the window has samples (hint units before).
    pub fn predict(&self, hint: u64) -> u64 {
        match self.ns_per_hint() {
            Some(ratio) => (hint as f64 * ratio) as u64,
            None => hint,
        }
    }

    /// Number of observations currently in the window.
    pub fn samples(&self) -> usize {
        self.window.lock().expect("cost model lock").len()
    }
}

/// The submission order for the given predicted costs under a policy:
/// a permutation of `0..costs.len()`.
///
/// `Cost` sorts by decreasing cost, ties broken by request order so the
/// schedule is deterministic.
pub fn submission_order(policy: SchedulePolicy, costs: &[u64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..costs.len()).collect();
    if policy == SchedulePolicy::Cost {
        order.sort_by_key(|&i| (std::cmp::Reverse(costs[i]), i));
    }
    order
}

/// Replays per-request `costs`, taken in submission order, through an
/// idealized list schedule on `workers` identical workers (each next
/// request goes to the earliest-free worker) and returns the makespan.
///
/// This is the standard trace-driven way to compare schedules: feed it
/// the *measured* latencies of a real batch in two different orders and
/// the difference is the scheduling effect alone, independent of how
/// many physical cores the measuring machine had.
pub fn simulate_makespan(costs: &[u64], workers: usize) -> u64 {
    let workers = workers.max(1);
    let mut free_at = vec![0u64; workers];
    for &cost in costs {
        let earliest = free_at.iter_mut().min().expect("at least one worker");
        *earliest += cost;
    }
    free_at.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_preserves_request_order() {
        assert_eq!(
            submission_order(SchedulePolicy::Fifo, &[1, 9, 3]),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn cost_orders_longest_first_with_stable_ties() {
        assert_eq!(
            submission_order(SchedulePolicy::Cost, &[1, 9, 3, 9]),
            vec![1, 3, 2, 0]
        );
    }

    #[test]
    fn simulated_list_schedule_matches_hand_computation() {
        // Two workers, costs 3,3,4 in order: w1={3,4}=7, w2={3}=3.
        assert_eq!(simulate_makespan(&[3, 3, 4], 2), 7);
        // LPT order 4,3,3: w1={4}=4, w2={3,3}=6.
        assert_eq!(simulate_makespan(&[4, 3, 3], 2), 6);
        assert_eq!(simulate_makespan(&[], 4), 0);
        assert_eq!(simulate_makespan(&[5, 5], 1), 10);
    }

    #[test]
    fn lpt_beats_fifo_on_a_skewed_tail_heavy_batch() {
        // Adversarial FIFO: the expensive request arrives last.
        let costs: Vec<u64> = std::iter::repeat_n(10u64, 15).chain([100]).collect();
        for workers in [2, 4, 8] {
            let fifo: Vec<u64> = submission_order(SchedulePolicy::Fifo, &costs)
                .into_iter()
                .map(|i| costs[i])
                .collect();
            let lpt: Vec<u64> = submission_order(SchedulePolicy::Cost, &costs)
                .into_iter()
                .map(|i| costs[i])
                .collect();
            let (mf, ml) = (
                simulate_makespan(&fifo, workers),
                simulate_makespan(&lpt, workers),
            );
            assert!(ml < mf, "workers={workers}: LPT {ml} !< FIFO {mf}");
        }
    }

    #[test]
    fn cost_model_predictions_scale_with_observations() {
        let model = CostModel::new();
        assert_eq!(model.predict(500), 500, "cold model falls back to the hint");
        // 100 ns per hint unit, with one outlier the median ignores.
        for _ in 0..9 {
            model.record(10, 1_000);
        }
        model.record(10, 1_000_000);
        assert_eq!(model.samples(), 10);
        let p = model.predict(50);
        assert!((4_000..=6_000).contains(&p), "predicted {p}");
    }

    #[test]
    fn cost_model_window_is_bounded() {
        let model = CostModel::new();
        for k in 0..(WINDOW as u64 + 100) {
            model.record(1, k);
        }
        assert_eq!(model.samples(), WINDOW);
    }
}
