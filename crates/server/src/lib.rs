//! The batch compilation service: a worker pool with a content-addressed
//! artifact cache in front of a (pluggable) compiler.
//!
//! The PLDI'17 pipeline is validated at every stage, which makes a single
//! compilation expensive; serving many compilation requests means
//! amortizing that cost. This crate provides the serving substrate:
//!
//! * [`CompileService`] — accepts batches of [`CompileRequest`]s and runs
//!   them on a [`pool::WorkerPool`], in parallel, with panic isolation
//!   per request;
//! * [`cache::ArtifactCache`] — a content-addressed memo table keyed by
//!   `(source hash, root, options)`: a warm hit skips the whole pipeline
//!   and returns the identical artifact;
//! * [`stats::StatsSnapshot`] — requests, hit/miss counts, and p50/p95
//!   latency per pipeline stage, for capacity planning.
//!
//! The crate is deliberately generic over the [`Compiler`]: it knows
//! nothing about Lustre. The `velus` crate instantiates it with the real
//! pipeline (`velus::service`), keeping the dependency arrow pointing
//! from the driver to the substrate so later scaling work (async,
//! multi-backend) can build on this layer without cycles.
//!
//! Scaling features (see `docs/ARCHITECTURE.md` at the repository root
//! for the full design):
//!
//! * the cache is **lock-striped** into shards selected by the digest's
//!   high bits and bounded by entry/byte caps with LRU eviction
//!   ([`cache::CacheConfig`]); eviction counters surface in the stats;
//! * batches can be submitted **longest-predicted-first** instead of
//!   FIFO ([`sched::SchedulePolicy::Cost`]): an online [`sched::CostModel`]
//!   learns nanoseconds-per-hint from the service's own stage timings
//!   and [`Compiler::cost_hint`] supplies the per-request hint.
//!
//! ```
//! use velus_server::{Compiler, CompileRequest, CompileService, ServiceConfig, StageSample};
//!
//! struct Upper;
//! impl Compiler for Upper {
//!     type Artifact = String;
//!     type Error = String;
//!     fn compile(&self, req: &CompileRequest)
//!         -> Result<(String, Vec<StageSample>), String>
//!     {
//!         Ok((req.source.to_uppercase(), Vec::new()))
//!     }
//! }
//!
//! let service = CompileService::new(Upper, ServiceConfig { workers: 2, ..Default::default() });
//! let batch = service.compile_batch(vec![CompileRequest::new("a", "x"), CompileRequest::new("b", "y")]);
//! assert_eq!(batch.ok_count(), 2);
//! let again = service.compile_batch(vec![CompileRequest::new("a", "x")]);
//! assert!(again.items[0].cache_hit);
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod pool;
pub mod sched;
pub mod service;
pub mod stats;

pub use cache::{ArtifactCache, CacheConfig, CacheCounters, CacheKey};
pub use pool::WorkerPool;
pub use sched::{CostModel, SchedulePolicy};
pub use service::{BatchReport, CompileService, RequestReport, ServiceConfig, ServiceError};
pub use stats::{StageLatency, StatsSnapshot};

/// How the artifact's I/O boundary is rendered (the Vélus instantiation
/// maps this to the volatile-I/O vs. stdio test-mode `main`). Part of the
/// cache key: different modes emit different code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IoMode {
    /// The correctness statement's view: volatile loads and stores.
    #[default]
    Volatile,
    /// The paper's scanf/printf test harness.
    Stdio,
}

/// Options that affect the produced artifact (and therefore the cache
/// key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CompileOptions {
    /// I/O rendering of the emitted code.
    pub io: IoMode,
}

/// One compilation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileRequest {
    /// A label for reporting (e.g. the file stem); not part of the cache
    /// key.
    pub name: String,
    /// The full source text.
    pub source: String,
    /// The root node to compile for; `None` selects the program's sink.
    pub root: Option<String>,
    /// Artifact options.
    pub options: CompileOptions,
}

impl CompileRequest {
    /// A request with default options and no explicit root.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> CompileRequest {
        CompileRequest {
            name: name.into(),
            source: source.into(),
            root: None,
            options: CompileOptions::default(),
        }
    }

    /// Sets the root node.
    #[must_use]
    pub fn with_root(mut self, root: impl Into<String>) -> CompileRequest {
        self.root = Some(root.into());
        self
    }

    /// Sets the artifact options.
    #[must_use]
    pub fn with_options(mut self, options: CompileOptions) -> CompileRequest {
        self.options = options;
        self
    }
}

/// The pipeline stages the service accounts for. The Vélus instantiation
/// reports one sample per stage per (uncached) compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Parsing, elaboration, normalization to N-Lustre.
    Frontend,
    /// Re-checking the elaborator's postconditions (types, clocks).
    Check,
    /// Scheduling plus the validated schedule check.
    Schedule,
    /// Translation to Obc plus its typing/Fusible checks.
    Translate,
    /// The fusion optimization plus its preservation checks.
    Fuse,
    /// Clight generation.
    Generate,
    /// Printing the C translation unit.
    Emit,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 7] = [
        Stage::Frontend,
        Stage::Check,
        Stage::Schedule,
        Stage::Translate,
        Stage::Fuse,
        Stage::Generate,
        Stage::Emit,
    ];

    /// A short stable name for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Frontend => "frontend",
            Stage::Check => "check",
            Stage::Schedule => "schedule",
            Stage::Translate => "translate",
            Stage::Fuse => "fuse",
            Stage::Generate => "generate",
            Stage::Emit => "emit",
        }
    }

    pub(crate) fn index(self) -> usize {
        Stage::ALL
            .iter()
            .position(|s| *s == self)
            .expect("stage in ALL")
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One timed stage of one compilation.
#[derive(Debug, Clone, Copy)]
pub struct StageSample {
    /// Which stage.
    pub stage: Stage,
    /// Wall-clock nanoseconds spent.
    pub nanos: u64,
}

/// The compiler the service drives. Implementations must be callable
/// from many worker threads at once.
pub trait Compiler: Send + Sync + 'static {
    /// What a successful compilation produces (cached and shared).
    type Artifact: Send + Sync + 'static;
    /// The error type of a failed compilation.
    type Error: Send + std::fmt::Display + 'static;

    /// Compiles one request, reporting per-stage timings.
    ///
    /// # Errors
    ///
    /// Any compilation failure; the service maps it to
    /// [`ServiceError::Compile`] without disturbing other requests.
    fn compile(
        &self,
        req: &CompileRequest,
    ) -> Result<(Self::Artifact, Vec<StageSample>), Self::Error>;

    /// A cheap syntactic estimate of how expensive `req` is to compile,
    /// in arbitrary but consistent units (only relative magnitudes
    /// matter). Drives cost-predicted batch scheduling
    /// ([`SchedulePolicy::Cost`]); the default is the source length.
    /// Must be far cheaper than compiling — it runs on every request
    /// of a batch before any is submitted.
    fn cost_hint(&self, req: &CompileRequest) -> u64 {
        req.source.len() as u64
    }

    /// The resident size the cache should account for an artifact, in
    /// bytes, for [`CacheConfig::max_bytes`] enforcement. The default
    /// (0) makes the byte cap count only the stored source text.
    fn artifact_bytes(artifact: &Self::Artifact) -> usize {
        let _ = artifact;
        0
    }
}
