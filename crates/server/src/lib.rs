//! The batch compilation service: a worker pool with a content-addressed
//! artifact cache in front of a (pluggable) compiler.
//!
//! The PLDI'17 pipeline is validated at every stage, which makes a single
//! compilation expensive; serving many compilation requests means
//! amortizing that cost. This crate provides the serving substrate:
//!
//! * [`CompileService`] — accepts batches of [`CompileRequest`]s and runs
//!   them on a [`pool::WorkerPool`], in parallel, with panic isolation
//!   per request;
//! * [`cache::ArtifactCache`] — a content-addressed memo table keyed by
//!   `(source hash, root, options)`: a warm hit skips the whole pipeline
//!   and returns the identical artifact;
//! * [`stats::StatsSnapshot`] — requests, hit/miss counts, and p50/p95
//!   latency per pipeline stage, for capacity planning.
//!
//! The crate is deliberately generic over the [`Compiler`]: it knows
//! nothing about Lustre. The `velus` crate instantiates it with the real
//! pipeline (`velus::service`), keeping the dependency arrow pointing
//! from the driver to the substrate so later scaling work (async,
//! multi-backend) can build on this layer without cycles.
//!
//! Scaling features (see `docs/ARCHITECTURE.md` at the repository root
//! for the full design):
//!
//! * the cache is **lock-striped** into shards selected by the digest's
//!   high bits and bounded by entry/byte caps with LRU eviction
//!   ([`cache::CacheConfig`]); eviction counters surface in the stats;
//! * batches can be submitted **longest-predicted-first** instead of
//!   FIFO ([`sched::SchedulePolicy::Cost`]): an online [`sched::CostModel`]
//!   learns nanoseconds-per-hint from the service's own stage timings
//!   and [`Compiler::cost_hint`] supplies the per-request hint.
//!
//! ```
//! use velus_server::{ArtifactKind, Compiler, CompileOutput, CompileRequest, CompileService,
//!                    ServiceConfig};
//!
//! struct Upper;
//! impl Compiler for Upper {
//!     type Artifact = String;
//!     type Error = String;
//!     fn compile(&self, req: &CompileRequest, kinds: &[ArtifactKind])
//!         -> Result<CompileOutput<String>, String>
//!     {
//!         let artifacts = kinds
//!             .iter()
//!             .map(|kind| (*kind, req.source.to_uppercase()))
//!             .collect();
//!         Ok(CompileOutput::new(artifacts, Vec::new()))
//!     }
//! }
//!
//! let service = CompileService::new(Upper, ServiceConfig { workers: 2, ..Default::default() });
//! let batch = service.compile_batch(vec![CompileRequest::new("a", "x"), CompileRequest::new("b", "y")]);
//! assert_eq!(batch.ok_count(), 2);
//! let again = service.compile_batch(vec![CompileRequest::new("a", "x")]);
//! assert!(again.items[0].cache_hit);
//! ```

#![warn(missing_docs)]

pub use velus_common::{DiagRecord, FailureReport};

pub mod admit;
pub mod cache;
pub mod cancel;
pub mod pool;
pub mod sched;
pub mod service;
pub mod stats;

pub use admit::{AdmissionConfig, RetryPolicy};
pub use cache::{ArtifactCache, CacheConfig, CacheCounters, CacheKey};
pub use cancel::{CancelReason, CancelToken};
pub use pool::{ShutdownTimeout, WorkerPool};
pub use sched::{CostModel, SchedulePolicy};
pub use service::{
    ArtifactReport, BatchReport, CompileService, DrainReport, RequestReport, ServiceConfig,
    ServiceError, Submission,
};
pub use stats::{KindStats, StageLatency, StatsSnapshot};

/// How the artifact's I/O boundary is rendered (the Vélus instantiation
/// maps this to the volatile-I/O vs. stdio test-mode `main`). Part of the
/// cache key: different modes emit different code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum IoMode {
    /// The correctness statement's view: volatile loads and stores.
    #[default]
    Volatile,
    /// The paper's scanf/printf test harness.
    Stdio,
}

/// Which back-end cost model a WCET artifact is computed under. The
/// substrate treats this as opaque cache-key data; the instantiation
/// gives it meaning (the three Fig. 12 columns in Vélus).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WcetModelKind {
    /// CompCert-like code shape.
    #[default]
    CompCert,
    /// GCC `-O1`-like code shape.
    Gcc,
    /// GCC with transitive inlining.
    GccInline,
}

impl WcetModelKind {
    /// The CLI spelling (`cc`, `gcc`, `gcci`).
    pub fn name(self) -> &'static str {
        match self {
            WcetModelKind::CompCert => "cc",
            WcetModelKind::Gcc => "gcc",
            WcetModelKind::GccInline => "gcci",
        }
    }
}

impl std::str::FromStr for WcetModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<WcetModelKind, String> {
        velus_common::parse_enum_flag(
            "WCET model",
            s,
            &[
                ("cc", WcetModelKind::CompCert),
                ("gcc", WcetModelKind::Gcc),
                ("gcci", WcetModelKind::GccInline),
            ],
        )
    }
}

/// Which intermediate representation an IR-dump artifact renders. Opaque
/// cache-key data to the substrate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrStageKind {
    /// Elaborated, unscheduled N-Lustre.
    NLustre,
    /// Scheduled SN-Lustre.
    SnLustre,
    /// Translated Obc, before fusion.
    Obc,
    /// Obc after fusion.
    ObcFused,
}

impl IrStageKind {
    /// The CLI spelling (also the `--emit` token).
    pub fn name(self) -> &'static str {
        match self {
            IrStageKind::NLustre => "nlustre",
            IrStageKind::SnLustre => "snlustre",
            IrStageKind::Obc => "obc",
            IrStageKind::ObcFused => "obc-fused",
        }
    }
}

impl std::str::FromStr for IrStageKind {
    type Err = String;

    fn from_str(s: &str) -> Result<IrStageKind, String> {
        velus_common::parse_enum_flag(
            "IR stage",
            s,
            &[
                ("nlustre", IrStageKind::NLustre),
                ("snlustre", IrStageKind::SnLustre),
                ("obc", IrStageKind::Obc),
                ("obc-fused", IrStageKind::ObcFused),
            ],
        )
    }
}

/// What a request asks the compiler to produce. Each kind is cached
/// **independently** under its own `(source, root, io, kind)` key, so a
/// WCET request never recomputes or re-caches the C artifact, and a
/// request for several kinds fills several entries from one compilation.
///
/// The substrate does not interpret kinds — they are cache-key
/// components and statistics labels; the [`Compiler`] instantiation
/// decides what each kind means.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ArtifactKind {
    /// The printed C translation unit.
    #[default]
    CCode,
    /// A worst-case-execution-time report under a back-end model.
    Wcet {
        /// The back-end cost model.
        model: WcetModelKind,
    },
    /// A comparison against the paper's baseline compilation schemes.
    BaselineDiff,
    /// A pretty-printed intermediate representation.
    IrDump {
        /// Which pipeline stage's IR.
        stage: IrStageKind,
    },
    /// A per-program validation/diagnostics report (machine-readable):
    /// which stages ran and re-validated, program shape, and the
    /// front-end warnings with their codes.
    Report,
    /// The static-analysis lint report (machine-readable): every
    /// `W01xx`/`E01xx` finding of the `velus-analysis` lint pass, with
    /// codes, severities and source positions.
    Lint,
}

impl ArtifactKind {
    /// The statistics groups, in display order. Kinds with payloads
    /// (model, stage) share one group each.
    pub const GROUPS: [&'static str; 6] =
        ["c", "wcet", "baseline-diff", "ir-dump", "report", "lint"];

    /// Index of this kind's statistics group in [`ArtifactKind::GROUPS`].
    pub fn group_index(&self) -> usize {
        match self {
            ArtifactKind::CCode => 0,
            ArtifactKind::Wcet { .. } => 1,
            ArtifactKind::BaselineDiff => 2,
            ArtifactKind::IrDump { .. } => 3,
            ArtifactKind::Report => 4,
            ArtifactKind::Lint => 5,
        }
    }

    /// A short stable tag fed into the cache digest (discriminant plus
    /// payload; distinct kinds never collide).
    pub(crate) fn key_tag(&self) -> [u8; 2] {
        match self {
            ArtifactKind::CCode => [0, 0],
            ArtifactKind::Wcet { model } => [1, *model as u8 + 1],
            ArtifactKind::BaselineDiff => [2, 0],
            ArtifactKind::IrDump { stage } => [3, *stage as u8 + 1],
            ArtifactKind::Report => [4, 0],
            ArtifactKind::Lint => [5, 0],
        }
    }
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactKind::CCode => f.write_str("c"),
            ArtifactKind::Wcet { model } => write!(f, "wcet:{}", model.name()),
            ArtifactKind::BaselineDiff => f.write_str("baseline-diff"),
            ArtifactKind::IrDump { stage } => f.write_str(stage.name()),
            ArtifactKind::Report => f.write_str("report"),
            ArtifactKind::Lint => f.write_str("lint"),
        }
    }
}

impl std::str::FromStr for ArtifactKind {
    type Err = String;

    /// Parses one `--emit` token: `c`, `wcet`, `wcet:cc|gcc|gcci`,
    /// `baseline` / `baseline-diff`, `report`, `lint`, or an IR name
    /// (`nlustre|snlustre|obc|obc-fused`). Unknown tokens yield a coded
    /// usage diagnostic with a did-you-mean suggestion.
    fn from_str(s: &str) -> Result<ArtifactKind, String> {
        if let Some(model) = s.strip_prefix("wcet:") {
            return Ok(ArtifactKind::Wcet {
                model: model.parse()?,
            });
        }
        velus_common::parse_enum_flag(
            "artifact kind",
            s,
            &[
                ("c", ArtifactKind::CCode),
                (
                    "wcet",
                    ArtifactKind::Wcet {
                        model: WcetModelKind::default(),
                    },
                ),
                ("baseline", ArtifactKind::BaselineDiff),
                ("baseline-diff", ArtifactKind::BaselineDiff),
                (
                    "nlustre",
                    ArtifactKind::IrDump {
                        stage: IrStageKind::NLustre,
                    },
                ),
                (
                    "snlustre",
                    ArtifactKind::IrDump {
                        stage: IrStageKind::SnLustre,
                    },
                ),
                (
                    "obc",
                    ArtifactKind::IrDump {
                        stage: IrStageKind::Obc,
                    },
                ),
                (
                    "obc-fused",
                    ArtifactKind::IrDump {
                        stage: IrStageKind::ObcFused,
                    },
                ),
                ("report", ArtifactKind::Report),
                ("lint", ArtifactKind::Lint),
            ],
        )
    }
}

/// Parses a comma-separated `--emit` list into a deduplicated,
/// order-preserving kind set. Empty input is an error.
///
/// # Errors
///
/// Any unknown token (see the [`ArtifactKind`] `FromStr` impl).
pub fn parse_artifact_kinds(s: &str) -> Result<Vec<ArtifactKind>, String> {
    let mut kinds: Vec<ArtifactKind> = Vec::new();
    for token in s.split(',') {
        let token = token.trim();
        if token.is_empty() {
            continue;
        }
        let kind: ArtifactKind = token.parse()?;
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }
    if kinds.is_empty() {
        return Err("empty artifact kind list".to_owned());
    }
    Ok(kinds)
}

/// Options that affect the produced artifacts (the I/O mode and each
/// artifact kind are part of the per-kind cache key; the kind *set* as a
/// whole is not — two requests that share a kind share its entry).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CompileOptions {
    /// I/O rendering of the emitted code.
    pub io: IoMode,
    /// The artifact kinds the request asks for, in report order
    /// (deduplicated; an empty set is treated as `[CCode]`).
    pub kinds: Vec<ArtifactKind>,
}

impl Default for CompileOptions {
    fn default() -> CompileOptions {
        CompileOptions {
            io: IoMode::default(),
            kinds: vec![ArtifactKind::CCode],
        }
    }
}

impl CompileOptions {
    /// Options asking for the given kinds with default I/O.
    pub fn for_kinds(kinds: Vec<ArtifactKind>) -> CompileOptions {
        CompileOptions {
            io: IoMode::default(),
            kinds,
        }
    }

    /// Sets the I/O mode.
    #[must_use]
    pub fn with_io(mut self, io: IoMode) -> CompileOptions {
        self.io = io;
        self
    }

    /// The effective kind set: deduplicated, order preserved, defaulting
    /// to `[CCode]` when empty.
    pub fn effective_kinds(&self) -> Vec<ArtifactKind> {
        let mut kinds: Vec<ArtifactKind> = Vec::with_capacity(self.kinds.len().max(1));
        for kind in &self.kinds {
            if !kinds.contains(kind) {
                kinds.push(*kind);
            }
        }
        if kinds.is_empty() {
            kinds.push(ArtifactKind::CCode);
        }
        kinds
    }
}

/// One compilation request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileRequest {
    /// A label for reporting (e.g. the file stem); not part of the cache
    /// key.
    pub name: String,
    /// The full source text.
    pub source: String,
    /// The root node to compile for; `None` selects the program's sink.
    pub root: Option<String>,
    /// Artifact options.
    pub options: CompileOptions,
    /// Per-request deadline in milliseconds, measured from admission
    /// (queue wait counts). `None` means no deadline. Expired requests
    /// fail with `ServiceError::DeadlineExceeded` (`E0802`); the
    /// pipeline aborts cooperatively at the next pass boundary. Not part
    /// of the cache key.
    pub deadline_ms: Option<u64>,
}

impl CompileRequest {
    /// A request with default options and no explicit root.
    pub fn new(name: impl Into<String>, source: impl Into<String>) -> CompileRequest {
        CompileRequest {
            name: name.into(),
            source: source.into(),
            root: None,
            options: CompileOptions::default(),
            deadline_ms: None,
        }
    }

    /// Sets the root node.
    #[must_use]
    pub fn with_root(mut self, root: impl Into<String>) -> CompileRequest {
        self.root = Some(root.into());
        self
    }

    /// Sets the artifact options.
    #[must_use]
    pub fn with_options(mut self, options: CompileOptions) -> CompileRequest {
        self.options = options;
        self
    }

    /// Sets a per-request deadline in milliseconds from admission.
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> CompileRequest {
        self.deadline_ms = Some(deadline_ms);
        self
    }
}

/// The pipeline stages the service accounts for. The Vélus instantiation
/// reports one sample per stage per (uncached) compilation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Parsing, elaboration, normalization to N-Lustre.
    Frontend,
    /// Re-checking the elaborator's postconditions (types, clocks).
    Check,
    /// Scheduling plus the validated schedule check.
    Schedule,
    /// Translation to Obc plus its typing/Fusible checks.
    Translate,
    /// The fusion optimization plus its preservation checks.
    Fuse,
    /// Clight generation.
    Generate,
    /// Printing the C translation unit.
    Emit,
    /// The static-analysis lint pass (off the main chain: runs only
    /// when a lint artifact is requested).
    Analysis,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: [Stage; 8] = [
        Stage::Frontend,
        Stage::Check,
        Stage::Schedule,
        Stage::Translate,
        Stage::Fuse,
        Stage::Generate,
        Stage::Emit,
        Stage::Analysis,
    ];

    /// A short stable name for tables and logs.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Frontend => "frontend",
            Stage::Check => "check",
            Stage::Schedule => "schedule",
            Stage::Translate => "translate",
            Stage::Fuse => "fuse",
            Stage::Generate => "generate",
            Stage::Emit => "emit",
            Stage::Analysis => "analysis",
        }
    }

    pub(crate) fn index(self) -> usize {
        Stage::ALL
            .iter()
            .position(|s| *s == self)
            .expect("stage in ALL")
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One timed stage of one compilation.
#[derive(Debug, Clone, Copy)]
pub struct StageSample {
    /// Which stage.
    pub stage: Stage,
    /// Wall-clock nanoseconds spent.
    pub nanos: u64,
}

/// Everything one successful [`Compiler::compile`] call returns: one
/// artifact per produced kind, the per-stage timing samples, and the
/// non-fatal warnings (flattened [`DiagRecord`]s — counted by the
/// service statistics and surfaced per request instead of dropped).
#[derive(Debug)]
pub struct CompileOutput<A> {
    /// One artifact per produced kind.
    pub artifacts: Vec<(ArtifactKind, A)>,
    /// Per-stage wall-clock samples.
    pub samples: Vec<StageSample>,
    /// Non-fatal warnings the compilation emitted.
    pub warnings: Vec<DiagRecord>,
}

impl<A> CompileOutput<A> {
    /// An output with no warnings.
    pub fn new(artifacts: Vec<(ArtifactKind, A)>, samples: Vec<StageSample>) -> CompileOutput<A> {
        CompileOutput {
            artifacts,
            samples,
            warnings: Vec::new(),
        }
    }

    /// Attaches warnings.
    #[must_use]
    pub fn with_warnings(mut self, warnings: Vec<DiagRecord>) -> CompileOutput<A> {
        self.warnings = warnings;
        self
    }
}

/// The compiler the service drives. Implementations must be callable
/// from many worker threads at once.
pub trait Compiler: Send + Sync + 'static {
    /// What a successful compilation produces (cached and shared).
    type Artifact: Send + Sync + 'static;
    /// The error type of a failed compilation.
    type Error: Send + std::fmt::Display + 'static;

    /// Compiles one request, producing one artifact per requested kind,
    /// and reports per-stage timings. `kinds` is non-empty and
    /// deduplicated; the service asks only for the kinds it could not
    /// serve from the cache, so implementations should compute exactly
    /// what the set needs (and no more — e.g. skip emission when
    /// [`ArtifactKind::CCode`] is absent).
    ///
    /// # Errors
    ///
    /// Any compilation failure; the service maps it to
    /// [`ServiceError::Compile`] without disturbing other requests.
    fn compile(
        &self,
        req: &CompileRequest,
        kinds: &[ArtifactKind],
    ) -> Result<CompileOutput<Self::Artifact>, Self::Error>;

    /// Like [`Compiler::compile`], but handed the request's
    /// [`CancelToken`] so long compilations can abort cooperatively at
    /// internal boundaries (pass transitions, injected delays) when the
    /// deadline expires or the service drains. The default ignores the
    /// token — existing compilers stay correct, just not early-exiting;
    /// the service detects expiry itself after the call returns.
    fn compile_cancellable(
        &self,
        req: &CompileRequest,
        kinds: &[ArtifactKind],
        cancel: &CancelToken,
    ) -> Result<CompileOutput<Self::Artifact>, Self::Error> {
        let _ = cancel;
        self.compile(req, kinds)
    }

    /// Flattens a compilation failure into the structured, coded
    /// [`FailureReport`] the service stores in
    /// [`ServiceError::Compile`] and counts per code in its statistics.
    /// The default produces one uncoded (`E0000`) record from the
    /// error's `Display`; real compilers override this with their
    /// diagnostics.
    fn failure_report(&self, req: &CompileRequest, err: &Self::Error) -> FailureReport {
        let _ = req;
        FailureReport::from_message(err.to_string())
    }

    /// A cheap syntactic estimate of how expensive `req` is to compile,
    /// in arbitrary but consistent units (only relative magnitudes
    /// matter). Drives cost-predicted batch scheduling
    /// ([`SchedulePolicy::Cost`]); the default is the source length.
    /// Must be far cheaper than compiling — it runs on every request
    /// of a batch before any is submitted.
    fn cost_hint(&self, req: &CompileRequest) -> u64 {
        req.source.len() as u64
    }

    /// The resident size the cache should account for an artifact, in
    /// bytes, for [`CacheConfig::max_bytes`] enforcement. The default
    /// (0) makes the byte cap count only the stored source text.
    fn artifact_bytes(artifact: &Self::Artifact) -> usize {
        let _ = artifact;
        0
    }
}

#[cfg(test)]
mod kind_tests {
    use super::*;

    #[test]
    fn emit_tokens_round_trip() {
        for token in [
            "c",
            "wcet:cc",
            "wcet:gcc",
            "wcet:gcci",
            "baseline-diff",
            "nlustre",
            "snlustre",
            "obc",
            "obc-fused",
            "report",
            "lint",
        ] {
            let kind: ArtifactKind = token.parse().unwrap();
            assert_eq!(kind.to_string(), token);
        }
        assert_eq!(
            "wcet".parse::<ArtifactKind>().unwrap(),
            ArtifactKind::Wcet {
                model: WcetModelKind::CompCert
            }
        );
        assert!("bogus".parse::<ArtifactKind>().is_err());
        assert!("wcet:bogus".parse::<ArtifactKind>().is_err());
        // The shared flag parser produces coded messages with
        // suggestions for near-misses.
        let err = "reprot".parse::<ArtifactKind>().unwrap_err();
        assert!(
            err.contains("[E0901]") && err.contains("did you mean `report`"),
            "{err}"
        );
    }

    #[test]
    fn kind_lists_dedupe_and_preserve_order() {
        let kinds = parse_artifact_kinds("wcet, c,wcet,obc").unwrap();
        assert_eq!(
            kinds,
            vec![
                ArtifactKind::Wcet {
                    model: WcetModelKind::CompCert
                },
                ArtifactKind::CCode,
                ArtifactKind::IrDump {
                    stage: IrStageKind::Obc
                },
            ]
        );
        assert!(parse_artifact_kinds("").is_err());
        assert!(parse_artifact_kinds("c,nope").is_err());
    }

    #[test]
    fn key_tags_are_distinct_across_kinds() {
        let kinds = [
            ArtifactKind::CCode,
            ArtifactKind::Wcet {
                model: WcetModelKind::CompCert,
            },
            ArtifactKind::Wcet {
                model: WcetModelKind::Gcc,
            },
            ArtifactKind::Wcet {
                model: WcetModelKind::GccInline,
            },
            ArtifactKind::BaselineDiff,
            ArtifactKind::IrDump {
                stage: IrStageKind::NLustre,
            },
            ArtifactKind::IrDump {
                stage: IrStageKind::SnLustre,
            },
            ArtifactKind::IrDump {
                stage: IrStageKind::Obc,
            },
            ArtifactKind::IrDump {
                stage: IrStageKind::ObcFused,
            },
            ArtifactKind::Report,
            ArtifactKind::Lint,
        ];
        for (i, a) in kinds.iter().enumerate() {
            for b in &kinds[i + 1..] {
                assert_ne!(a.key_tag(), b.key_tag(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn effective_kinds_defaults_to_c() {
        let empty = CompileOptions {
            io: IoMode::Volatile,
            kinds: Vec::new(),
        };
        assert_eq!(empty.effective_kinds(), vec![ArtifactKind::CCode]);
        let dup = CompileOptions::for_kinds(vec![ArtifactKind::CCode, ArtifactKind::CCode]);
        assert_eq!(dup.effective_kinds(), vec![ArtifactKind::CCode]);
    }
}
