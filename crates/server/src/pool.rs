//! A fixed-size worker pool with panic isolation.
//!
//! Jobs are `FnOnce` closures drained from a shared queue. A panicking
//! job is caught and counted; the worker thread survives and keeps
//! serving, so one poisoned request cannot take capacity away from the
//! rest of a batch.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of worker threads consuming a shared job queue.
pub struct WorkerPool {
    sender: Option<mpsc::Sender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    caught_panics: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one).
    pub fn new(workers: usize) -> WorkerPool {
        let workers = workers.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let caught_panics = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|k| {
                let receiver = Arc::clone(&receiver);
                let caught = Arc::clone(&caught_panics);
                thread::Builder::new()
                    .name(format!("velus-worker-{k}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = receiver.lock().expect("job queue lock");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                    caught.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            // All senders dropped: the pool is shutting down.
                            Err(mpsc::RecvError) => return,
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Some(sender),
            workers: handles,
            caught_panics,
        }
    }

    /// Enqueues a job.
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .as_ref()
            .expect("pool is live until dropped")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// How many jobs panicked and were contained (a last-resort counter:
    /// the service converts request panics to errors before they reach
    /// the pool).
    pub fn caught_panics(&self) -> u64 {
        self.caught_panics.load(Ordering::Relaxed)
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the queue, then wait for in-flight jobs to finish.
        drop(self.sender.take());
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::time::Duration;

    #[test]
    fn runs_all_jobs() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // joins
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_run_concurrently() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        let (tx2, rx2) = mpsc::channel();
        // Job A waits for job B's signal: completes only if both run at
        // the same time on distinct workers.
        pool.execute(move || {
            rx2.recv_timeout(Duration::from_secs(10))
                .expect("peer signal");
            tx.send(()).unwrap();
        });
        pool.execute(move || {
            tx2.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(10))
            .expect("two workers should overlap");
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(1);
        pool.execute(|| panic!("poisoned request"));
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::SeqCst);
        });
        drop(pool);
        assert_eq!(done.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn caught_panics_are_counted() {
        let pool = WorkerPool::new(2);
        for _ in 0..3 {
            pool.execute(|| panic!("boom"));
        }
        // Wait for completion by dropping (join), then check the count
        // through the shared handle taken before the drop.
        let caught = Arc::clone(&pool.caught_panics);
        drop(pool);
        assert_eq!(caught.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 1);
    }
}
