//! A fixed-size worker pool with panic isolation and acknowledged
//! shutdown.
//!
//! Jobs are `FnOnce` closures drained from a shared queue. A panicking
//! job is caught and counted; the worker thread survives and keeps
//! serving, so one poisoned request cannot take capacity away from the
//! rest of a batch.
//!
//! Shutdown is an explicit, *acknowledged* protocol instead of an
//! unbounded join: [`WorkerPool::shutdown`] closes the queue and waits
//! for each worker to ack its exit within a configurable timeout
//! (formerly an implicit, hard-coded wait). A worker wedged in a job
//! surfaces as a coded [`ShutdownTimeout`] error (`E0804`) rather than
//! hanging the caller forever; its thread is detached, not joined.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The default shutdown-ack timeout (the historically hard-coded 10 s,
/// now overridable via `ServiceConfig::shutdown_timeout` /
/// [`WorkerPool::with_shutdown_timeout`]).
pub const DEFAULT_SHUTDOWN_TIMEOUT: Duration = Duration::from_secs(10);

/// Workers that failed to acknowledge shutdown in time (code `E0804`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShutdownTimeout {
    /// Workers that had not acked when the timeout expired.
    pub pending: usize,
    /// The timeout that expired.
    pub timeout: Duration,
}

impl ShutdownTimeout {
    /// The stable diagnostic code (`E0804`).
    pub fn code(&self) -> &'static str {
        velus_common::codes::E0804.id
    }
}

impl std::fmt::Display for ShutdownTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "error[{}]: {} worker(s) failed to ack shutdown within {:?}",
            self.code(),
            self.pending,
            self.timeout
        )
    }
}

impl std::error::Error for ShutdownTimeout {}

/// A fixed set of worker threads consuming a shared job queue.
pub struct WorkerPool {
    /// `None` once the queue is closed (shutdown started).
    sender: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    /// Workers ack on this channel immediately before exiting.
    ack_rx: Mutex<mpsc::Receiver<()>>,
    count: usize,
    shutdown_timeout: Duration,
    caught_panics: Arc<AtomicU64>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least one) with the default
    /// shutdown timeout.
    pub fn new(workers: usize) -> WorkerPool {
        WorkerPool::with_shutdown_timeout(workers, DEFAULT_SHUTDOWN_TIMEOUT)
    }

    /// Spawns `workers` threads (at least one); [`WorkerPool::shutdown`]
    /// and the drop path wait up to `shutdown_timeout` for acks.
    pub fn with_shutdown_timeout(workers: usize, shutdown_timeout: Duration) -> WorkerPool {
        let workers = workers.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let (ack_tx, ack_rx) = mpsc::channel::<()>();
        let receiver = Arc::new(Mutex::new(receiver));
        let caught_panics = Arc::new(AtomicU64::new(0));
        let handles = (0..workers)
            .map(|k| {
                let receiver = Arc::clone(&receiver);
                let caught = Arc::clone(&caught_panics);
                let ack = ack_tx.clone();
                thread::Builder::new()
                    .name(format!("velus-worker-{k}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = receiver.lock().expect("job queue lock");
                            guard.recv()
                        };
                        match job {
                            Ok(job) => {
                                if catch_unwind(AssertUnwindSafe(job)).is_err() {
                                    caught.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                            // All senders dropped: the pool is shutting
                            // down. Ack, then exit (a dropped ack
                            // receiver just means nobody is waiting).
                            Err(mpsc::RecvError) => {
                                let _ = ack.send(());
                                return;
                            }
                        }
                    })
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool {
            sender: Mutex::new(Some(sender)),
            workers: Mutex::new(handles),
            ack_rx: Mutex::new(ack_rx),
            count: workers,
            shutdown_timeout,
            caught_panics,
        }
    }

    /// Enqueues a job.
    ///
    /// # Panics
    ///
    /// If the pool was already shut down (a service never does this:
    /// shutdown consumes it).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        self.sender
            .lock()
            .expect("pool sender lock")
            .as_ref()
            .expect("pool is live until shut down")
            .send(Box::new(job))
            .expect("workers outlive the sender");
    }

    /// Number of worker threads.
    pub fn worker_count(&self) -> usize {
        self.count
    }

    /// The configured shutdown-ack timeout.
    pub fn shutdown_timeout(&self) -> Duration {
        self.shutdown_timeout
    }

    /// Worker threads that exited prematurely (0 in a healthy pool:
    /// per-job `catch_unwind` keeps workers alive across panicking
    /// jobs). The chaos bench asserts this stays 0 under fault
    /// injection.
    pub fn dead_workers(&self) -> usize {
        self.workers
            .lock()
            .expect("pool workers lock")
            .iter()
            .filter(|h| h.is_finished())
            .count()
    }

    /// How many jobs panicked and were contained (a last-resort counter:
    /// the service converts request panics to errors before they reach
    /// the pool).
    pub fn caught_panics(&self) -> u64 {
        self.caught_panics.load(Ordering::Relaxed)
    }

    /// Closes the queue, lets queued jobs finish, and waits up to
    /// `timeout` for every worker to acknowledge its exit. Idempotent:
    /// a second call returns `Ok` immediately.
    ///
    /// On success all worker threads are joined. On timeout the
    /// unacked workers are *detached* (their handles dropped, never
    /// joined) so a wedged job cannot hang the caller — the error says
    /// so loudly instead.
    ///
    /// # Errors
    ///
    /// [`ShutdownTimeout`] (`E0804`) when a worker fails to ack in time.
    pub fn shutdown(&self, timeout: Duration) -> Result<(), ShutdownTimeout> {
        let closed = self.sender.lock().expect("pool sender lock").take();
        if closed.is_none() && self.workers.lock().expect("pool workers lock").is_empty() {
            return Ok(()); // already shut down
        }
        drop(closed); // workers see RecvError once the queue drains
        let deadline = Instant::now() + timeout;
        let ack_rx = self.ack_rx.lock().expect("pool ack lock");
        let mut handles = self.workers.lock().expect("pool workers lock");
        let mut acked = 0usize;
        while acked < handles.len() {
            let remaining = deadline.saturating_duration_since(Instant::now());
            match ack_rx.recv_timeout(remaining) {
                Ok(()) => acked += 1,
                Err(_) => {
                    let pending = handles.len() - acked;
                    // Detach every handle: the acked workers are about
                    // to exit anyway and the wedged ones must not be
                    // joined.
                    handles.clear();
                    return Err(ShutdownTimeout { pending, timeout });
                }
            }
        }
        // Every worker acked: joining is immediate.
        for handle in handles.drain(..) {
            let _ = handle.join();
        }
        Ok(())
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Close the queue and wait for acks with the configured
        // timeout. A timeout here is unreportable (drop has no return
        // channel) — but bounded, which the old unconditional join was
        // not; callers who care use `shutdown()` first and get `E0804`.
        let _ = self.shutdown(self.shutdown_timeout);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_all_jobs() {
        let pool = WorkerPool::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // acked shutdown
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn jobs_run_concurrently() {
        let pool = WorkerPool::new(2);
        let (tx, rx) = mpsc::channel();
        let (tx2, rx2) = mpsc::channel();
        // Job A waits for job B's signal: completes only if both run at
        // the same time on distinct workers.
        pool.execute(move || {
            rx2.recv_timeout(Duration::from_secs(10))
                .expect("peer signal");
            tx.send(()).unwrap();
        });
        pool.execute(move || {
            tx2.send(()).unwrap();
        });
        rx.recv_timeout(Duration::from_secs(10))
            .expect("two workers should overlap");
    }

    #[test]
    fn a_panicking_job_does_not_kill_the_pool() {
        let pool = WorkerPool::new(1);
        pool.execute(|| panic!("poisoned request"));
        let done = Arc::new(AtomicUsize::new(0));
        let d = Arc::clone(&done);
        pool.execute(move || {
            d.store(1, Ordering::SeqCst);
        });
        assert_eq!(pool.shutdown(Duration::from_secs(10)), Ok(()));
        assert_eq!(done.load(Ordering::SeqCst), 1);
        assert_eq!(pool.dead_workers(), 0, "handles joined and drained");
    }

    #[test]
    fn caught_panics_are_counted() {
        let pool = WorkerPool::new(2);
        for _ in 0..3 {
            pool.execute(|| panic!("boom"));
        }
        // Wait for completion via acked shutdown, then check the count
        // through the shared handle taken before the drop.
        let caught = Arc::clone(&pool.caught_panics);
        drop(pool);
        assert_eq!(caught.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn zero_workers_is_clamped_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.worker_count(), 1);
    }

    #[test]
    fn shutdown_acks_and_is_idempotent() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let counter = Arc::clone(&counter);
            pool.execute(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(pool.shutdown(Duration::from_secs(10)), Ok(()));
        assert_eq!(counter.load(Ordering::SeqCst), 10, "queued jobs finish");
        assert_eq!(pool.shutdown(Duration::from_secs(10)), Ok(()));
    }

    #[test]
    fn a_wedged_worker_surfaces_a_coded_timeout_not_a_hang() {
        let pool = WorkerPool::with_shutdown_timeout(1, Duration::from_millis(50));
        let (tx, rx) = mpsc::channel::<()>();
        pool.execute(move || {
            // Wedge until the test ends (the thread is detached, and
            // the sender drop unblocks it so the test binary exits
            // cleanly).
            let _ = rx.recv_timeout(Duration::from_secs(60));
        });
        let err = pool
            .shutdown(Duration::from_millis(50))
            .expect_err("wedged worker must time out");
        assert_eq!(err.pending, 1);
        assert_eq!(err.code(), "E0804");
        assert!(err.to_string().contains("E0804"), "{err}");
        drop(tx); // unwedge the detached worker
    }
}
