//! The content-addressed artifact cache.
//!
//! Keys are a 128-bit FNV-1a digest of the request's *content* — source
//! text, root selection, I/O mode, and the **artifact kind** being
//! cached. Equal content therefore maps to the same artifact regardless
//! of the request's label, and a warm hit returns the identical `Arc`
//! so emitted code is bit-for-bit the artifact produced by the cold
//! compilation. Each kind of a multi-kind request is a separate entry:
//! a WCET request neither recomputes nor re-caches the C artifact, and
//! each entry is weighed by its own kind's resident size.
//!
//! FNV-1a is fast but not collision-resistant, so every entry keeps the
//! content it was stored under and a lookup **verifies the content on
//! hit**: a digest collision degrades to a miss (and a recompile), never
//! to serving another program's artifact.
//!
//! # Sharding and eviction
//!
//! The table is striped into [`CacheConfig::shards`] lock-striped shards
//! selected by the high bits of the digest (uniform, since the digest
//! is), so concurrent workers only contend when they touch the same
//! stripe. Capacity is bounded: each entry is weighed (stored source
//! bytes plus an artifact weigher supplied by the service) and the cache
//! enforces optional total entry/byte caps with **LRU eviction** —
//! recency is a global monotone tick per entry, a per-shard `BTreeMap`
//! orders entries by tick, and eviction pops the globally oldest entry.
//! Evictions are counted and surfaced through
//! [`CacheCounters`]/`ServiceStats`. The verification-on-hit invariant
//! is per entry and unaffected by sharding: an evicted entry simply
//! recompiles (and re-verifies) on its next request.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use crate::{ArtifactKind, CompileRequest, IoMode};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new(offset: u64) -> Fnv {
        Fnv(offset)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A 128-bit content digest identifying a compilation input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// Digests a request's content (source, root, I/O mode) together
    /// with the artifact `kind` being cached. The `name` label is
    /// deliberately excluded: two files with equal content share one
    /// cache entry per kind. The kind *set* of the request is likewise
    /// excluded — each kind keys its own entry, so a later request that
    /// shares only some kinds still hits those.
    pub fn of_request(req: &CompileRequest, kind: &ArtifactKind) -> CacheKey {
        // Two independent FNV streams (different offset bases, one with a
        // domain tag) give a 128-bit key; fields are length-prefixed so
        // concatenations cannot collide.
        let mut a = Fnv::new(FNV_OFFSET);
        let mut b = Fnv::new(FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15);
        b.write(b"velus-cache-v2");
        for fnv in [&mut a, &mut b] {
            let mut field = |bytes: &[u8]| {
                fnv.write(&(bytes.len() as u64).to_le_bytes());
                fnv.write(bytes);
            };
            field(req.source.as_bytes());
            field(req.root.as_deref().unwrap_or("").as_bytes());
            let tag = kind.key_tag();
            field(&[
                req.root.is_some() as u8,
                (req.options.io as u8),
                tag[0],
                tag[1],
            ]);
        }
        CacheKey { hi: a.0, lo: b.0 }
    }

    /// A short hex rendering for logs.
    pub fn short(&self) -> String {
        format!("{:08x}", self.hi >> 32)
    }

    /// The digest folded to 64 bits — the per-request backoff RNG seed,
    /// so retry jitter is deterministic per input yet decorrelated
    /// across inputs.
    pub(crate) fn seed(&self) -> u64 {
        self.hi ^ self.lo
    }
}

/// Shape and capacity of an [`ArtifactCache`].
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Number of lock stripes (rounded up to a power of two, at least 1).
    pub shards: usize,
    /// Cap on the number of cached artifacts, across all shards.
    /// `None` means unbounded.
    pub max_entries: Option<usize>,
    /// Cap on the total cached bytes (stored source plus the weigher's
    /// estimate of the artifact), across all shards. `None` is unbounded.
    pub max_bytes: Option<usize>,
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig {
            shards: 16,
            max_entries: None,
            max_bytes: None,
        }
    }
}

/// Point-in-time occupancy and eviction counters of a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheCounters {
    /// Artifacts currently held.
    pub entries: u64,
    /// Weighed bytes currently held.
    pub bytes: u64,
    /// Entries evicted to honor a capacity cap since construction
    /// (monotone; `clear` does not count).
    pub evictions: u64,
}

/// The content an entry was stored under, kept for hit verification.
/// Only the key-relevant request fields are retained: source, root, I/O
/// mode, and the artifact kind (the request's full kind set is *not*
/// part of a per-kind entry's identity).
struct StoredContent {
    source: String,
    root: Option<String>,
    io: IoMode,
    kind: ArtifactKind,
}

impl StoredContent {
    fn of_request(req: &CompileRequest, kind: ArtifactKind) -> StoredContent {
        StoredContent {
            source: req.source.clone(),
            root: req.root.clone(),
            io: req.options.io,
            kind,
        }
    }

    fn matches(&self, req: &CompileRequest, kind: &ArtifactKind) -> bool {
        self.source == req.source
            && self.root == req.root
            && self.io == req.options.io
            && self.kind == *kind
    }

    fn bytes(&self) -> usize {
        self.source.len() + self.root.as_deref().map_or(0, str::len)
    }
}

struct Entry<A> {
    stored: StoredContent,
    artifact: Arc<A>,
    weight: usize,
    tick: u64,
}

/// One lock stripe: the key→entry map plus the recency order of its
/// entries (tick → key; ticks are globally unique, so this is a total
/// order and the `BTreeMap` front is the stripe's least recent entry).
struct ShardMap<A> {
    map: HashMap<CacheKey, Entry<A>>,
    recency: BTreeMap<u64, CacheKey>,
}

impl<A> ShardMap<A> {
    fn new() -> ShardMap<A> {
        ShardMap {
            map: HashMap::new(),
            recency: BTreeMap::new(),
        }
    }
}

/// How an artifact's resident size is estimated for the byte cap.
type Weigher<A> = Box<dyn Fn(&A) -> usize + Send + Sync>;

/// A thread-safe, lock-striped, capacity-bounded memo table from request
/// content to shared artifacts. (Hit/miss accounting lives in the
/// service's `StatsCollector`, not here — one set of counters, one
/// source of truth; the cache only counts what it alone can observe:
/// occupancy and evictions.)
pub struct ArtifactCache<A> {
    shards: Vec<Mutex<ShardMap<A>>>,
    shard_bits: u32,
    max_entries: Option<usize>,
    max_bytes: Option<usize>,
    weigher: Weigher<A>,
    /// Global recency clock; every get/insert stamps a fresh tick.
    tick: AtomicU64,
    entries: AtomicUsize,
    bytes: AtomicUsize,
    evictions: AtomicU64,
}

impl<A> Default for ArtifactCache<A> {
    fn default() -> ArtifactCache<A> {
        ArtifactCache::new()
    }
}

impl<A> ArtifactCache<A> {
    /// An empty, unbounded cache with the default shard count and a
    /// zero-weight artifact weigher.
    pub fn new() -> ArtifactCache<A> {
        ArtifactCache::with_config(CacheConfig::default(), Box::new(|_| 0))
    }

    /// An empty cache with the given shape, caps, and artifact weigher.
    pub fn with_config(config: CacheConfig, weigher: Weigher<A>) -> ArtifactCache<A> {
        let shard_count = config.shards.max(1).next_power_of_two();
        let shard_bits = shard_count.trailing_zeros();
        ArtifactCache {
            shards: (0..shard_count)
                .map(|_| Mutex::new(ShardMap::new()))
                .collect(),
            shard_bits,
            max_entries: config.max_entries,
            max_bytes: config.max_bytes,
            weigher,
            tick: AtomicU64::new(0),
            entries: AtomicUsize::new(0),
            bytes: AtomicUsize::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The stripe a key lives in: the digest's high bits (the digest is
    /// uniform, so stripes fill evenly).
    fn shard(&self, key: &CacheKey) -> &Mutex<ShardMap<A>> {
        let index = if self.shard_bits == 0 {
            0
        } else {
            (key.hi >> (64 - self.shard_bits)) as usize
        };
        &self.shards[index]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Looks up the artifact of one `kind` for a request's content and
    /// refreshes its recency. The stored content is compared on digest
    /// match, so a hash collision is a miss, never a wrong artifact.
    pub fn get(&self, key: &CacheKey, req: &CompileRequest, kind: &ArtifactKind) -> Option<Arc<A>> {
        let mut shard = self.shard(key).lock().expect("cache shard lock");
        let tick = self.next_tick();
        match shard.map.get_mut(key) {
            Some(entry) if entry.stored.matches(req, kind) => {
                let artifact = Arc::clone(&entry.artifact);
                let old = std::mem::replace(&mut entry.tick, tick);
                shard.recency.remove(&old);
                shard.recency.insert(tick, *key);
                Some(artifact)
            }
            _ => None,
        }
    }

    /// Inserts an artifact, returns the shared handle, and evicts least
    /// recently used entries until the configured caps hold again. If
    /// another worker raced the same content, the *first* insertion wins
    /// and is returned — artifacts are deterministic functions of the
    /// content, so either copy is equivalent; keeping the first
    /// maximizes sharing.
    pub fn insert(
        &self,
        key: CacheKey,
        req: &CompileRequest,
        kind: ArtifactKind,
        artifact: A,
    ) -> Arc<A> {
        let shared = {
            let mut shard = self.shard(&key).lock().expect("cache shard lock");
            match shard.map.get(&key) {
                Some(entry) if entry.stored.matches(req, &kind) => Arc::clone(&entry.artifact),
                // Digest collision with different content: keep the incumbent
                // (its requests still verify) and serve this artifact uncached.
                Some(_) => Arc::new(artifact),
                None => {
                    let stored = StoredContent::of_request(req, kind);
                    let weight = stored.bytes() + (self.weigher)(&artifact);
                    // An entry that alone exceeds the byte cap can never
                    // be retained; admitting it would purge every other
                    // (useful) entry on the way to evicting it. Serve it
                    // uncached instead and leave the cache untouched.
                    if self.max_bytes.is_some_and(|cap| weight > cap) {
                        return Arc::new(artifact);
                    }
                    let shared = Arc::new(artifact);
                    let tick = self.next_tick();
                    shard.map.insert(
                        key,
                        Entry {
                            stored,
                            artifact: Arc::clone(&shared),
                            weight,
                            tick,
                        },
                    );
                    shard.recency.insert(tick, key);
                    self.entries.fetch_add(1, Ordering::Relaxed);
                    self.bytes.fetch_add(weight, Ordering::Relaxed);
                    shared
                }
            }
        };
        self.enforce_caps();
        shared
    }

    /// Evicts LRU entries until both caps hold. Shards are locked one at
    /// a time (never two at once), so eviction cannot deadlock with
    /// concurrent gets/inserts; under concurrency the victim is the
    /// *approximately* oldest entry, exactly the oldest when quiescent.
    ///
    /// Each eviction scans every stripe for the oldest front — O(shards)
    /// lock acquisitions — but only runs when an insert pushed past a
    /// cap, i.e. at most once per *compiled* (millisecond-scale) request,
    /// never on hits. If profiling ever shows this scan, the ROADMAP
    /// names the successor (per-shard caps / CLOCK).
    fn enforce_caps(&self) {
        loop {
            let over_entries = self
                .max_entries
                .is_some_and(|cap| self.entries.load(Ordering::Relaxed) > cap);
            let over_bytes = self
                .max_bytes
                .is_some_and(|cap| self.bytes.load(Ordering::Relaxed) > cap);
            if !(over_entries || over_bytes) || !self.evict_oldest() {
                return;
            }
        }
    }

    /// Removes the entry with the globally smallest recency tick.
    /// Returns `false` when the cache is empty.
    fn evict_oldest(&self) -> bool {
        // Pass 1: find the stripe whose front is oldest.
        let mut victim: Option<(usize, u64)> = None;
        for (index, shard) in self.shards.iter().enumerate() {
            let shard = shard.lock().expect("cache shard lock");
            if let Some((&tick, _)) = shard.recency.first_key_value() {
                if victim.is_none_or(|(_, best)| tick < best) {
                    victim = Some((index, tick));
                }
            }
        }
        // Pass 2: pop that stripe's current front (it may have advanced
        // since pass 1; popping the new front is still an LRU choice).
        let Some((index, _)) = victim else {
            return false;
        };
        let mut shard = self.shards[index].lock().expect("cache shard lock");
        let Some((_, key)) = shard.recency.pop_first() else {
            return false;
        };
        let entry = shard.map.remove(&key).expect("recency and map agree");
        self.entries.fetch_sub(1, Ordering::Relaxed);
        self.bytes.fetch_sub(entry.weight, Ordering::Relaxed);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Number of distinct artifacts held.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed)
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Occupancy and eviction counters.
    pub fn counters(&self) -> CacheCounters {
        CacheCounters {
            entries: self.entries.load(Ordering::Relaxed) as u64,
            bytes: self.bytes.load(Ordering::Relaxed) as u64,
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops every entry (not counted as evictions).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("cache shard lock");
            let removed_bytes: usize = shard.map.values().map(|e| e.weight).sum();
            let removed = shard.map.len();
            shard.map.clear();
            shard.recency.clear();
            self.entries.fetch_sub(removed, Ordering::Relaxed);
            self.bytes.fetch_sub(removed_bytes, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, IoMode, IrStageKind, WcetModelKind};

    const C: ArtifactKind = ArtifactKind::CCode;

    fn req(source: &str) -> CompileRequest {
        CompileRequest::new("r", source)
    }

    fn key(r: &CompileRequest) -> CacheKey {
        CacheKey::of_request(r, &C)
    }

    fn bounded(max_entries: usize) -> ArtifactCache<String> {
        ArtifactCache::with_config(
            CacheConfig {
                max_entries: Some(max_entries),
                ..CacheConfig::default()
            },
            Box::new(String::len),
        )
    }

    #[test]
    fn key_depends_on_content_not_name() {
        let a = key(&CompileRequest::new("a", "node f() ..."));
        let b = key(&CompileRequest::new("b", "node f() ..."));
        assert_eq!(a, b);
    }

    #[test]
    fn key_distinguishes_source_root_options_and_kind() {
        let base = req("src");
        let k = key(&base);
        assert_ne!(k, key(&req("src2")));
        assert_ne!(k, key(&base.clone().with_root("main")));
        assert_ne!(
            k,
            key(&base
                .clone()
                .with_options(CompileOptions::default().with_io(IoMode::Stdio)))
        );
        // Explicit empty root differs from no root (length prefixing).
        assert_ne!(k, key(&base.clone().with_root("")));
        // Every other kind keys a distinct entry for the same content.
        for kind in [
            ArtifactKind::Wcet {
                model: WcetModelKind::CompCert,
            },
            ArtifactKind::Wcet {
                model: WcetModelKind::GccInline,
            },
            ArtifactKind::BaselineDiff,
            ArtifactKind::IrDump {
                stage: IrStageKind::ObcFused,
            },
        ] {
            assert_ne!(k, CacheKey::of_request(&base, &kind), "{kind}");
        }
    }

    #[test]
    fn kind_set_of_the_request_does_not_change_the_key() {
        // Two requests for the same content with different kind *sets*
        // share the per-kind entries of the kinds they have in common.
        let one = req("src");
        let many = req("src").with_options(CompileOptions::for_kinds(vec![
            ArtifactKind::CCode,
            ArtifactKind::BaselineDiff,
        ]));
        assert_eq!(key(&one), key(&many));
        let cache: ArtifactCache<String> = ArtifactCache::new();
        cache.insert(key(&one), &one, C, "shared".to_owned());
        assert_eq!(
            cache.get(&key(&many), &many, &C).as_deref(),
            Some(&"shared".to_owned())
        );
    }

    #[test]
    fn get_round_trips_and_verifies_content() {
        let cache: ArtifactCache<String> = ArtifactCache::new();
        let r = req("x");
        let k = key(&r);
        assert!(cache.get(&k, &r, &C).is_none());
        cache.insert(k, &r, C, "artifact".to_owned());
        assert_eq!(
            cache.get(&k, &r, &C).as_deref(),
            Some(&"artifact".to_owned())
        );
        assert_eq!(cache.len(), 1);
        // A *forged* lookup with the right digest but different content
        // is a miss, not a wrong artifact.
        let other = req("y");
        assert!(cache.get(&k, &other, &C).is_none());
        // So is a forged lookup for a different kind.
        assert!(cache.get(&k, &r, &ArtifactKind::BaselineDiff).is_none());
    }

    #[test]
    fn racing_insert_keeps_the_first_artifact() {
        let cache: ArtifactCache<String> = ArtifactCache::new();
        let r = req("x");
        let k = key(&r);
        let first = cache.insert(k, &r, C, "one".to_owned());
        let second = cache.insert(k, &r, C, "two".to_owned());
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*second, "one");
    }

    #[test]
    fn entry_cap_evicts_the_least_recently_used() {
        let cache = bounded(2);
        let (ra, rb, rc) = (req("aa"), req("bb"), req("cc"));
        let (ka, kb, kc) = (key(&ra), key(&rb), key(&rc));
        cache.insert(ka, &ra, C, "A".into());
        cache.insert(kb, &rb, C, "B".into());
        // Touch A so B becomes the LRU, then overflow with C.
        assert!(cache.get(&ka, &ra, &C).is_some());
        cache.insert(kc, &rc, C, "C".into());
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().evictions, 1);
        assert!(
            cache.get(&kb, &rb, &C).is_none(),
            "the LRU entry was evicted"
        );
        assert!(cache.get(&ka, &ra, &C).is_some());
        assert!(cache.get(&kc, &rc, &C).is_some());
    }

    #[test]
    fn byte_cap_counts_source_and_artifact_weight() {
        let cache: ArtifactCache<String> = ArtifactCache::with_config(
            CacheConfig {
                max_bytes: Some(16),
                ..CacheConfig::default()
            },
            Box::new(String::len),
        );
        let ra = req("aaaa"); // 4 source bytes + 4 artifact bytes
        cache.insert(key(&ra), &ra, C, "AAAA".into());
        assert_eq!(cache.counters().bytes, 8);
        let rb = req("bbbb");
        cache.insert(key(&rb), &rb, C, "BBBB".into());
        assert_eq!((cache.len(), cache.counters().bytes), (2, 16));
        // A third entry pushes past 16 weighed bytes: the oldest goes.
        let rc = req("cccc");
        cache.insert(key(&rc), &rc, C, "CCCC".into());
        assert!(cache.counters().bytes <= 16);
        assert_eq!(cache.counters().evictions, 1);
        assert!(cache.get(&key(&ra), &ra, &C).is_none());
    }

    #[test]
    fn an_oversized_entry_is_served_uncached_without_purging_others() {
        let cache: ArtifactCache<String> = ArtifactCache::with_config(
            CacheConfig {
                max_bytes: Some(10),
                ..CacheConfig::default()
            },
            Box::new(String::len),
        );
        // A resident entry that fits (2 source + 1 artifact = 3 bytes).
        let small = req("ok");
        cache.insert(key(&small), &small, C, "K".into());
        assert_eq!(cache.len(), 1);
        // An entry that could never fit is served but not admitted — and
        // the resident entry survives (no purge on the way to nothing).
        let r = req("way too large to ever fit");
        let shared = cache.insert(key(&r), &r, C, "artifact".into());
        assert_eq!(*shared, "artifact");
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.counters().evictions, 0);
        assert!(cache.get(&key(&small), &small, &C).is_some());
    }

    #[test]
    fn clear_resets_occupancy_but_not_eviction_counters() {
        let cache = bounded(1);
        for s in ["p", "q", "r"] {
            let r = req(s);
            cache.insert(key(&r), &r, C, s.to_uppercase());
        }
        let evicted = cache.counters().evictions;
        assert_eq!(evicted, 2);
        cache.clear();
        let counters = cache.counters();
        assert_eq!((counters.entries, counters.bytes), (0, 0));
        assert_eq!(counters.evictions, evicted);
    }

    #[test]
    fn single_shard_configuration_still_works() {
        let cache: ArtifactCache<String> = ArtifactCache::with_config(
            CacheConfig {
                shards: 1,
                max_entries: Some(8),
                max_bytes: None,
            },
            Box::new(|_| 0),
        );
        for k in 0..32 {
            let r = req(&format!("src{k}"));
            cache.insert(key(&r), &r, C, format!("A{k}"));
        }
        assert_eq!(cache.len(), 8);
        assert_eq!(cache.counters().evictions, 24);
        // The 8 most recent survive.
        for k in 24..32 {
            let r = req(&format!("src{k}"));
            assert!(cache.get(&key(&r), &r, &C).is_some(), "{k}");
        }
    }
}
