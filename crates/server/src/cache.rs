//! The content-addressed artifact cache.
//!
//! Keys are a 128-bit FNV-1a digest of the request's *content* — source
//! text, root selection, and artifact options. Equal content therefore
//! maps to the same artifact regardless of the request's label, and a
//! warm hit returns the identical `Arc` so emitted code is bit-for-bit
//! the artifact produced by the cold compilation.
//!
//! FNV-1a is fast but not collision-resistant, so every entry keeps the
//! content it was stored under and a lookup **verifies the content on
//! hit**: a digest collision degrades to a miss (and a recompile), never
//! to serving another program's artifact.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::{CompileOptions, CompileRequest};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[derive(Clone, Copy)]
struct Fnv(u64);

impl Fnv {
    fn new(offset: u64) -> Fnv {
        Fnv(offset)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
}

/// A 128-bit content digest identifying a compilation input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheKey {
    hi: u64,
    lo: u64,
}

impl CacheKey {
    /// Digests a request's content (source, root, options). The `name`
    /// label is deliberately excluded: two files with equal content share
    /// one cache entry.
    pub fn of_request(req: &CompileRequest) -> CacheKey {
        // Two independent FNV streams (different offset bases, one with a
        // domain tag) give a 128-bit key; fields are length-prefixed so
        // concatenations cannot collide.
        let mut a = Fnv::new(FNV_OFFSET);
        let mut b = Fnv::new(FNV_OFFSET ^ 0x9e37_79b9_7f4a_7c15);
        b.write(b"velus-cache-v1");
        for fnv in [&mut a, &mut b] {
            let mut field = |bytes: &[u8]| {
                fnv.write(&(bytes.len() as u64).to_le_bytes());
                fnv.write(bytes);
            };
            field(req.source.as_bytes());
            field(req.root.as_deref().unwrap_or("").as_bytes());
            field(&[req.root.is_some() as u8, (req.options.io as u8)]);
        }
        CacheKey { hi: a.0, lo: b.0 }
    }

    /// A short hex rendering for logs.
    pub fn short(&self) -> String {
        format!("{:08x}", self.hi >> 32)
    }
}

/// The content an entry was stored under, kept for hit verification.
struct StoredContent {
    source: String,
    root: Option<String>,
    options: CompileOptions,
}

impl StoredContent {
    fn of_request(req: &CompileRequest) -> StoredContent {
        StoredContent {
            source: req.source.clone(),
            root: req.root.clone(),
            options: req.options,
        }
    }

    fn matches(&self, req: &CompileRequest) -> bool {
        self.source == req.source && self.root == req.root && self.options == req.options
    }
}

/// A thread-safe memo table from request content to shared artifacts.
/// (Hit/miss accounting lives in the service's `StatsCollector`, not
/// here — one set of counters, one source of truth.)
pub struct ArtifactCache<A> {
    map: Mutex<HashMap<CacheKey, (StoredContent, Arc<A>)>>,
}

impl<A> Default for ArtifactCache<A> {
    fn default() -> ArtifactCache<A> {
        ArtifactCache::new()
    }
}

impl<A> ArtifactCache<A> {
    /// An empty cache.
    pub fn new() -> ArtifactCache<A> {
        ArtifactCache {
            map: Mutex::new(HashMap::new()),
        }
    }

    /// Looks up the artifact for a request's content. The stored content
    /// is compared on digest match, so a hash collision is a miss, never
    /// a wrong artifact.
    pub fn get(&self, key: &CacheKey, req: &CompileRequest) -> Option<Arc<A>> {
        let map = self.map.lock().expect("cache lock");
        match map.get(key) {
            Some((stored, artifact)) if stored.matches(req) => Some(Arc::clone(artifact)),
            _ => None,
        }
    }

    /// Inserts an artifact and returns the shared handle. If another
    /// worker raced the same content, the *first* insertion wins and is
    /// returned — artifacts are deterministic functions of the content,
    /// so either copy is equivalent; keeping the first maximizes sharing.
    pub fn insert(&self, key: CacheKey, req: &CompileRequest, artifact: A) -> Arc<A> {
        let mut map = self.map.lock().expect("cache lock");
        match map.get(&key) {
            Some((stored, shared)) if stored.matches(req) => Arc::clone(shared),
            // Digest collision with different content: keep the incumbent
            // (its requests still verify) and serve this artifact uncached.
            Some(_) => Arc::new(artifact),
            None => {
                let shared = Arc::new(artifact);
                map.insert(key, (StoredContent::of_request(req), Arc::clone(&shared)));
                shared
            }
        }
    }

    /// Number of distinct artifacts held.
    pub fn len(&self) -> usize {
        self.map.lock().expect("cache lock").len()
    }

    /// Whether the cache holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.map.lock().expect("cache lock").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IoMode;

    fn req(source: &str) -> CompileRequest {
        CompileRequest::new("r", source)
    }

    #[test]
    fn key_depends_on_content_not_name() {
        let a = CacheKey::of_request(&CompileRequest::new("a", "node f() ..."));
        let b = CacheKey::of_request(&CompileRequest::new("b", "node f() ..."));
        assert_eq!(a, b);
    }

    #[test]
    fn key_distinguishes_source_root_and_options() {
        let base = req("src");
        let k = CacheKey::of_request(&base);
        assert_ne!(k, CacheKey::of_request(&req("src2")));
        assert_ne!(k, CacheKey::of_request(&base.clone().with_root("main")));
        assert_ne!(
            k,
            CacheKey::of_request(
                &base
                    .clone()
                    .with_options(CompileOptions { io: IoMode::Stdio })
            )
        );
        // Explicit empty root differs from no root (length prefixing).
        assert_ne!(k, CacheKey::of_request(&base.clone().with_root("")));
    }

    #[test]
    fn get_round_trips_and_verifies_content() {
        let cache: ArtifactCache<String> = ArtifactCache::new();
        let r = req("x");
        let k = CacheKey::of_request(&r);
        assert!(cache.get(&k, &r).is_none());
        cache.insert(k, &r, "artifact".to_owned());
        assert_eq!(cache.get(&k, &r).as_deref(), Some(&"artifact".to_owned()));
        assert_eq!(cache.len(), 1);
        // A *forged* lookup with the right digest but different content
        // is a miss, not a wrong artifact.
        let other = req("y");
        assert!(cache.get(&k, &other).is_none());
    }

    #[test]
    fn racing_insert_keeps_the_first_artifact() {
        let cache: ArtifactCache<String> = ArtifactCache::new();
        let r = req("x");
        let k = CacheKey::of_request(&r);
        let first = cache.insert(k, &r, "one".to_owned());
        let second = cache.insert(k, &r, "two".to_owned());
        assert!(Arc::ptr_eq(&first, &second));
        assert_eq!(*second, "one");
    }
}
