//! Offline stand-in for the parts of `rand` 0.8 used by this workspace.
//!
//! Implements `StdRng` as xoshiro256++ seeded through SplitMix64, and the
//! `Rng`, `SeedableRng`, and `SliceRandom` traits with the methods the
//! workspace calls: `gen`, `gen_bool`, `gen_ratio`, `gen_range`, `choose`,
//! `shuffle`, `fill`. Deterministic for a given seed, like the real
//! `StdRng` — but the streams differ from the real crate's, so seeds do
//! not produce the same values as upstream `rand`.

pub mod rngs;

pub use rngs::StdRng;

/// The raw entropy source: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        R::next_u64(self)
    }
}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Samples one value from the generator's raw bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for f64 {
    /// Uniform in `[0, 1)`, using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)`, using the top 24 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Integer types `gen_range` can sample over.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`; `lo < hi` must hold.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    /// The successor, saturating (used for inclusive ranges).
    fn successor(self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t) -> $t {
                debug_assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128;
                // Modulo bias is ~2^-64 for the spans used here.
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
            fn successor(self) -> $t {
                self.saturating_add(1)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges accepted by `Rng::gen_range`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_half_open(rng, lo, hi.successor())
    }
}

/// The user-facing sampling interface (blanket-implemented over
/// [`RngCore`], as in the real crate).
pub trait Rng: RngCore {
    /// Samples a value of any [`Standard`] type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Returns `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        u32::sample_half_open(self, 0, denominator) < numerator
    }

    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Fills an integer slice with random values.
    fn fill<T: Standard>(&mut self, dest: &mut [T]) {
        for x in dest {
            *x = T::sample(self);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random operations on slices.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

    /// Fisher–Yates shuffle in place.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[usize::sample_half_open(rng, 0, self.len())])
        }
    }

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, usize::sample_half_open(rng, 0, i + 1));
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&v));
            let w: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&w));
        }
    }

    #[test]
    fn gen_ratio_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_ratio(1, 4)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn choose_covers_the_slice() {
        let mut rng = StdRng::seed_from_u64(3);
        let xs = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*xs.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn bool_sampling_is_balanced() {
        let mut rng = StdRng::seed_from_u64(9);
        let trues = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4500..5500).contains(&trues), "{trues}");
    }
}
