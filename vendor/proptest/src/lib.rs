//! Offline stand-in for the parts of `proptest` used by this workspace.
//!
//! Provides the `proptest!` / `prop_assert!` / `prop_assert_eq!` /
//! `prop_oneof!` macros, the [`strategy::Strategy`] trait with the
//! combinators the workspace calls (`prop_map`, `prop_filter`, `boxed`),
//! the standard strategies (`any`, `Just`, `sample::select`,
//! `collection::vec`, `bool::ANY`), and a [`test_runner::TestRunner`]
//! with a configurable case budget.
//!
//! **No shrinking**: a failing case panics immediately with the failure
//! message. Deterministic per test (fixed RNG seed), so failures
//! reproduce across runs.

pub mod strategy;
pub mod test_runner;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// `prop::…` — the namespace conventionally used through
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};

    pub mod sample {
        pub use crate::strategy::select;
    }

    pub mod collection {
        pub use crate::strategy::vec;
    }

    pub mod bool {
        pub use crate::strategy::BoolAny;

        /// A uniformly random boolean.
        pub const ANY: BoolAny = BoolAny;
    }

    pub mod num {
        // Reserved for parity with the real crate's module tree.
    }
}

/// An arbitrary value of a primitive type: `any::<u64>()`.
pub fn any<T: Arbitrary>() -> strategy::Any<T> {
    strategy::Any(std::marker::PhantomData)
}

/// Primitive types `any::<T>()` can generate.
pub trait Arbitrary: Clone + std::fmt::Debug + 'static {
    /// Samples one value from 64 raw bits (plus more draws if needed).
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f32 {
    /// Mostly finite values with occasional special ones, so properties
    /// see NaN and infinities as the real crate's `any::<f32>()` does.
    fn arbitrary(rng: &mut test_runner::TestRng) -> f32 {
        match rng.next_u64() % 8 {
            0 => f32::from_bits(rng.next_u64() as u32),
            1 => 0.0,
            _ => {
                let magnitude = (rng.next_u64() >> 40) as f32 / 256.0;
                if rng.next_u64() & 1 == 0 {
                    magnitude
                } else {
                    -magnitude
                }
            }
        }
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> f64 {
        match rng.next_u64() % 8 {
            0 => f64::from_bits(rng.next_u64()),
            1 => 0.0,
            _ => {
                let magnitude = (rng.next_u64() >> 11) as f64 / 65536.0;
                if rng.next_u64() & 1 == 0 {
                    magnitude
                } else {
                    -magnitude
                }
            }
        }
    }
}

pub mod prelude {
    //! The usual glob-import surface.
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{
        Config as ProptestConfig, TestCaseError, TestCaseResult, TestRunner,
    };
    pub use crate::{any, prop, Arbitrary};
    // Macros exported at the crate root re-exported by name, as the real
    // prelude does.
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body, failing the test case
/// (not panicking) so the runner can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// `prop_assert!(a == b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a == *b,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
            a,
            b,
            format!($($fmt)*)
        );
    }};
}

/// `prop_assert!(a != b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            *a != *b,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            a
        );
    }};
}

/// Chooses uniformly among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests:
///
/// ```text
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(x in any::<u64>(), y in 0..10i32) { … }
/// }
/// ```
///
/// Each test body runs `cases` times with freshly generated inputs; a
/// `prop_assert*!` failure or `Err(TestCaseError)` (via `?`) panics with
/// the failing values rendered.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_one! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_one! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_one {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let cases = config.cases.max(1);
            let mut runner = $crate::test_runner::TestRunner::new(config);
            for case in 0..cases {
                let mut rendered = ::std::string::String::new();
                let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $(
                            let tree = $crate::strategy::Strategy::new_tree(&$strategy, &mut runner)
                                .map_err($crate::test_runner::TestCaseError::reject)?;
                            let $arg = tree.current();
                            rendered.push_str(&format!(
                                "  {} = {:?}\n",
                                stringify!($arg),
                                tree.current()
                            ));
                        )+
                        $body
                        #[allow(unreachable_code)]
                        ::core::result::Result::Ok(())
                    })();
                match outcome {
                    ::core::result::Result::Ok(()) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject(r)) => {
                        panic!(
                            "proptest: too many rejected inputs in case {case}: {r}\ninputs:\n{rendered}"
                        );
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest: property `{}` failed at case {case}/{cases}:\n{msg}\ninputs:\n{rendered}",
                            stringify!($name)
                        );
                    }
                }
            }
        }
        $crate::__proptest_one! { ($config) $($rest)* }
    };
}
