//! Strategies: composable random-value generators.

use crate::test_runner::{Reason, TestRunner};
use crate::Arbitrary;

/// A generated value. The real crate's trees support shrinking; this
/// stand-in only carries the current value.
#[derive(Debug, Clone)]
pub struct ValueTree<T> {
    value: T,
}

impl<T: Clone> ValueTree<T> {
    /// The generated value.
    pub fn current(&self) -> T {
        self.value.clone()
    }
}

/// A composable generator of values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: Clone + std::fmt::Debug + 'static;

    /// Generates one value using the runner's RNG.
    ///
    /// # Errors
    ///
    /// A [`Reason`] when generation gives up (e.g. a filter rejects too
    /// many candidates).
    fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<Self::Value>, Reason>;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + std::fmt::Debug + 'static,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred` (up to a retry budget).
    fn prop_filter<F>(self, whence: impl Into<Reason>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe core used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<T>, Reason>;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<S::Value>, Reason> {
        self.new_tree(runner)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T: Clone + std::fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<T>, Reason> {
        self.0.dyn_new_tree(runner)
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + std::fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn new_tree(&self, _runner: &mut TestRunner) -> Result<ValueTree<T>, Reason> {
        Ok(ValueTree {
            value: self.0.clone(),
        })
    }
}

/// See [`crate::any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(pub(crate) std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<T>, Reason> {
        Ok(ValueTree {
            value: T::arbitrary(runner.rng()),
        })
    }
}

/// A uniformly random boolean (`prop::bool::ANY`).
#[derive(Debug, Clone, Copy)]
pub struct BoolAny;

impl Strategy for BoolAny {
    type Value = bool;

    fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<bool>, Reason> {
        Ok(ValueTree {
            value: runner.rng().next_u64() & 1 == 1,
        })
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + std::fmt::Debug + 'static,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<U>, Reason> {
        let inner = self.inner.new_tree(runner)?;
        Ok(ValueTree {
            value: (self.f)(inner.current()),
        })
    }
}

/// `prop_filter` combinator.
pub struct Filter<S, F> {
    inner: S,
    whence: Reason,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<S::Value>, Reason> {
        for _ in 0..256 {
            let tree = self.inner.new_tree(runner)?;
            if (self.pred)(&tree.value) {
                return Ok(tree);
            }
        }
        Err(Reason::from(format!(
            "filter rejected 256 candidates: {}",
            self.whence
        )))
    }
}

/// Uniform choice among several strategies (`prop_oneof!`).
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T: Clone + std::fmt::Debug + 'static> Union<T> {
    /// Builds a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union(options)
    }
}

impl<T: Clone + std::fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<T>, Reason> {
        let k = (runner.rng().next_u64() % self.0.len() as u64) as usize;
        self.0[k].new_tree(runner)
    }
}

/// Uniform choice from a vector of values (`prop::sample::select`).
pub fn select<T: Clone + std::fmt::Debug + 'static>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select needs at least one option");
    Select(options)
}

/// See [`select`].
#[derive(Debug, Clone)]
pub struct Select<T>(Vec<T>);

impl<T: Clone + std::fmt::Debug + 'static> Strategy for Select<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<T>, Reason> {
        let k = (runner.rng().next_u64() % self.0.len() as u64) as usize;
        Ok(ValueTree {
            value: self.0[k].clone(),
        })
    }
}

/// A vector of values from `element`, with a length drawn from `size`
/// (`prop::collection::vec`).
pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "collection::vec: empty size range");
    VecStrategy { element, size }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: std::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<Vec<S::Value>>, Reason> {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + (runner.rng().next_u64() % span) as usize;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.new_tree(runner)?.current());
        }
        Ok(ValueTree { value: out })
    }
}

/// Ranges are strategies too: `0..10i32`, `0..=9u8`.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<$t>, Reason> {
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                assert!(span > 0, "range strategy: empty range");
                let off = (runner.rng().next_u64() as u128) % span;
                Ok(ValueTree { value: (self.start as i128 + off as i128) as $t })
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_tree(&self, runner: &mut TestRunner) -> Result<ValueTree<$t>, Reason> {
                let (lo, hi) = (*self.start(), *self.end());
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let off = (runner.rng().next_u64() as u128) % span;
                Ok(ValueTree { value: (lo as i128 + off as i128) as $t })
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
