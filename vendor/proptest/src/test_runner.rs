//! The test runner: configuration, RNG, and failure types.

/// Why generation gave up (filter exhaustion and the like).
#[derive(Debug, Clone)]
pub struct Reason(String);

impl From<&str> for Reason {
    fn from(s: &str) -> Reason {
        Reason(s.to_owned())
    }
}

impl From<String> for Reason {
    fn from(s: String) -> Reason {
        Reason(s)
    }
}

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// How a test case failed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The input was rejected (does not count as a failure upstream; this
    /// stand-in reports it if it happens persistently).
    Reject(String),
    /// The property does not hold.
    Fail(String),
}

impl TestCaseError {
    /// A property failure with a message.
    pub fn fail(reason: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(reason.into())
    }

    /// An input rejection with a message.
    pub fn reject(reason: impl std::fmt::Display) -> TestCaseError {
        TestCaseError::Reject(reason.to_string())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(r) => write!(f, "input rejected: {r}"),
            TestCaseError::Fail(r) => write!(f, "property failed: {r}"),
        }
    }
}

/// The result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The RNG algorithm knob (accepted for compatibility; this stand-in
/// always uses its own xoshiro-style generator).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum RngAlgorithm {
    /// The real crate's default.
    #[default]
    XorShift,
    /// ChaCha20 in the real crate.
    ChaCha,
}

/// Runner configuration. Also exported as `ProptestConfig` from the
/// prelude, as the real crate does.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Accepted for compatibility; unused.
    pub rng_algorithm: RngAlgorithm,
}

impl Default for Config {
    fn default() -> Config {
        Config {
            cases: 64,
            rng_algorithm: RngAlgorithm::default(),
        }
    }
}

/// A deterministic 64-bit generator (xoshiro256++, SplitMix64-seeded).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    fn seed_from_u64(seed: u64) -> TestRng {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Drives strategies. Construct with [`TestRunner::new`] or
/// [`TestRunner::deterministic`]; both are deterministic here, matching
/// how this workspace uses the API.
#[derive(Debug, Clone)]
pub struct TestRunner {
    config: Config,
    rng: TestRng,
}

impl TestRunner {
    /// A runner with the given configuration and a fixed seed.
    pub fn new(config: Config) -> TestRunner {
        TestRunner {
            config,
            rng: TestRng::seed_from_u64(0x7073_7470_726f_7031),
        }
    }

    /// A runner with default configuration and a fixed, documented seed.
    pub fn deterministic() -> TestRunner {
        TestRunner::new(Config::default())
    }

    /// The configuration in force.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The case-generation RNG.
    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }
}

impl Default for TestRunner {
    fn default() -> TestRunner {
        TestRunner::deterministic()
    }
}
