//! Offline stand-in for the parts of `criterion` used by this workspace.
//!
//! Provides `criterion_group!` / `criterion_main!`, benchmark groups, and
//! a [`Bencher`] whose `iter` measures mean wall-clock time over a small
//! number of timed samples (after a warm-up pass) and prints one line per
//! benchmark. No statistics beyond the mean, no HTML reports.

use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`], as the real crate provides.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_owned(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.sample_size, &mut f);
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'c> {
    name: String,
    sample_size: usize,
    _parent: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id.0),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group (prints nothing extra in this stand-in).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        total: Duration::ZERO,
        iters: 0,
        sample_size,
    };
    f(&mut b);
    if b.iters > 0 {
        let mean = b.total / u32::try_from(b.iters).unwrap_or(u32::MAX);
        println!("{label:<40} {mean:>12.2?}/iter ({} iters)", b.iters);
    }
}

/// A benchmark identifier within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id naming a benchmark by its parameter value.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }

    /// An id with a function name and a parameter value.
    pub fn new<P: std::fmt::Display>(function: &str, parameter: P) -> BenchmarkId {
        BenchmarkId(format!("{function}/{parameter}"))
    }
}

/// Passed to the closure given to `bench_function`.
pub struct Bencher {
    total: Duration,
    iters: u64,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`: one warm-up call, then `sample_size` timed calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
        }
    }
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
