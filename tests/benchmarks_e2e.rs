//! End-to-end checks over the whole Fig. 12 benchmark suite: every
//! program compiles, validates on deterministic inputs, and emits C.

use velus::validate::default_inputs;

const BENCHMARKS: &[&str] = &[
    "avgvelocity",
    "count",
    "tracker",
    "pip_ex",
    "mp_longitudinal",
    "cruise",
    "risingedgeretrigger",
    "chrono",
    "watchdog3",
    "functionalchain",
    "landing_gear",
    "minus",
    "prodcell",
    "ums_verif",
];

fn load(name: &str) -> String {
    std::fs::read_to_string(velus_repro::benchmark_path(name)).unwrap()
}

#[test]
fn every_benchmark_compiles_and_validates() {
    for name in BENCHMARKS {
        let source = load(name);
        let compiled =
            velus::compile(&source, Some(name)).unwrap_or_else(|e| panic!("{name}: {e}"));
        let n = 20;
        let inputs = default_inputs(&compiled, n);
        velus::validate(&compiled, &inputs, n).unwrap_or_else(|e| panic!("{name}: {e}"));
    }
}

#[test]
fn every_benchmark_emits_clean_c() {
    for name in BENCHMARKS {
        let source = load(name);
        let compiled = velus::compile(&source, Some(name)).unwrap();
        for io in [velus::TestIo::Volatile, velus::TestIo::Stdio] {
            let c = velus::emit_c(&compiled, io);
            assert!(!c.contains('$'), "{name}: unsanitized identifier\n{c}");
            assert!(c.contains("int main(void)"), "{name}");
            // Balanced braces is a cheap well-formedness smoke test.
            let opens = c.matches('{').count();
            let closes = c.matches('}').count();
            assert_eq!(opens, closes, "{name}: unbalanced braces");
        }
    }
}

#[test]
fn suite_size_is_comparable_to_the_papers() {
    // The paper: "about 160 nodes and 960 equations" over 14 programs.
    // Our reproduction is smaller per program but must stay non-trivial.
    let mut nodes = 0usize;
    let mut eqs = 0usize;
    for name in BENCHMARKS {
        let compiled = velus::compile(&load(name), Some(name)).unwrap();
        nodes += compiled.snlustre.nodes.len();
        eqs += compiled.snlustre.equation_count();
    }
    assert!(nodes >= 70, "suite has only {nodes} nodes");
    assert!(eqs >= 350, "suite has only {eqs} equations");
}

#[test]
fn benchmark_warnings_are_empty() {
    for name in BENCHMARKS {
        let compiled = velus::compile(&load(name), Some(name)).unwrap();
        assert!(
            compiled.warnings.is_empty(),
            "{name}: {}",
            compiled.warnings
        );
    }
}
