//! Multi-artifact serving through the shared per-kind cache: WCET-only
//! requests never materialize C, mixed requests run the pipeline's
//! shared prefix exactly once, and every kind round-trips warm.

use std::sync::Arc;

use velus::service::{service, ServiceConfig};
use velus::{ArtifactKind, CompileOptions, CompileRequest, IrStageKind, Stage, WcetModelKind};

const WCET_CC: ArtifactKind = ArtifactKind::Wcet {
    model: WcetModelKind::CompCert,
};

fn benchmark_request(name: &str, kinds: Vec<ArtifactKind>) -> CompileRequest {
    let source = std::fs::read_to_string(velus_repro::benchmark_path(name)).unwrap();
    CompileRequest::new(name, source)
        .with_root(name)
        .with_options(CompileOptions::for_kinds(kinds))
}

fn stage_count(stats: &velus::service::StatsSnapshot, stage: Stage) -> u64 {
    stats
        .stages
        .iter()
        .find(|s| s.stage == stage)
        .map_or(0, |s| s.count)
}

#[test]
fn wcet_only_entries_round_trip_without_materializing_c() {
    let svc = service(ServiceConfig {
        workers: 2,
        caching: true,
        ..Default::default()
    });
    let req = benchmark_request("tracker", vec![WCET_CC]);
    let cold = svc.compile_one(req.clone());
    let cold_artifact = Arc::clone(cold.artifact(&WCET_CC).expect("wcet artifact"));
    // The artifact holds a report, never the C text…
    assert!(cold_artifact.c_code().is_none());
    assert!(cold_artifact.render().contains("cycles (cc)"));
    // …and the emission stage never ran for it.
    let stats = svc.stats();
    assert_eq!(stage_count(&stats, Stage::Emit), 0);
    assert_eq!(stage_count(&stats, Stage::Generate), 1);

    // The warm request is a pure cache round-trip: the identical Arc.
    let warm = svc.compile_one(req);
    assert!(warm.cache_hit);
    assert!(Arc::ptr_eq(
        warm.artifact(&WCET_CC).unwrap(),
        &cold_artifact
    ));
    // Still no emission anywhere in the service's life.
    assert_eq!(stage_count(&svc.stats(), Stage::Emit), 0);
    // Exactly one cache entry exists — no hidden C entry was created.
    assert_eq!(svc.cache_len(), 1);
}

#[test]
fn mixed_batches_compile_the_front_half_exactly_once_per_source() {
    let svc = service(ServiceConfig {
        workers: 2,
        caching: true,
        ..Default::default()
    });
    let names = ["tracker", "count", "cruise", "watchdog3"];
    let reqs: Vec<CompileRequest> = names
        .iter()
        .map(|n| benchmark_request(n, vec![ArtifactKind::CCode, WCET_CC]))
        .collect();

    let cold = svc.compile_batch(reqs.clone());
    assert_eq!(cold.ok_count(), names.len());
    let stats = svc.stats();
    // 8 kind-requests, but each source's front half ran exactly once.
    assert_eq!(stage_count(&stats, Stage::Frontend), names.len() as u64);
    assert_eq!(stage_count(&stats, Stage::Emit), names.len() as u64);
    let kind_row = |stats: &velus::service::StatsSnapshot, name: &str| {
        stats
            .kinds
            .iter()
            .find(|k| k.kind == name)
            .copied()
            .unwrap()
    };
    assert_eq!(kind_row(&stats, "c").requests, names.len() as u64);
    assert_eq!(kind_row(&stats, "wcet").requests, names.len() as u64);

    // Warm re-run: every request (and every kind) is a hit; no stage
    // ran again.
    let warm = svc.compile_batch(reqs);
    assert_eq!(warm.hit_count(), names.len());
    let stats = svc.stats();
    assert_eq!(stage_count(&stats, Stage::Frontend), names.len() as u64);
    assert_eq!(kind_row(&stats, "wcet").hits, names.len() as u64);

    // Both artifacts of a request agree on the program: the WCET report
    // names the same root whose step the C defines.
    for item in &warm.items {
        let c = item.artifact(&ArtifactKind::CCode).unwrap();
        let w = item.artifact(&WCET_CC).unwrap();
        assert!(c
            .c_code()
            .unwrap()
            .contains(&format!("{}__step", item.name)));
        assert!(w.render().starts_with(&item.name), "{}", w.render());
    }
}

#[test]
fn widening_the_kind_set_reuses_the_cached_kinds() {
    let svc = service(ServiceConfig {
        workers: 1,
        caching: true,
        ..Default::default()
    });
    let c_only = svc.compile_one(benchmark_request("count", vec![ArtifactKind::CCode]));
    let c_artifact = Arc::clone(c_only.artifact(&ArtifactKind::CCode).unwrap());

    // Asking for C + WCET later recompiles only for the WCET report and
    // serves the *same* C allocation from the cache.
    let both = svc.compile_one(benchmark_request(
        "count",
        vec![ArtifactKind::CCode, WCET_CC],
    ));
    assert!(!both.cache_hit, "the new kind forces a pipeline run");
    assert!(Arc::ptr_eq(
        both.artifact(&ArtifactKind::CCode).unwrap(),
        &c_artifact
    ));
    // The second run emitted nothing: C was already cached, so the
    // emission stage count stays at the first request's 1.
    assert_eq!(stage_count(&svc.stats(), Stage::Emit), 1);
    assert_eq!(svc.cache_len(), 2);
}

#[test]
fn dump_and_baseline_artifacts_serve_and_cache() {
    let svc = service(ServiceConfig {
        workers: 1,
        caching: true,
        ..Default::default()
    });
    let kinds = vec![
        ArtifactKind::IrDump {
            stage: IrStageKind::SnLustre,
        },
        ArtifactKind::BaselineDiff,
    ];
    let report = svc.compile_one(benchmark_request("tracker", kinds.clone()));
    let artifacts = report.result.as_ref().unwrap();
    // The dump renders exactly what `velus dump --ir snlustre` prints.
    let source = std::fs::read_to_string(velus_repro::benchmark_path("tracker")).unwrap();
    let compiled = velus::compile(&source, Some("tracker")).unwrap();
    assert_eq!(
        artifacts[0].artifact.render(),
        format!("{}", compiled.snlustre)
    );
    // The baseline diff has the three scheme rows.
    let diff = artifacts[1].artifact.render();
    for scheme in ["velus", "heptagon", "lustre-v6"] {
        assert!(diff.contains(scheme), "{diff}");
    }
    // Warm: both kinds hit.
    let warm = svc.compile_one(benchmark_request("tracker", kinds));
    assert!(warm.cache_hit);
}
