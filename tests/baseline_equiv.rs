//! The baseline compilers must be *semantics-preserving* too: the
//! Heptagon-style and Lustre v6-style pipelines produce Obc that behaves
//! exactly like the standard translation on random programs — otherwise
//! the Fig. 12 comparison would be comparing different functions.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use velus_baselines::{heptagon_obc, lustre_v6_obc};
use velus_common::Diagnostics;
use velus_obc::sem::run_class;
use velus_ops::{CVal, ClightOps};
use velus_testkit::gen::{gen_inputs, gen_program, GenConfig};

fn check_seed(seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let prog = gen_program(&mut rng, &GenConfig::default());
    let root = prog.nodes.last().expect("non-empty").name;
    let node = prog.node(root).expect("root").clone();
    let compiled = velus::compile_program(prog.clone(), root, Diagnostics::new())
        .map_err(|e| format!("seed {seed}: {e}"))?;

    let hept = heptagon_obc::<ClightOps>(&prog).map_err(|e| format!("seed {seed} hept: {e}"))?;
    let lus6 = lustre_v6_obc::<ClightOps>(&prog).map_err(|e| format!("seed {seed} lv6: {e}"))?;
    velus_obc::typecheck::check_program(&hept).map_err(|e| format!("seed {seed}: {e}"))?;
    velus_obc::typecheck::check_program(&lus6).map_err(|e| format!("seed {seed}: {e}"))?;

    let n = 10;
    let streams = gen_inputs(&mut rng, &node, n);
    let inputs: Vec<Option<Vec<CVal>>> = (0..n)
        .map(|i| Some(streams.iter().map(|s| *s[i].value().unwrap()).collect()))
        .collect();

    let reference = run_class(&compiled.obc_fused, root, &inputs)
        .map_err(|e| format!("seed {seed} reference: {e}"))?;
    for (label, obc) in [("heptagon", &hept), ("lustre-v6", &lus6)] {
        let outs =
            run_class(obc, root, &inputs).map_err(|e| format!("seed {seed} {label}: {e}"))?;
        if outs != reference {
            return Err(format!("seed {seed}: {label} diverges from the reference"));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn baselines_agree_with_the_reference_pipeline(seed in any::<u64>()) {
        check_seed(seed).map_err(TestCaseError::fail)?;
    }
}

#[test]
fn baselines_agree_on_the_benchmark_suite() {
    for name in ["count", "tracker", "watchdog3", "chrono", "prodcell"] {
        let source = std::fs::read_to_string(velus_repro::benchmark_path(name)).unwrap();
        let compiled = velus::compile(&source, Some(name)).unwrap();
        let hept = heptagon_obc::<ClightOps>(&compiled.nlustre).unwrap();
        let lus6 = lustre_v6_obc::<ClightOps>(&compiled.nlustre).unwrap();

        let inputs: Vec<Option<Vec<CVal>>> = {
            let streams = velus::validate::default_inputs(&compiled, 16);
            (0..16)
                .map(|i| Some(streams.iter().map(|s| *s[i].value().unwrap()).collect()))
                .collect()
        };
        let reference = run_class(&compiled.obc_fused, compiled.root, &inputs).unwrap();
        assert_eq!(
            run_class(&hept, compiled.root, &inputs).unwrap(),
            reference,
            "{name}"
        );
        assert_eq!(
            run_class(&lus6, compiled.root, &inputs).unwrap(),
            reference,
            "{name}"
        );
    }
}
