//! Closes the loop through a *real* C compiler: the emitted C (stdio
//! test mode, §5) is compiled with the system `cc`, executed on the
//! §2.2 inputs, and its printed outputs are compared with the reference
//! dataflow semantics.
//!
//! The paper's final guarantee covers CompCert-generated assembly; this
//! test is the closest executable analogue available in a Rust-only
//! environment. It is skipped silently when no C compiler is installed.

use std::io::Write;
use std::process::{Command, Stdio};

use velus_nlustre::streams::{SVal, StreamSet};
use velus_ops::{CVal, ClightOps};

fn have_cc() -> bool {
    Command::new("cc")
        .arg("--version")
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status()
        .map(|s| s.success())
        .unwrap_or(false)
}

/// Compiles benchmark `name` to C, builds it with `cc`, feeds `stdin`,
/// and returns the printed `out__x = v` values grouped per instant.
fn run_through_cc(name: &str, stdin_text: &str) -> Vec<Vec<i64>> {
    let source = std::fs::read_to_string(velus_repro::benchmark_path(name)).unwrap();
    let compiled = velus::compile(&source, Some(name)).unwrap();
    let c_code = velus::emit_c(&compiled, velus::TestIo::Stdio);

    let dir = std::env::temp_dir().join(format!("velus-cc-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let c_path = dir.join(format!("{name}.c"));
    let bin_path = dir.join(name);
    std::fs::write(&c_path, &c_code).unwrap();

    let status = Command::new("cc")
        .args(["-std=c99", "-O1", "-o"])
        .arg(&bin_path)
        .arg(&c_path)
        .status()
        .unwrap();
    assert!(status.success(), "cc rejected the generated C:\n{c_code}");

    let mut child = Command::new(&bin_path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(stdin_text.as_bytes())
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());

    let n_outputs = compiled.snlustre.node(compiled.root).unwrap().outputs.len();
    let values: Vec<i64> = String::from_utf8_lossy(&out.stdout)
        .lines()
        .filter_map(|l| l.split('=').nth(1))
        .map(|v| v.trim().parse::<i64>().expect("integer output"))
        .collect();
    values.chunks(n_outputs).map(|c| c.to_vec()).collect()
}

fn dataflow_outputs(name: &str, inputs: &StreamSet<ClightOps>, n: usize) -> Vec<Vec<i64>> {
    let source = std::fs::read_to_string(velus_repro::benchmark_path(name)).unwrap();
    let compiled = velus::compile(&source, Some(name)).unwrap();
    let outs =
        velus_nlustre::dataflow::run_node(&compiled.snlustre, compiled.root, inputs, n).unwrap();
    (0..n)
        .map(|i| {
            outs.iter()
                .map(|s| match &s[i] {
                    SVal::Pres(CVal::Int(v)) => i64::from(*v),
                    other => panic!("non-integer output {other:?}"),
                })
                .collect()
        })
        .collect()
}

#[test]
fn tracker_binary_matches_the_dataflow_semantics() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let acc = [0, 2, 4, -2, 0, 3, -3, 2];
    let stdin_text: String = acc.iter().map(|a| format!("{a} 5\n")).collect();
    let from_cc = run_through_cc("tracker", &stdin_text);

    let inputs: StreamSet<ClightOps> = vec![
        acc.iter().map(|&v| SVal::Pres(CVal::int(v))).collect(),
        (0..acc.len()).map(|_| SVal::Pres(CVal::int(5))).collect(),
    ];
    let reference = dataflow_outputs("tracker", &inputs, acc.len());
    assert_eq!(from_cc, reference);
    // And the known last row of the §2.2 table.
    assert_eq!(from_cc[7], vec![33, 3]);
}

#[test]
fn count_binary_matches_the_dataflow_semantics() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    let ticks = [1, 1, 0, 1, 0, 0, 1, 1];
    let stdin_text: String = ticks.iter().map(|t| format!("{t}\n")).collect();
    let from_cc = run_through_cc("count", &stdin_text);
    let inputs: StreamSet<ClightOps> = vec![ticks
        .iter()
        .map(|&t| SVal::Pres(CVal::bool(t == 1)))
        .collect()];
    let reference = dataflow_outputs("count", &inputs, ticks.len());
    assert_eq!(from_cc, reference);
}

#[test]
fn all_integer_benchmarks_compile_under_cc() {
    if !have_cc() {
        eprintln!("skipping: no C compiler");
        return;
    }
    // Every benchmark's generated C must at least be accepted by a real
    // compiler with warnings-as-errors for declarations.
    for name in [
        "avgvelocity",
        "count",
        "tracker",
        "pip_ex",
        "mp_longitudinal",
        "cruise",
        "risingedgeretrigger",
        "chrono",
        "watchdog3",
        "functionalchain",
        "landing_gear",
        "minus",
        "prodcell",
        "ums_verif",
    ] {
        let source = std::fs::read_to_string(velus_repro::benchmark_path(name)).unwrap();
        let compiled = velus::compile(&source, Some(name)).unwrap();
        let c_code = velus::emit_c(&compiled, velus::TestIo::Volatile);
        let dir = std::env::temp_dir().join(format!("velus-ccall-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let c_path = dir.join(format!("{name}.c"));
        let o_path = dir.join(format!("{name}.o"));
        std::fs::write(&c_path, &c_code).unwrap();
        let out = Command::new("cc")
            .args(["-std=c99", "-Wall", "-Werror", "-c", "-o"])
            .arg(&o_path)
            .arg(&c_path)
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{name}: cc failed:\n{}\n--- code ---\n{c_code}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}
