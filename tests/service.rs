//! Integration tests of the batch compilation service over the real
//! pipeline: cache identity, determinism under parallelism, and fault
//! isolation.

use velus::service::{service, ServiceConfig, ServiceError};
use velus::{CompileOptions, CompileRequest, IoMode};
use velus_testkit::industrial::{industrial_source, IndustrialConfig};

fn benchmark_request(name: &str) -> CompileRequest {
    let source = std::fs::read_to_string(velus_repro::benchmark_path(name)).unwrap();
    CompileRequest::new(name, source).with_root(name)
}

fn generated_corpus() -> Vec<CompileRequest> {
    (0..6)
        .map(|k| {
            let cfg = IndustrialConfig {
                nodes: 6 + k * 2,
                eqs_per_node: 5 + k,
                fan_in: 1 + k % 2,
                // Cover base-clocked and sub-clocked (depth 1 and 2) shapes.
                subclock_depth: k % 3,
            };
            let root = format!("blk{}", cfg.nodes - 1);
            CompileRequest::new(format!("gen{k}"), industrial_source(&cfg)).with_root(root)
        })
        .collect()
}

#[test]
fn warm_hit_skips_the_pipeline_and_reemits_identical_c() {
    let svc = service(ServiceConfig {
        workers: 2,
        caching: true,
        ..Default::default()
    });
    let names = ["tracker", "count", "cruise", "watchdog3"];
    let reqs: Vec<CompileRequest> = names.iter().map(|n| benchmark_request(n)).collect();

    let cold = svc.compile_batch(reqs.clone());
    assert_eq!(cold.ok_count(), names.len());
    assert_eq!(cold.hit_count(), 0);

    let warm = svc.compile_batch(reqs);
    assert_eq!(warm.ok_count(), names.len());
    assert_eq!(warm.hit_count(), names.len(), "every warm request must hit");

    for (a, b) in cold.items.iter().zip(&warm.items) {
        let cold_artifact = a.primary().unwrap();
        let warm_artifact = b.primary().unwrap();
        // The identical shared artifact, hence bit-identical emitted C.
        assert!(
            std::sync::Arc::ptr_eq(cold_artifact, warm_artifact),
            "{}",
            a.name
        );
        assert_eq!(cold_artifact.c_code(), warm_artifact.c_code(), "{}", a.name);
        // And the cached C matches an independent cold compilation.
        let fresh = velus::compile(
            &std::fs::read_to_string(velus_repro::benchmark_path(&a.name)).unwrap(),
            Some(&a.name),
        )
        .unwrap();
        assert_eq!(
            velus::emit_c(&fresh, velus::TestIo::Volatile),
            cold_artifact.c_code().unwrap()
        );
    }

    let stats = svc.stats();
    assert_eq!(stats.requests, 2 * names.len() as u64);
    assert_eq!(stats.cache_hits, names.len() as u64);
    assert_eq!(stats.cache_misses, names.len() as u64);
    // Miss latencies were recorded for every pipeline stage the
    // requests ran — everything except the lint pass, which only an
    // `--emit lint` request pays for.
    for stage in &stats.stages {
        let expected = if stage.stage == velus::Stage::Analysis {
            0
        } else {
            names.len() as u64
        };
        assert_eq!(stage.count, expected, "stage {}", stage.stage);
    }
}

#[test]
fn batch_output_is_deterministic_for_any_worker_count() {
    let reqs = generated_corpus();
    let mut outputs: Vec<Vec<String>> = Vec::new();
    for workers in [1, 4] {
        let svc = service(ServiceConfig {
            workers,
            caching: true,
            ..Default::default()
        });
        let report = svc.compile_batch(reqs.clone());
        assert_eq!(report.ok_count(), reqs.len(), "workers={workers}");
        // Reports come back in request order regardless of scheduling.
        let names: Vec<&str> = report.items.iter().map(|i| i.name.as_str()).collect();
        let expected: Vec<&str> = reqs.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(names, expected, "workers={workers}");
        outputs.push(
            report
                .items
                .iter()
                .map(|i| i.primary().unwrap().c_code().unwrap().to_owned())
                .collect(),
        );
    }
    assert_eq!(
        outputs[0], outputs[1],
        "emitted C must not depend on worker count"
    );
}

#[test]
fn failing_requests_do_not_poison_the_batch_or_the_pool() {
    let svc = service(ServiceConfig {
        workers: 2,
        caching: true,
        ..Default::default()
    });
    let batch = svc.compile_batch(vec![
        benchmark_request("tracker"),
        CompileRequest::new("syntax", "node broken( returns"),
        CompileRequest::new(
            "missing-root",
            "node f(x: int) returns (y: int) let y = x; tel",
        )
        .with_root("nonexistent"),
        benchmark_request("count"),
    ]);
    assert_eq!(batch.ok_count(), 2);
    // Failures are structured: stable codes, stages, positions.
    match &batch.items[1].result {
        Err(ServiceError::Compile { report, .. }) => {
            let code = report.primary_code().expect("non-empty report");
            assert!(code.starts_with("E01"), "syntax failure got {code}");
            assert!(report.diagnostics[0].line > 0, "{report}");
        }
        other => panic!("expected a compile error, ok={}", other.is_ok()),
    }
    match &batch.items[2].result {
        Err(ServiceError::Compile { report, .. }) => {
            assert_eq!(report.primary_code(), Some("E0902"), "{report}");
            assert_eq!(report.diagnostics[0].stage, "driver");
        }
        other => panic!("expected a compile error, ok={}", other.is_ok()),
    }

    // The pool is alive and the failures were not cached.
    let again = svc.compile_batch(vec![benchmark_request("tracker")]);
    assert_eq!(again.ok_count(), 1);
    assert!(again.items[0].cache_hit);
    let stats = svc.stats();
    assert_eq!(stats.errors, 2);
    assert_eq!(stats.panics, 0);
}

#[test]
fn io_mode_caches_separately_and_changes_the_artifact() {
    let svc = service(ServiceConfig {
        workers: 2,
        caching: true,
        ..Default::default()
    });
    let volatile = svc.compile_one(benchmark_request("tracker"));
    let stdio = svc.compile_one(
        benchmark_request("tracker").with_options(CompileOptions::default().with_io(IoMode::Stdio)),
    );
    assert!(!stdio.cache_hit);
    let v = volatile.primary().unwrap().c_code().unwrap().to_owned();
    let s = stdio.primary().unwrap().c_code().unwrap().to_owned();
    assert_ne!(v, s);
    assert!(s.contains("scanf"), "stdio mode uses the scanf harness");
    assert!(!v.contains("scanf"), "volatile mode must not");
    assert_eq!(svc.cache_len(), 2);
}

#[test]
fn generated_corpus_scales_across_workers_without_result_change() {
    // A correctness guard for the throughput bench: the same corpus it
    // measures compiles identically with the pool fully loaded.
    let reqs = generated_corpus();
    let svc = service(ServiceConfig {
        workers: 8,
        caching: true,
        ..Default::default()
    });
    let report = svc.compile_batch(reqs);
    assert_eq!(report.err_count(), 0);
    assert!(report.items.iter().all(|i| !i.cache_hit));
    // Every generated artifact contains its root's step function.
    for item in &report.items {
        let artifact = item.primary().unwrap();
        assert!(
            artifact.c_code().unwrap().contains("__step"),
            "{}: no step function in emitted C",
            item.name
        );
    }
}
