//! Integration tests of the observability layer against the real
//! service: Chrome-trace output is well-formed JSON, span streams obey
//! stack discipline across worker threads, and the mergeable histogram
//! tracks a sorted-vector oracle.

use proptest::prelude::*;

use velus::service::{service, ServiceConfig};
use velus::{CompileRequest, Recorder, RecorderConfig};
use velus_obs::trace::EventKind;
use velus_obs::Histogram;
use velus_testkit::industrial::{industrial_source, IndustrialConfig};

fn generated_corpus(programs: usize) -> Vec<CompileRequest> {
    (0..programs)
        .map(|k| {
            let cfg = IndustrialConfig {
                nodes: 6 + (k % 5) * 2,
                eqs_per_node: 5 + k % 4,
                fan_in: 1 + k % 2,
                subclock_depth: k % 3,
            };
            let root = format!("blk{}", cfg.nodes - 1);
            CompileRequest::new(format!("gen{k}"), industrial_source(&cfg)).with_root(root)
        })
        .collect()
}

/// Compiles a corpus through a traced multi-worker service and returns
/// the drained trace.
fn traced_batch(programs: usize, workers: usize) -> velus_obs::TraceData {
    let recorder = Recorder::new(RecorderConfig::default());
    let svc = service(ServiceConfig {
        workers,
        caching: true,
        recorder: Some(recorder.clone()),
        ..Default::default()
    });
    let report = svc.compile_batch(generated_corpus(programs));
    assert_eq!(report.err_count(), 0, "corpus must compile");
    recorder.drain()
}

#[test]
fn chrome_trace_from_the_real_service_is_valid_json() {
    let data = traced_batch(8, 2);
    assert_eq!(data.dropped, 0, "default ring must not drop this batch");
    let json = data.chrome_json();
    velus_bench::json::check(&json).unwrap_or_else(|e| panic!("malformed Chrome trace: {e}"));
    // The trace must actually cover the layers the recorder instruments:
    // request lifecycle, queueing, cache probing, and pipeline passes.
    for needle in [
        "\"queue-wait\"",
        "\"cache-probe\"",
        "\"compile\"",
        "\"elaborate\"",
        "\"emit\"",
        "thread_name",
    ] {
        assert!(json.contains(needle), "trace JSON lacks {needle}");
    }
}

#[test]
fn spans_balance_and_nest_per_trace_across_worker_threads() {
    let programs = 12;
    let data = traced_batch(programs, 4);
    assert_eq!(data.dropped, 0);

    // Group the interleaved multi-worker stream by trace id; events
    // within one trace are in recording order because each request
    // scope flushes its events to the ring in one contiguous block.
    let mut traces: std::collections::BTreeMap<u64, Vec<&velus_obs::TraceEvent>> =
        std::collections::BTreeMap::new();
    for ev in &data.events {
        traces.entry(ev.trace).or_default().push(ev);
    }
    assert_eq!(traces.len(), programs, "one trace per request");

    for (trace, events) in &traces {
        // A request runs on exactly one worker thread, so every event
        // of its trace carries that thread's id.
        let tid = events[0].tid;
        assert!(
            events.iter().all(|e| e.tid == tid),
            "trace {trace} spans multiple threads"
        );

        // Stack discipline: every Enter's parent is the innermost open
        // span, every Exit closes the span the matching Enter opened,
        // and the scope closes everything before flushing.
        let mut stack: Vec<u64> = Vec::new();
        let mut last_ts = 0u64;
        for ev in events {
            // Complete intervals carry their own (earlier) start time —
            // queue wait began before the worker picked the request up.
            if !matches!(ev.kind, EventKind::Complete { .. }) {
                assert!(ev.ts_ns >= last_ts, "trace {trace} not in time order");
                last_ts = ev.ts_ns;
            }
            match ev.kind {
                EventKind::Enter => {
                    let expected_parent = stack.last().copied().unwrap_or(0);
                    assert_eq!(
                        ev.parent, expected_parent,
                        "trace {trace}: span {} (\"{}\") has parent {}, expected the innermost open span {expected_parent}",
                        ev.span, ev.name, ev.parent
                    );
                    stack.push(ev.span);
                }
                EventKind::Exit => {
                    let open = stack.pop().unwrap_or_else(|| {
                        panic!("trace {trace}: exit of span {} with no span open", ev.span)
                    });
                    assert_eq!(open, ev.span, "trace {trace}: spans exit out of order");
                }
                EventKind::Instant | EventKind::Complete { .. } => {}
            }
        }
        assert!(
            stack.is_empty(),
            "trace {trace} flushed with spans still open: {stack:?}"
        );

        // Each traced request records its queueing interval and at
        // least the root request span plus the compile span.
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::Complete { .. }) && e.name == "queue-wait"),
            "trace {trace} lacks a queue-wait interval"
        );
        let enters: Vec<&str> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Enter))
            .map(|e| e.name)
            .collect();
        assert!(
            enters.len() >= 2,
            "trace {trace} recorded too few spans: {enters:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The log-linear histogram's percentiles stay within its bucketing
    /// error of the exact nearest-rank answer over a sorted copy, and
    /// splitting the sample anywhere before merging changes nothing.
    #[test]
    fn histogram_matches_a_sorted_oracle_and_merge_is_lossless(
        values in prop::collection::vec(1u64..1_000_000_000u64, 1..200),
        split in any::<u64>(),
    ) {
        let mut whole = Histogram::new();
        for &v in &values {
            whole.record(v);
        }

        // Merge equivalence: recording through two shards then merging
        // is indistinguishable from recording everything in one.
        let cut = (split as usize) % (values.len() + 1);
        let (left, right) = values.split_at(cut);
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for &v in left {
            a.record(v);
        }
        for &v in right {
            b.record(v);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert_eq!(a.sum(), whole.sum());
        prop_assert_eq!(a.min(), whole.min());
        prop_assert_eq!(a.max(), whole.max());
        for pct in [50.0, 95.0, 99.0] {
            prop_assert_eq!(a.percentile(pct), whole.percentile(pct));
        }

        // Percentile accuracy: within the documented ~3.2% relative
        // error of the exact nearest-rank oracle, and never outside the
        // recorded range.
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for pct in [0.0, 50.0, 90.0, 99.0, 100.0] {
            let rank = ((pct / 100.0 * sorted.len() as f64).ceil() as usize)
                .clamp(1, sorted.len());
            let exact = sorted[rank - 1];
            let got = whole.percentile(pct);
            prop_assert!(got >= whole.min() && got <= whole.max());
            let err = (got as f64 - exact as f64).abs() / exact as f64;
            prop_assert!(
                err <= 0.035,
                "p{pct}: histogram {got} vs oracle {exact} (err {err:.4})"
            );
        }
    }
}
