//! The end-to-end diagnostics contract.
//!
//! * **Golden corpus** — every program under `tests/errors/*.lus` is
//!   rejected, and its human (caret) and JSON renderings match the
//!   checked-in goldens under `tests/errors/golden/`. Regenerate with
//!   `VELUS_REGEN_GOLDEN=1 cargo test --test diagnostics`.
//! * **Structure** — every diagnostic of every rejection carries a
//!   stable registered code (never the `E0000` fallback) and a concrete
//!   originating stage (never `unknown`), and the JSON rendering passes
//!   the mini well-formedness checker.
//! * **Spans** — mid-end failures (the scheduling cycle) resolve to the
//!   *source equation*, even though the surface AST is long gone by the
//!   time scheduling runs.
//! * **Fault injection** — randomly mutated programs either compile or
//!   yield coded, stage-tagged diagnostics; they never panic.

use std::panic::{catch_unwind, AssertUnwindSafe};

use rand::prelude::*;
use velus_common::{codes, DiagStage, Diagnostics, SpanMap, ToDiagnostics};

fn repo_path(rel: &str) -> std::path::PathBuf {
    velus_repro::repo_root().join(rel)
}

fn corpus() -> Vec<(String, String)> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(repo_path("tests/errors"))
        .expect("error corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lus"))
        // `lint_*.lus` fixtures compile cleanly — they exist for the
        // static-analysis findings and are pinned by `tests/lints.rs`;
        // this corpus is rejection-only.
        .filter(|p| {
            !p.file_stem()
                .is_some_and(|s| s.to_string_lossy().starts_with("lint_"))
        })
        .collect();
    files.sort();
    assert!(files.len() >= 6, "corpus shrank: {files:?}");
    files
        .into_iter()
        .map(|p| {
            let stem = p.file_stem().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&p).unwrap();
            (stem, src)
        })
        .collect()
}

/// Compiles and returns the (sorted, deduplicated) rejection
/// diagnostics. Errors escaping `velus::compile` are pre-resolved
/// (`Diag`/`Front`), so no span map is needed here.
fn reject(source: &str) -> Diagnostics {
    match velus::compile(source, None) {
        Ok(_) => panic!("expected rejection of:\n{source}"),
        Err(e) => e.to_diagnostics(&SpanMap::new()),
    }
}

fn assert_coded_and_staged(diags: &Diagnostics, context: &str) {
    assert!(!diags.is_empty(), "{context}: empty diagnostics");
    for d in diags.iter() {
        assert_ne!(d.code.id, codes::E0000.id, "{context}: uncoded: {d}");
        assert!(
            codes::ALL.iter().any(|c| c.id == d.code.id),
            "{context}: unregistered code {}",
            d.code
        );
        assert_ne!(
            d.stage,
            DiagStage::Unknown,
            "{context}: stage-less diagnostic: {d}"
        );
    }
}

fn check_golden(name: &str, kind: &str, actual: &str) {
    let path = repo_path(&format!("tests/errors/golden/{name}.{kind}"));
    if std::env::var("VELUS_REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden {path:?}; regenerate with VELUS_REGEN_GOLDEN=1")
    });
    assert_eq!(
        actual.trim_end_matches('\n'),
        expected.trim_end_matches('\n'),
        "golden mismatch for {name}.{kind}; regenerate with VELUS_REGEN_GOLDEN=1 if intended"
    );
}

#[test]
fn error_corpus_matches_goldens_and_is_fully_coded() {
    for (name, src) in corpus() {
        let diags = reject(&src);
        assert_coded_and_staged(&diags, &name);
        let human = diags.render_human(&src);
        let json = diags.render_json(&src);
        velus_bench::json::check(&json)
            .unwrap_or_else(|e| panic!("{name}: bad JSON ({e}):\n{json}"));
        check_golden(&name, "human", &human);
        check_golden(&name, "json", &json);
    }
}

#[test]
fn scheduling_cycle_resolves_to_the_source_equation() {
    let src = std::fs::read_to_string(repo_path("tests/errors/causality.lus")).unwrap();
    let diags = reject(&src);
    let d = diags.iter().next().unwrap();
    assert_eq!(d.code.id, "E0408", "{d}");
    assert_eq!(d.stage, DiagStage::Schedule);
    // The primary span covers `a = b + x;` — line 4 of the file — and
    // the remaining cycle members are annotated as notes.
    let loc = velus_common::Loc::of_offset(&src, d.span.start);
    assert_eq!((loc.line, loc.col), (4, 3), "{d:?}");
    assert_eq!(
        &src[d.span.start as usize..d.span.end as usize],
        "a = b + x;"
    );
    assert!(!d.notes.is_empty(), "{d:?}");
}

#[test]
fn warnings_are_coded_and_positioned() {
    let src = "node f(x: int) returns (y: int)\nlet y = pre x; tel\n";
    let c = velus::compile(src, None).unwrap();
    let w = c.warnings.iter().next().expect("pre lint fires");
    assert_eq!(w.code.id, "W0101");
    assert_eq!(w.stage, DiagStage::Analysis);
    let loc = velus_common::Loc::of_offset(src, w.span.start);
    assert_eq!(loc.line, 2);
}

/// The fault-injection property: a mutated program either compiles or
/// is rejected with coded, stage-tagged diagnostics — never a panic.
#[test]
fn mutated_programs_never_panic_and_always_carry_codes() {
    let seeds: Vec<String> = corpus()
        .into_iter()
        .map(|(_, src)| src)
        .chain([
            std::fs::read_to_string(repo_path("benchmarks/tracker.lus")).unwrap(),
            std::fs::read_to_string(repo_path("benchmarks/count.lus")).unwrap(),
            "node f(k: bool; x: int) returns (o: int)\nvar a: int when k;\nlet\n  a = (x + 1) when k;\n  o = merge k a ((0 fby o) when not k);\ntel\n"
                .to_owned(),
        ])
        .collect();
    let mut compiled = 0u32;
    let mut rejected = 0u32;
    for (i, base) in seeds.iter().enumerate() {
        for round in 0..24u64 {
            let mut rng = StdRng::seed_from_u64(i as u64 * 1_000 + round);
            let mut mutant = base.clone();
            // Up to two stacked mutations: single-token typos and
            // compound corruption both stay panic-free.
            for _ in 0..rng.gen_range(1..3u32) {
                mutant = velus_testkit::mutate::mutate(&mutant, &mut rng);
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| velus::compile(&mutant, None)));
            match outcome {
                Ok(Ok(_)) => compiled += 1,
                Ok(Err(e)) => {
                    let diags = e.to_diagnostics(&SpanMap::new());
                    assert_coded_and_staged(&diags, &format!("seed {i}/{round}:\n{mutant}"));
                    rejected += 1;
                }
                Err(_) => panic!("compiler panicked on mutant (seed {i}/{round}):\n{mutant}"),
            }
        }
    }
    // The injector is doing real damage (most mutants are rejected)
    // while some survive (the property is not vacuous on either side).
    assert!(rejected > 100, "rejected only {rejected}");
    assert!(compiled >= 2, "compiled only {compiled}");
}
