//! Property tests of the sharded, capacity-bounded artifact cache: the
//! configured caps are never exceeded, eviction counters are monotone,
//! and an evicted entry's next request recompiles and re-verifies
//! through the real pipeline.

use proptest::prelude::*;

use velus_server::{
    ArtifactCache, ArtifactKind, CacheConfig, CacheKey, CompileRequest, WcetModelKind,
};

/// Replays a random operation sequence against a capped cache and
/// checks the capacity/monotonicity invariants after every step.
fn check_random_workload(ops: &[u8], max_entries: usize, max_bytes: usize, shards: usize) {
    let cache: ArtifactCache<String> = ArtifactCache::with_config(
        CacheConfig {
            shards,
            max_entries: Some(max_entries),
            max_bytes: Some(max_bytes),
        },
        Box::new(String::len),
    );
    let mut last_evictions = 0u64;
    for &op in ops {
        // Key space of 16 distinct contents x 2 artifact kinds; the
        // opcode bit selects get/insert. Same content under different
        // kinds must key (and verify) independently.
        let k = usize::from(op) % 32;
        let kind = if k % 2 == 0 {
            ArtifactKind::CCode
        } else {
            ArtifactKind::Wcet {
                model: WcetModelKind::CompCert,
            }
        };
        let req = CompileRequest::new(format!("r{k}"), format!("source-{:03}", k / 2));
        let key = CacheKey::of_request(&req, &kind);
        if op >= 128 {
            if let Some(artifact) = cache.get(&key, &req, &kind) {
                assert_eq!(
                    *artifact,
                    format!("ART-{k:03}"),
                    "hit serves wrong artifact"
                );
            }
        } else {
            cache.insert(key, &req, kind, format!("ART-{k:03}"));
        }
        let counters = cache.counters();
        assert!(
            counters.entries as usize <= max_entries,
            "entry cap exceeded: {} > {max_entries}",
            counters.entries
        );
        assert!(
            counters.bytes as usize <= max_bytes,
            "byte cap exceeded: {} > {max_bytes}",
            counters.bytes
        );
        assert_eq!(counters.entries as usize, cache.len());
        assert!(
            counters.evictions >= last_evictions,
            "eviction counter went backwards"
        );
        last_evictions = counters.evictions;
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn caps_hold_and_evictions_are_monotone(
        ops in prop::collection::vec(any::<u8>(), 1..200),
        cap in any::<u8>(),
        shard_pow in any::<u8>(),
    ) {
        let max_entries = usize::from(cap) % 8 + 1;
        // Each entry weighs 17 bytes (10 source + 7 artifact); a byte cap
        // that is not a multiple of the weight exercises partial fits.
        let max_bytes = (usize::from(cap) % 5 + 1) * 25;
        let shards = 1 << (usize::from(shard_pow) % 6); // 1..=32
        check_random_workload(&ops, max_entries, max_bytes, shards);
    }

    #[test]
    fn an_unbounded_cache_never_evicts(ops in prop::collection::vec(any::<u8>(), 1..100)) {
        let cache: ArtifactCache<String> = ArtifactCache::new();
        for &op in &ops {
            let k = usize::from(op) % 16;
            let req = CompileRequest::new(format!("r{k}"), format!("src-{k}"));
            let key = CacheKey::of_request(&req, &ArtifactKind::CCode);
            cache.insert(key, &req, ArtifactKind::CCode, format!("A{k}"));
        }
        prop_assert_eq!(cache.counters().evictions, 0);
        prop_assert!(cache.len() <= 16);
    }
}

/// End-to-end through the real pipeline: with a 2-entry cap, a third
/// program evicts the least recently used one; requesting the evictee
/// again is a miss that recompiles, and the fresh artifact matches an
/// independent cold compilation byte for byte (the verification path an
/// eviction must re-run).
#[test]
fn evicted_program_recompiles_and_reverifies() {
    use velus::service::{service, ServiceConfig};

    let svc = service(ServiceConfig {
        workers: 1,
        caching: true,
        cache: CacheConfig {
            max_entries: Some(2),
            ..Default::default()
        },
        ..Default::default()
    });
    let sources: Vec<(String, String)> = (0..3)
        .map(|k| {
            (
                format!("prog{k}"),
                format!("node prog{k}(x: int) returns (y: int) let y = x + ({k} fby y); tel"),
            )
        })
        .collect();
    let req = |k: usize| -> CompileRequest {
        CompileRequest::new(&sources[k].0, &sources[k].1).with_root(&sources[k].0)
    };

    let first = svc.compile_one(req(0));
    let first_c = first
        .primary()
        .expect("prog0 compiles")
        .c_code()
        .unwrap()
        .to_owned();
    svc.compile_one(req(1));
    svc.compile_one(req(2)); // cap 2: evicts prog0, the LRU entry
    let stats = svc.stats();
    assert_eq!(stats.cache_entries, 2);
    assert_eq!(stats.cache_evictions, 1);

    let again = svc.compile_one(req(0));
    assert!(!again.cache_hit, "evicted entry must recompile");
    let again_c = again
        .primary()
        .expect("prog0 recompiles")
        .c_code()
        .unwrap()
        .to_owned();
    assert_eq!(again_c, first_c, "recompilation is deterministic");
    // The recompile re-verified through the full pipeline and matches a
    // fresh single-shot compilation.
    let fresh = velus::compile(&sources[0].1, Some("prog0")).unwrap();
    assert_eq!(velus::emit_c(&fresh, velus::TestIo::Volatile), first_c);
    // Recompiling refilled the cache, evicting the next LRU entry.
    let stats = svc.stats();
    assert_eq!(stats.cache_entries, 2);
    assert_eq!(stats.cache_evictions, 2);
}
