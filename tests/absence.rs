//! Absence at the root: the paper's node semantics derives the base
//! clock from input presence (`clock#`), and requires inputs and outputs
//! to be synchronized — "the streams of an instantiated node are only
//! activated when the inputs are present". On the imperative side, an
//! absent instant simply means the step function is not called.
//!
//! These tests drive compiled programs with absent instants interleaved
//! and check that the dataflow semantics and the Obc execution agree:
//! outputs are absent exactly when inputs are, and state freezes across
//! absent instants.

use velus_nlustre::streams::{SVal, StreamSet};
use velus_obc::sem::run_class;
use velus_ops::{CVal, ClightOps};

const SRC: &str = "
    node counter(ini, inc: int; res: bool) returns (n: int)
    let
      n = if (true fby false) or res then ini else (0 fby n) + inc;
    tel
";

/// presence[i] says whether instant i is active.
fn gapped_inputs(presence: &[bool]) -> StreamSet<ClightOps> {
    let ini: Vec<SVal<ClightOps>> = presence
        .iter()
        .map(|&p| {
            if p {
                SVal::Pres(CVal::int(10))
            } else {
                SVal::Abs
            }
        })
        .collect();
    let inc: Vec<SVal<ClightOps>> = presence
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            if p {
                SVal::Pres(CVal::int(i as i32))
            } else {
                SVal::Abs
            }
        })
        .collect();
    let res: Vec<SVal<ClightOps>> = presence
        .iter()
        .map(|&p| {
            if p {
                SVal::Pres(CVal::bool(false))
            } else {
                SVal::Abs
            }
        })
        .collect();
    vec![ini, inc, res]
}

#[test]
fn outputs_are_absent_exactly_when_inputs_are() {
    let presence = [true, false, true, true, false, false, true, true];
    let compiled = velus::compile(SRC, None).unwrap();
    let inputs = gapped_inputs(&presence);
    let outs = velus_nlustre::dataflow::run_node(
        &compiled.snlustre,
        compiled.root,
        &inputs,
        presence.len(),
    )
    .unwrap();
    for (i, &p) in presence.iter().enumerate() {
        assert_eq!(outs[0][i].is_present(), p, "instant {i}");
    }
}

#[test]
fn obc_with_skipped_steps_matches_gapped_dataflow() {
    let presence = [true, true, false, true, false, true, true];
    let compiled = velus::compile(SRC, None).unwrap();
    let inputs = gapped_inputs(&presence);
    let df = velus_nlustre::dataflow::run_node(
        &compiled.snlustre,
        compiled.root,
        &inputs,
        presence.len(),
    )
    .unwrap();

    let obc_inputs: Vec<Option<Vec<CVal>>> = (0..presence.len())
        .map(|i| {
            presence[i].then(|| {
                inputs
                    .iter()
                    .map(|s| *s[i].value().expect("present"))
                    .collect()
            })
        })
        .collect();
    let outs = run_class(&compiled.obc_fused, compiled.root, &obc_inputs).unwrap();
    for i in 0..presence.len() {
        match (&df[0][i], &outs[i]) {
            (SVal::Abs, None) => {}
            (SVal::Pres(a), Some(vs)) => assert_eq!(a, &vs[0], "instant {i}"),
            (a, b) => panic!("presence mismatch at {i}: {a:?} vs {b:?}"),
        }
    }
    // State freezes across gaps: the counter resumes, not restarts.
    let present_values: Vec<i32> = outs
        .iter()
        .flatten()
        .map(|vs| match vs[0] {
            CVal::Int(v) => v,
            _ => unreachable!(),
        })
        .collect();
    // inc values at present instants: 0, 1, 3, 5, 6 (cumulative from 10).
    assert_eq!(present_values, vec![10, 11, 14, 19, 25]);
}

#[test]
fn mismatched_input_presence_is_rejected() {
    let compiled = velus::compile(SRC, None).unwrap();
    // ini present, inc absent at instant 0: not a synchronizable input.
    let inputs: StreamSet<ClightOps> = vec![
        vec![SVal::Pres(CVal::int(1))],
        vec![SVal::Abs],
        vec![SVal::Pres(CVal::bool(false))],
    ];
    let err = velus_nlustre::dataflow::run_node(&compiled.snlustre, compiled.root, &inputs, 1)
        .unwrap_err();
    assert!(matches!(err, velus_nlustre::SemError::ClockError(_)));
}

#[test]
fn memory_semantics_handles_gaps_identically() {
    let presence = [true, false, true, false, false, true];
    let compiled = velus::compile(SRC, None).unwrap();
    let inputs = gapped_inputs(&presence);
    let df = velus_nlustre::dataflow::run_node(
        &compiled.snlustre,
        compiled.root,
        &inputs,
        presence.len(),
    )
    .unwrap();
    let mut msem = velus_nlustre::msem::MSem::new(&compiled.snlustre, compiled.root).unwrap();
    let ms = msem.run(&inputs, presence.len()).unwrap();
    assert_eq!(df, ms);
}
