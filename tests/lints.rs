//! The static-analysis (lint) layer contract.
//!
//! * **Golden corpus** — every `tests/errors/lint_*.lus` fixture
//!   compiles cleanly; its lint findings (human and JSON renderings)
//!   match the checked-in goldens under `tests/errors/golden/`, and the
//!   code named by the file stem (`lint_w0104.lus` → `W0104`) is
//!   present. Fixtures suffixed `_clean` must lint without findings.
//!   Regenerate with `VELUS_REGEN_GOLDEN=1 cargo test --test lints`.
//! * **Coverage** — every registered lint code
//!   (`velus_common::codes::LINT_CODES`) has at least one fixture.
//! * **Structure** — every finding carries a registered lint code, the
//!   `analysis` stage, and a span that resolves into the source.
//! * **W0001 regression** — the arrow-guarded `pre` that the retired
//!   syntactic check flagged stays silent, while the bare `pre` still
//!   warns (`W0101`), at the `pre`'s own span.
//! * **Soundness** — a bounded pass of the execution oracle
//!   (`velus_testkit::soundness`): guaranteed-trap claims trap,
//!   warning-free programs don't.

use velus_common::{codes, DiagStage, Diagnostics};

fn repo_path(rel: &str) -> std::path::PathBuf {
    velus_repro::repo_root().join(rel)
}

/// The lint fixtures: `(stem, source)`, sorted by name.
fn lint_corpus() -> Vec<(String, String)> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(repo_path("tests/errors"))
        .expect("error corpus exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "lus"))
        .filter(|p| {
            p.file_stem()
                .is_some_and(|s| s.to_string_lossy().starts_with("lint_"))
        })
        .collect();
    files.sort();
    assert!(files.len() >= 9, "lint corpus shrank: {files:?}");
    files
        .into_iter()
        .map(|p| {
            let stem = p.file_stem().unwrap().to_string_lossy().into_owned();
            let src = std::fs::read_to_string(&p).unwrap();
            (stem, src)
        })
        .collect()
}

/// Runs the front end + scheduling + the analysis pass (exactly what
/// `velus lint` does) and returns the findings.
fn lint(source: &str, context: &str) -> Diagnostics {
    let mut observe = |_, _| {};
    let mut staged = velus::StagedPipeline::from_source(source, None, &mut observe)
        .unwrap_or_else(|e| panic!("{context}: lint fixture must compile: {e}"));
    staged
        .lint()
        .unwrap_or_else(|e| panic!("{context}: lint pass failed: {e}"))
        .clone()
}

/// The code a fixture stem promises: `lint_w0104` → `Some("W0104")`,
/// `lint_w0101_arrow_clean` → `None` (must lint clean).
fn expected_code(stem: &str) -> Option<String> {
    if stem.ends_with("_clean") {
        return None;
    }
    let code = stem
        .strip_prefix("lint_")
        .and_then(|s| s.split('_').next())
        .unwrap_or_else(|| panic!("bad lint fixture name: {stem}"));
    Some(code.to_ascii_uppercase())
}

fn assert_lint_shaped(findings: &Diagnostics, source: &str, context: &str) {
    for d in findings.iter() {
        assert!(
            codes::LINT_CODES.iter().any(|c| c.id == d.code.id),
            "{context}: non-lint code {} in lint findings: {d}",
            d.code
        );
        assert_eq!(d.stage, DiagStage::Analysis, "{context}: {d}");
        assert!(
            (d.span.end as usize) <= source.len() && d.span.start < d.span.end,
            "{context}: unresolvable span {:?}: {d}",
            d.span
        );
    }
}

fn check_golden(name: &str, kind: &str, actual: &str) {
    let path = repo_path(&format!("tests/errors/golden/{name}.{kind}"));
    if std::env::var("VELUS_REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden {path:?}; regenerate with VELUS_REGEN_GOLDEN=1")
    });
    assert_eq!(
        actual.trim_end_matches('\n'),
        expected.trim_end_matches('\n'),
        "golden mismatch for {name}.{kind}; regenerate with VELUS_REGEN_GOLDEN=1 if intended"
    );
}

#[test]
fn lint_corpus_matches_goldens_and_is_fully_coded() {
    for (name, src) in lint_corpus() {
        let findings = lint(&src, &name);
        assert_lint_shaped(&findings, &src, &name);
        match expected_code(&name) {
            Some(code) => assert!(
                findings.iter().any(|d| d.code.id == code),
                "{name}: expected {code} among:\n{findings}"
            ),
            None => assert!(findings.is_empty(), "{name}: expected clean:\n{findings}"),
        }
        let human = findings.render_human(&src);
        let json = findings.render_json(&src);
        velus_bench::json::check(&json)
            .unwrap_or_else(|e| panic!("{name}: bad JSON ({e}):\n{json}"));
        check_golden(&name, "human", &human);
        check_golden(&name, "json", &json);
    }
}

#[test]
fn every_lint_code_has_a_fixture() {
    let covered: Vec<String> = lint_corpus()
        .into_iter()
        .filter_map(|(name, _)| expected_code(&name))
        .collect();
    for code in codes::LINT_CODES {
        assert!(
            covered.iter().any(|c| c == code.id),
            "lint code {} has no fixture under tests/errors/lint_*.lus",
            code
        );
    }
}

/// The retired syntactic W0001 flagged *every* `pre`; the semantic
/// W0101 must stay silent on the arrow-guarded one and keep warning on
/// the bare one — at the `pre`'s own span.
#[test]
fn arrow_guarded_pre_no_longer_warns_but_bare_pre_still_does() {
    let guarded = "node f(x: int) returns (y: int)\nlet y = 0 -> pre x; tel\n";
    let d = lint(guarded, "guarded");
    assert!(
        d.iter()
            .all(|w| w.code.id != "W0101" && w.code.id != "W0001"),
        "false positive resurfaced:\n{d}"
    );

    let bare = "node f(x: int) returns (y: int)\nlet y = pre x; tel\n";
    let d = lint(bare, "bare");
    let w = d
        .iter()
        .find(|w| w.code.id == "W0101")
        .unwrap_or_else(|| panic!("bare pre must warn:\n{d}"));
    assert_eq!(&bare[w.span.start as usize..w.span.end as usize], "pre x");
}

/// Lint findings also flow through the ordinary compile path's warning
/// channel (`Compiled::warnings`), not only `StagedPipeline::lint`.
#[test]
fn the_compile_warning_channel_carries_the_same_initialization_verdict() {
    let src = std::fs::read_to_string(repo_path("tests/errors/lint_w0101.lus")).unwrap();
    let c = velus::compile(&src, None).unwrap();
    assert!(
        c.warnings.iter().any(|w| w.code.id == "W0101"),
        "{}",
        c.warnings
    );
}

/// A bounded pass of the lint soundness oracle: compile generated
/// trap-allowing programs, execute them, and check every trap claim
/// (`velus-bench --bin lintsound` scales this to thousands of seeds).
#[test]
fn a_bounded_soundness_pass_holds_claims_against_executions() {
    use velus_testkit::soundness::{run_soundness, SoundnessConfig};
    let cfg = SoundnessConfig::default();
    // A seed block disjoint from the testkit's own unit test, so the
    // two runs cover different programs.
    let rep = run_soundness(&cfg, 1_000, 80);
    assert!(rep.sound(), "{rep}");
    assert_eq!(rep.checked, 80);
    assert!(rep.guaranteed > 0, "{rep}");
    assert!(rep.trapped_runs > 0, "{rep}");
}
