//! Properties pinning the arena-backed front end.
//!
//! The front end builds surface and typed expressions in recycled arena
//! pools ([`velus_lustre::FrontendScratch`]); the pipeline's
//! `ElaboratePass` recycles one scratch per thread. These tests pin the
//! two things that must survive that rework:
//!
//! * **Determinism under recycling** — compiling a program must produce
//!   byte-identical C and byte-identical `FailureReport` JSON no matter
//!   what was compiled before it on the same thread (a dirty recycled
//!   arena must be indistinguishable from a fresh one), and the staged
//!   pipeline must agree with the one-shot path.
//! * **Pool reuse** — once the pools have grown to fit the largest
//!   program seen, further compiles (of that program or smaller ones)
//!   must not allocate new pool capacity.

use rand::rngs::StdRng;
use rand::SeedableRng;
use velus_common::{FailureReport, SpanMap};
use velus_lustre::FrontendScratch;
use velus_ops::ClightOps;
use velus_server::Stage;
use velus_testkit::gen::{gen_program, GenConfig};
use velus_testkit::industrial::{industrial_source, IndustrialConfig};
use velus_testkit::render::lustre_source;

fn repo_path(rel: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(rel)
}

/// The benchmark corpus plus deterministic industrial and random
/// generator programs: `(label, source, root)`.
fn corpus() -> Vec<(String, String, Option<String>)> {
    let mut out: Vec<(String, String, Option<String>)> = Vec::new();
    for name in [
        "avgvelocity",
        "count",
        "tracker",
        "pip_ex",
        "cruise",
        "chrono",
        "watchdog3",
        "landing_gear",
        "prodcell",
        "ums_verif",
    ] {
        let src = std::fs::read_to_string(velus_repro::benchmark_path(name)).unwrap();
        out.push((name.to_owned(), src, Some(name.to_owned())));
    }
    for k in 0..3usize {
        let cfg = IndustrialConfig {
            nodes: 6 + 3 * k,
            eqs_per_node: 5 + 2 * k,
            fan_in: 1 + k % 2,
            subclock_depth: k,
        };
        out.push((
            format!("industrial{k}"),
            industrial_source(&cfg),
            Some(format!("blk{}", cfg.nodes - 1)),
        ));
    }
    // Random programs, including a deeply nested shape that stresses
    // arena growth mid-corpus.
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = if seed % 2 == 0 {
            GenConfig::default()
        } else {
            GenConfig {
                nodes: 3,
                eqs_per_node: 4,
                expr_depth: 8,
                subclock_pct: 25,
                ..GenConfig::default()
            }
        };
        let prog = gen_program(&mut rng, &cfg);
        let root = prog.nodes.last().unwrap().name.to_string();
        out.push((format!("gen{seed}"), lustre_source(&prog), Some(root)));
    }
    out
}

fn one_shot_c(source: &str, root: Option<&str>) -> String {
    let compiled = velus::compile(source, root).expect("corpus compiles");
    velus::emit_c(&compiled, velus::TestIo::Volatile)
}

fn staged_c(source: &str, root: Option<&str>) -> String {
    let mut observe = |_stage: Stage, _dur: std::time::Duration| {};
    let mut staged =
        velus::StagedPipeline::from_source(source, root, &mut observe).expect("corpus compiles");
    staged.emit(velus::TestIo::Volatile).expect("corpus emits")
}

#[test]
fn staged_and_one_shot_agree_bytewise_under_arena_recycling() {
    // All compiles run on this thread, so they share one recycled
    // `FrontendScratch` inside `ElaboratePass`: every comparison also
    // checks that a dirty arena replays exactly like a fresh one.
    let corpus = corpus();
    let first: Vec<String> = corpus
        .iter()
        .map(|(_, src, root)| one_shot_c(src, root.as_deref()))
        .collect();
    for (i, (label, src, root)) in corpus.iter().enumerate() {
        let staged = staged_c(src, root.as_deref());
        assert_eq!(first[i], staged, "{label}: staged C differs from one-shot");
        // Second one-shot pass over a now well-grown arena.
        let again = one_shot_c(src, root.as_deref());
        assert_eq!(first[i], again, "{label}: recompile C differs");
    }
}

#[test]
fn failure_reports_are_stable_under_arena_recycling() {
    let errors_dir = repo_path("tests/errors");
    let mut entries: Vec<_> = std::fs::read_dir(&errors_dir)
        .unwrap()
        .filter_map(|e| {
            let p = e.unwrap().path();
            // `lint_*.lus` fixtures compile cleanly (they exist for the
            // static-analysis findings); this test is rejection-only.
            let rejected = p.extension().is_some_and(|x| x == "lus")
                && !p
                    .file_stem()
                    .is_some_and(|s| s.to_string_lossy().starts_with("lint_"));
            rejected.then_some(p)
        })
        .collect();
    entries.sort();
    assert!(
        !entries.is_empty(),
        "error corpus missing at {errors_dir:?}"
    );
    let dirtier = corpus();
    for path in entries {
        let src = std::fs::read_to_string(&path).unwrap();
        let report = |src: &str| -> String {
            match velus::compile(src, None) {
                Ok(_) => panic!("{path:?}: expected rejection"),
                Err(e) => FailureReport::from_diagnostics(&e.diagnostics(&SpanMap::new()), src)
                    .render_json(),
            }
        };
        let fresh = report(&src);
        velus_bench::json::check(&fresh).expect("well-formed report JSON");
        // Dirty the thread's recycled arenas with a successful compile
        // of an unrelated program, then re-reject: the report must be
        // byte-identical.
        let (_, dirty_src, dirty_root) = &dirtier[0];
        let _ = one_shot_c(dirty_src, dirty_root.as_deref());
        assert_eq!(
            fresh,
            report(&src),
            "{path:?}: FailureReport changed across arena recycling"
        );
    }
}

#[test]
fn frontend_scratch_pools_are_fully_reused_across_compiles() {
    let corpus = corpus();
    let mut scratch = FrontendScratch::<ClightOps>::new();
    // Grow the pools over the whole corpus once.
    for (label, src, _) in &corpus {
        velus_lustre::frontend_with::<ClightOps>(src, &mut scratch)
            .unwrap_or_else(|e| panic!("{label}: {e}"));
    }
    let grown = scratch.capacities();
    // Every further compile of corpus programs must fit in the existing
    // pools: identical capacities means zero pool reallocation.
    for _ in 0..2 {
        for (label, src, _) in &corpus {
            velus_lustre::frontend_with::<ClightOps>(src, &mut scratch)
                .unwrap_or_else(|e| panic!("{label}: {e}"));
            assert_eq!(
                grown,
                scratch.capacities(),
                "{label}: recycled front-end pools regrew"
            );
        }
    }
}
