//! Differential property testing: the paper's correctness theorem over
//! *randomly generated* programs.
//!
//! For arbitrary well-formed N-Lustre programs and arbitrary input
//! prefixes, the whole chain must agree: dataflow semantics (on the
//! unscheduled and scheduled programs), the exposed-memory semantics,
//! the Obc execution (fused and unfused, with `MemCorres` checked), and
//! the Clight execution (with `staterep` checked and the volatile trace
//! compared). This is the reproduction's substitute for the Coq
//! induction: exhaustive checking over a randomized program space.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use velus_common::Diagnostics;
use velus_testkit::gen::{gen_inputs, gen_program, GenConfig};

fn run_seed(seed: u64, cfg: &GenConfig, steps: usize) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let prog = gen_program(&mut rng, cfg);
    let root = prog.nodes.last().expect("programs are non-empty").name;
    let node = prog.node(root).expect("root exists").clone();
    let compiled = velus::compile_program(prog, root, Diagnostics::new())
        .map_err(|e| format!("seed {seed}: compile: {e}"))?;
    let inputs = gen_inputs(&mut rng, &node, steps);
    velus::validate(&compiled, &inputs, steps).map_err(|e| format!("seed {seed}: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// The end-to-end theorem on random integer/boolean programs.
    #[test]
    fn random_programs_validate(seed in any::<u64>()) {
        run_seed(seed, &GenConfig::default(), 12).map_err(TestCaseError::fail)?;
    }

    /// Deeper expressions and more sub-clocking.
    #[test]
    fn random_clock_heavy_programs_validate(seed in any::<u64>()) {
        let cfg = GenConfig {
            nodes: 4,
            eqs_per_node: 8,
            expr_depth: 4,
            subclock_pct: 70,
            floats: false,
        };
        run_seed(seed, &cfg, 10).map_err(TestCaseError::fail)?;
    }

    /// Floating-point programs: bit-exact agreement across all levels.
    #[test]
    fn random_float_programs_validate(seed in any::<u64>()) {
        let cfg = GenConfig { floats: true, ..GenConfig::default() };
        run_seed(seed, &cfg, 10).map_err(TestCaseError::fail)?;
    }
}

/// A fixed regression battery (fast, deterministic, no proptest retry
/// machinery) so that `cargo test` exercises a broad seed range even when
/// proptest shrinks its case budget.
#[test]
fn deterministic_seed_battery() {
    for seed in 0..40u64 {
        run_seed(seed, &GenConfig::default(), 10).unwrap();
    }
}
