//! Differential property testing: the paper's correctness theorem over
//! *randomly generated* programs.
//!
//! For arbitrary well-formed N-Lustre programs and arbitrary input
//! prefixes, the whole chain must agree: dataflow semantics (on the
//! unscheduled and scheduled programs), the exposed-memory semantics,
//! the Obc execution (fused and unfused, with `MemCorres` checked), the
//! Clight execution (with `staterep` checked and the volatile trace
//! compared), and staged-vs-one-shot C emission. This is the
//! reproduction's substitute for the Coq induction: exhaustive checking
//! over a randomized program space.
//!
//! The checking itself lives in `velus_testkit::campaign` — the same
//! engine that powers `velus-bench --bin diff` and the CI campaign —
//! so this suite is a thin proptest client: it picks seeds, the engine
//! does generate → compile → oracles → (on failure) shrink.

use proptest::prelude::*;

use velus_testkit::campaign::{run_seed, CampaignConfig, Profile, SeedOutcome};
use velus_testkit::gen::GenConfig;

/// A campaign configuration holding exactly one generator profile, with
/// mutation off: every seed must *agree*, not merely avoid failing.
fn single_profile(name: &'static str, gen: GenConfig, steps: usize) -> CampaignConfig {
    CampaignConfig {
        profiles: vec![Profile { name, gen, steps }],
        mutate_pct: 0,
        shrink_budget: 200,
    }
}

fn expect_agreed(seed: u64, cfg: &CampaignConfig) -> Result<(), String> {
    match run_seed(seed, cfg).outcome {
        SeedOutcome::Agreed => Ok(()),
        SeedOutcome::Failure(rep) => Err(format!(
            "seed {seed}: {} ({})\nshrunk to:\n{}",
            rep.kind.token(),
            rep.detail,
            rep.source
        )),
        other => Err(format!("seed {seed}: unexpected outcome {other:?}")),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    /// The end-to-end theorem on random integer/boolean programs.
    #[test]
    fn random_programs_validate(seed in any::<u64>()) {
        expect_agreed(seed, &single_profile("default", GenConfig::default(), 12))
            .map_err(TestCaseError::fail)?;
    }

    /// Deeper expressions and more sub-clocking.
    #[test]
    fn random_clock_heavy_programs_validate(seed in any::<u64>()) {
        let gen = GenConfig {
            nodes: 4,
            eqs_per_node: 8,
            expr_depth: 4,
            subclock_pct: 70,
            ..GenConfig::default()
        };
        expect_agreed(seed, &single_profile("clock-heavy", gen, 10))
            .map_err(TestCaseError::fail)?;
    }

    /// Floating-point programs: bit-exact agreement across all levels
    /// (`CVal` float equality is `to_bits()` equality — no tolerance).
    #[test]
    fn random_float_programs_validate(seed in any::<u64>()) {
        let gen = GenConfig { floats: true, ..GenConfig::default() };
        expect_agreed(seed, &single_profile("floats", gen, 10))
            .map_err(TestCaseError::fail)?;
    }

    /// Source-level mutants never *fail* the campaign: each is either
    /// rejected with a coded diagnostic, semantically vacuous, or still
    /// agrees — never a divergence, never a panic.
    #[test]
    fn random_mutants_are_handled_cleanly(seed in any::<u64>()) {
        let cfg = CampaignConfig {
            mutate_pct: 100,
            shrink_budget: 200,
            ..CampaignConfig::default()
        };
        match run_seed(seed, &cfg).outcome {
            SeedOutcome::Failure(rep) => {
                return Err(TestCaseError::fail(format!(
                    "seed {seed}: mutant {} ({})\n{}",
                    rep.kind.token(),
                    rep.detail,
                    rep.source
                )));
            }
            SeedOutcome::Agreed
            | SeedOutcome::MutantRejected { .. }
            | SeedOutcome::Vacuous => {}
        }
    }
}

/// A fixed regression battery (fast, deterministic, no proptest retry
/// machinery) so that `cargo test` exercises a broad seed range — across
/// all three stock profiles — even when proptest shrinks its case
/// budget.
#[test]
fn deterministic_seed_battery() {
    let cfg = CampaignConfig {
        mutate_pct: 0,
        shrink_budget: 200,
        ..CampaignConfig::default()
    };
    for seed in 0..60u64 {
        expect_agreed(seed, &cfg).unwrap();
    }
}
