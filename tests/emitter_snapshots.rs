//! The C emitter refactor safety net: emission must be byte-identical
//! to the pre-refactor emitter.
//!
//! `tests/snapshots/*.c` retains the output of the nested-`format!`
//! emitter (recorded before the single-buffer rewrite) for the whole
//! paper corpus; the streaming emitter must reproduce it exactly. On
//! top of the fixed corpus, a property test checks that the staged
//! `StagedPipeline::emit` path and the one-shot `compile` + `emit_c`
//! path agree byte-for-byte on randomly shaped industrial programs,
//! including sub-clocked ones, and that emission is deterministic.

use proptest::prelude::*;

use velus::passes::StagedPipeline;
use velus::{emit_c, TestIo};
use velus_testkit::industrial::{industrial_source, IndustrialConfig};

fn staged_c(source: &str, root: Option<&str>) -> String {
    let mut observe = |_: velus::Stage, _: std::time::Duration| {};
    let mut staged = StagedPipeline::from_source(source, root, &mut observe).expect("compiles");
    staged.emit(TestIo::Volatile).expect("emits")
}

#[test]
fn benchmarks_corpus_matches_the_retained_snapshots() {
    let snapshots = velus_repro::repo_root().join("tests/snapshots");
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&snapshots)
        .expect("snapshot directory exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "c"))
        .collect();
    entries.sort();
    for snapshot in entries {
        let name = snapshot
            .file_stem()
            .and_then(|s| s.to_str())
            .expect("snapshot file names are UTF-8");
        let source =
            std::fs::read_to_string(velus_repro::benchmark_path(name)).expect("benchmark exists");
        let expected = std::fs::read_to_string(&snapshot).expect("snapshot readable");
        let emitted = staged_c(&source, Some(name));
        assert_eq!(
            emitted, expected,
            "{name}: emitted C differs from the pre-refactor snapshot"
        );
        checked += 1;
    }
    // The snapshot set covers the whole paper corpus; a shrinking
    // directory would silently weaken this test.
    assert_eq!(checked, 14, "expected one snapshot per paper benchmark");
}

#[test]
fn emission_is_deterministic_per_pipeline() {
    let source =
        std::fs::read_to_string(velus_repro::benchmark_path("tracker")).expect("tracker exists");
    let mut observe = |_: velus::Stage, _: std::time::Duration| {};
    let mut staged =
        StagedPipeline::from_source(&source, Some("tracker"), &mut observe).expect("compiles");
    let first = staged.emit(TestIo::Volatile).expect("emits");
    let second = staged.emit(TestIo::Volatile).expect("emits again");
    assert_eq!(first, second, "re-emitting must be byte-stable");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 10, ..ProptestConfig::default() })]

    /// Random program shapes — including sub-clocked, fusion-heavy ones —
    /// emit byte-identical C through the staged pipeline and the
    /// one-shot path, in both I/O modes.
    #[test]
    fn staged_emit_equals_oneshot_on_generated_programs(
        nodes in 3usize..10,
        eqs_per_node in 3usize..8,
        fan_in in 0usize..3,
        subclock_depth in 0usize..3,
    ) {
        let cfg = IndustrialConfig { nodes, eqs_per_node, fan_in, subclock_depth };
        let source = industrial_source(&cfg);
        let root = format!("blk{}", nodes - 1);
        let oneshot = velus::compile(&source, Some(&root)).unwrap();
        prop_assert_eq!(
            staged_c(&source, Some(&root)),
            emit_c(&oneshot, TestIo::Volatile)
        );
        // The stdio test harness shares the emitter internals; keep it
        // covered by the same byte-equality property.
        let mut observe = |_: velus::Stage, _: std::time::Duration| {};
        let mut staged =
            StagedPipeline::from_source(&source, Some(&root), &mut observe).unwrap();
        prop_assert_eq!(
            staged.emit(TestIo::Stdio).unwrap(),
            emit_c(&oneshot, TestIo::Stdio)
        );
    }
}
