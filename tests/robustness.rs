//! The serving layer's fault-tolerance contract over the *real*
//! pipeline.
//!
//! * **Deadlines** — an already-expired `deadline_ms` fails the request
//!   with `DeadlineExceeded` before any pass runs, coded `E0802`.
//! * **Load shedding** — a zero-capacity admission queue sheds every
//!   asynchronous submission with `Overloaded`, coded `E0801`.
//! * **Goldens** — the JSON renderings of the service-level rejections
//!   are pinned under `tests/errors/golden/service_*.json` (regenerate
//!   with `VELUS_REGEN_GOLDEN=1 cargo test --test robustness`), so the
//!   machine-readable shape clients retry on cannot drift silently.

use velus::service::{service, ServiceConfig};
use velus::CompileRequest;
use velus_server::{AdmissionConfig, ServiceError};

const PROGRAM: &str = "node main(x: int) returns (y: int)\n\
                       var acc: int;\n\
                       let\n\
                         acc = (0 fby acc) + x;\n\
                         y = if acc > 100 then 0 else acc;\n\
                       tel\n";

fn repo_path(rel: &str) -> std::path::PathBuf {
    velus_repro::repo_root().join(rel)
}

/// Same regeneration protocol as `tests/diagnostics.rs`.
fn check_golden(name: &str, actual: &str) {
    let path = repo_path(&format!("tests/errors/golden/{name}.json"));
    if std::env::var("VELUS_REGEN_GOLDEN").is_ok() {
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|_| {
        panic!("missing golden {path:?}; regenerate with VELUS_REGEN_GOLDEN=1")
    });
    assert_eq!(
        actual.trim_end_matches('\n'),
        expected.trim_end_matches('\n'),
        "golden mismatch for {name}.json; regenerate with VELUS_REGEN_GOLDEN=1 if intended"
    );
}

#[test]
fn an_expired_deadline_fails_the_real_pipeline_with_e0802() {
    let svc = service(ServiceConfig::default());
    let req = CompileRequest::new("deadline", PROGRAM).with_deadline_ms(0);
    let report = svc.compile_one(req);
    let err = match report.result {
        Ok(_) => panic!("expired deadline must reject"),
        Err(e) => e,
    };
    assert!(matches!(err, ServiceError::DeadlineExceeded), "{err}");
    let failure = err.failure_report();
    assert_eq!(failure.primary_code(), Some("E0802"));
    velus_bench::json::check(&failure.render_json()).expect("well-formed JSON rendering");
    let stats = svc.stats();
    assert_eq!(stats.deadline_exceeded, 1);
    assert!(stats.failure_codes.contains(&("E0802", 1)));
    check_golden("service_deadline_exceeded", &failure.render_json());
}

#[test]
fn a_full_admission_queue_sheds_submissions_with_e0801() {
    let svc = service(ServiceConfig {
        workers: 1,
        admission: AdmissionConfig {
            queue_cap: Some(0),
            cost_budget_ms: None,
        },
        ..Default::default()
    });
    let sub = svc.submit(CompileRequest::new("shed", PROGRAM));
    assert!(!sub.admitted());
    let report = sub.wait();
    let err = match report.result {
        Ok(_) => panic!("zero-capacity queue must shed"),
        Err(e) => e,
    };
    assert!(matches!(err, ServiceError::Overloaded { .. }), "{err}");
    let failure = err.failure_report();
    assert_eq!(failure.primary_code(), Some("E0801"));
    velus_bench::json::check(&failure.render_json()).expect("well-formed JSON rendering");
    let stats = svc.stats();
    assert_eq!(stats.shed, 1);
    assert!(stats.failure_codes.contains(&("E0801", 1)));
    check_golden("service_overloaded", &failure.render_json());
}

#[test]
fn a_sane_deadline_lets_the_real_pipeline_finish() {
    let svc = service(ServiceConfig::default());
    let req = CompileRequest::new("relaxed", PROGRAM).with_deadline_ms(60_000);
    let report = svc.compile_one(req);
    assert!(
        report.result.is_ok(),
        "{:?}",
        report.result.err().map(|e| e.to_string())
    );
    assert_eq!(report.attempts, 1);
    assert_eq!(svc.stats().deadline_exceeded, 0);
}
