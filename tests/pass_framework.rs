//! Properties of the staged pass framework: driving the `PassManager`
//! stage by stage — with explicit re-validation between stages — must
//! be observationally identical to the one-shot `velus::compile` path,
//! for the paper corpus and for randomly shaped generated programs
//! (including sub-clocked ones).

use proptest::prelude::*;

use velus::passes::{
    CheckPass, ElaboratePass, EmitInput, EmitPass, FrontendInput, FusePass, GenerateInput,
    GeneratePass, Pass, PassManager, SchedulePass, TranslatePass,
};
use velus::{emit_c, TestIo};
use velus_common::SpanMap;
use velus_testkit::industrial::{industrial_source, IndustrialConfig};

/// Compiles by invoking every pass individually through a
/// [`PassManager`], re-running each pass's validation hook between
/// stages (on top of the hook the manager already runs), and returns
/// the emitted C.
fn stagewise_c(source: &str, root: Option<&str>) -> String {
    let mut stages = Vec::new();
    let mut observe = |stage: velus::Stage, _: std::time::Duration| stages.push(stage);
    let mut pm = PassManager::new(&mut observe);

    let elaborated = pm
        .run(
            &ElaboratePass,
            FrontendInput { source, root },
            &SpanMap::new(),
        )
        .expect("elaborate");
    let root = elaborated.root;
    let spans = elaborated.spans;
    let nlustre = pm
        .run(&CheckPass, elaborated.nlustre, &spans)
        .expect("check");
    CheckPass.revalidate(&nlustre).expect("re-check");

    let snlustre = pm.run(&SchedulePass, nlustre, &spans).expect("schedule");
    SchedulePass
        .revalidate(&snlustre)
        .expect("re-check schedule");

    let obc = pm
        .run(&TranslatePass, &snlustre, &spans)
        .expect("translate");
    TranslatePass
        .revalidate(&obc)
        .expect("re-check translation");

    let obc_fused = pm.run(&FusePass, &obc, &spans).expect("fuse");
    FusePass.revalidate(&obc_fused).expect("re-check fusion");

    let clight = pm
        .run(
            &GeneratePass,
            GenerateInput {
                obc_fused: &obc_fused,
                root,
            },
            &spans,
        )
        .expect("generate");
    let c = pm
        .run(
            &EmitPass,
            EmitInput {
                clight: &clight,
                io: TestIo::Volatile,
            },
            &spans,
        )
        .expect("emit");
    // Every stage reported, in pipeline order.
    assert_eq!(
        stages,
        vec![
            velus::Stage::Frontend,
            velus::Stage::Check,
            velus::Stage::Schedule,
            velus::Stage::Translate,
            velus::Stage::Fuse,
            velus::Stage::Generate,
            velus::Stage::Emit,
        ]
    );
    c
}

#[test]
fn stagewise_equals_oneshot_on_the_paper_corpus() {
    for name in ["tracker", "count", "cruise", "watchdog3", "minus"] {
        let source = std::fs::read_to_string(velus_repro::benchmark_path(name)).unwrap();
        let oneshot = velus::compile(&source, Some(name)).unwrap();
        assert_eq!(
            stagewise_c(&source, Some(name)),
            emit_c(&oneshot, TestIo::Volatile),
            "{name}: stagewise and one-shot C must be byte-identical"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Random program shapes — including sub-clocked, fusion-heavy ones —
    /// compile to byte-identical C whether the pipeline runs in one shot
    /// or pass by pass with re-validation between passes.
    #[test]
    fn stagewise_equals_oneshot_on_generated_programs(
        nodes in 3usize..10,
        eqs_per_node in 3usize..8,
        fan_in in 0usize..3,
        subclock_depth in 0usize..3,
    ) {
        let cfg = IndustrialConfig { nodes, eqs_per_node, fan_in, subclock_depth };
        let source = industrial_source(&cfg);
        let root = format!("blk{}", nodes - 1);
        let oneshot = velus::compile(&source, Some(&root)).unwrap();
        prop_assert_eq!(
            stagewise_c(&source, Some(&root)),
            emit_c(&oneshot, TestIo::Volatile)
        );
    }
}
