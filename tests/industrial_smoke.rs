//! Smoke tests for the industrial-scale generator (§5): a reduced
//! configuration must compile through the full pipeline and validate.

use velus_common::{Diagnostics, Ident};
use velus_testkit::industrial::{industrial_program, industrial_source, IndustrialConfig};

#[test]
fn small_industrial_program_compiles_and_validates() {
    // The fan-in-2 netlist produces an instance tree of depth ~12, which
    // the demand-driven interpreter traverses recursively: use a big
    // stack, as the CLI does.
    velus_common::with_stack(256, || {
        let cfg = IndustrialConfig {
            nodes: 12,
            eqs_per_node: 10,
            fan_in: 2,
            subclock_depth: 0,
        };
        let prog = industrial_program(&cfg);
        let root = Ident::new("blk11");
        let compiled = velus::compile_program(prog, root, Diagnostics::new()).unwrap();
        let inputs = velus::validate::default_inputs(&compiled, 10);
        velus::validate(&compiled, &inputs, 10).unwrap();
    });
}

#[test]
fn industrial_source_compiles_through_the_frontend() {
    let cfg = IndustrialConfig {
        nodes: 20,
        eqs_per_node: 12,
        fan_in: 2,
        subclock_depth: 0,
    };
    let src = industrial_source(&cfg);
    let compiled = velus::compile(&src, Some("blk19")).unwrap();
    assert_eq!(compiled.snlustre.nodes.len(), 20);
    // The generated step function exists in the Clight output.
    assert!(compiled
        .clight
        .function(velus_clight::generate::method_fn_name(
            Ident::new("blk19"),
            velus_obc::ast::step_name()
        ))
        .is_some());
}

#[test]
fn fusion_heavy_corpus_compiles_and_validates() {
    // The fusion-heavy preset (sub-clocked clusters at depth 2) must go
    // through the full pipeline — including fusion and its preservation
    // re-checks — and through the executable semantics.
    velus_common::with_stack(256, || {
        let cfg = IndustrialConfig::fusion_heavy();
        let prog = industrial_program(&cfg);
        let root = Ident::new(&format!("blk{}", cfg.nodes - 1));
        let compiled = velus::compile_program(prog, root, Diagnostics::new()).unwrap();
        let inputs = velus::validate::default_inputs(&compiled, 8);
        velus::validate(&compiled, &inputs, 8).unwrap();
    });
}

#[test]
fn medium_industrial_compile_time_is_sane() {
    // Not a benchmark — just a guard that complexity is near-linear
    // enough for the full experiment to be runnable.
    let cfg = IndustrialConfig {
        nodes: 150,
        eqs_per_node: 24,
        fan_in: 2,
        subclock_depth: 0,
    };
    let prog = industrial_program(&cfg);
    let root = Ident::new("blk149");
    let start = std::time::Instant::now();
    let compiled = velus::compile_program(prog, root, Diagnostics::new()).unwrap();
    assert!(compiled.snlustre.equation_count() > 3000);
    assert!(
        start.elapsed() < std::time::Duration::from_secs(60),
        "compilation took {:?}",
        start.elapsed()
    );
}
