//! Golden test: the semantic table of §2.2 for the Fig. 3 `tracker`,
//! including the internal streams the paper prints.

use velus_common::Ident;
use velus_nlustre::dataflow::Dataflow;
use velus_nlustre::streams::{SVal, StreamSet};
use velus_ops::{CVal, ClightOps};

fn table_inputs(n: usize) -> StreamSet<ClightOps> {
    let acc = [0, 2, 4, -2, 0, 3, -3, 2];
    vec![
        acc.iter()
            .take(n)
            .map(|&v| SVal::Pres(CVal::int(v)))
            .collect(),
        (0..n).map(|_| SVal::Pres(CVal::int(5))).collect(),
    ]
}

fn int_row(eval: &mut Dataflow<'_, ClightOps>, var: &str, n: usize) -> Vec<Option<i32>> {
    (0..n)
        .map(|i| match eval.var(Ident::new(var), i).unwrap() {
            SVal::Abs => None,
            SVal::Pres(CVal::Int(v)) => Some(v),
            other => panic!("unexpected value {other:?} for {var}"),
        })
        .collect()
}

fn bool_row(eval: &mut Dataflow<'_, ClightOps>, var: &str, n: usize) -> Vec<bool> {
    (0..n)
        .map(|i| match eval.var(Ident::new(var), i).unwrap() {
            SVal::Pres(v) => v == CVal::bool(true),
            SVal::Abs => panic!("{var} absent"),
        })
        .collect()
}

#[test]
fn the_semantic_table_of_section_2_2() {
    let source = std::fs::read_to_string(velus_repro::benchmark_path("tracker")).unwrap();
    let compiled = velus::compile(&source, Some("tracker")).unwrap();
    let n = 8;
    let mut eval =
        Dataflow::new(&compiled.snlustre, Ident::new("tracker"), table_inputs(n)).unwrap();

    let some = |vs: &[i32]| vs.iter().map(|&v| Some(v)).collect::<Vec<_>>();

    // The rows exactly as printed in the paper.
    assert_eq!(int_row(&mut eval, "s", n), some(&[0, 2, 6, 4, 4, 7, 4, 6]));
    assert_eq!(
        int_row(&mut eval, "p", n),
        some(&[0, 2, 8, 12, 16, 23, 27, 33])
    );
    assert_eq!(
        bool_row(&mut eval, "x", n),
        vec![false, false, true, false, false, true, false, true]
    );
    // c is present only when x is true: 1, 2, 3 at instants 2, 5, 7.
    assert_eq!(
        int_row(&mut eval, "c", n),
        vec![None, None, Some(1), None, None, Some(2), None, Some(3)]
    );
    assert_eq!(int_row(&mut eval, "t", n), some(&[0, 0, 1, 1, 1, 2, 2, 3]));
    assert_eq!(int_row(&mut eval, "pt", n), some(&[0, 0, 0, 1, 1, 1, 2, 2]));
}

#[test]
fn tracker_validates_on_the_table_inputs() {
    let source = std::fs::read_to_string(velus_repro::benchmark_path("tracker")).unwrap();
    let compiled = velus::compile(&source, Some("tracker")).unwrap();
    velus::validate(&compiled, &table_inputs(8), 8).unwrap();
}

#[test]
fn figure3_counter_with_zero_init_differs_as_documented() {
    // With the figure's literal `counter(0 when x, …)` the first
    // activation yields 0, not 1 — the erratum recorded in DESIGN.md.
    let source = std::fs::read_to_string(velus_repro::benchmark_path("tracker"))
        .unwrap()
        .replace("counter(1 when x", "counter(0 when x");
    let compiled = velus::compile(&source, Some("tracker")).unwrap();
    let mut eval =
        Dataflow::new(&compiled.snlustre, Ident::new("tracker"), table_inputs(8)).unwrap();
    assert_eq!(
        int_row(&mut eval, "c", 8),
        vec![None, None, Some(0), None, None, Some(1), None, Some(2)]
    );
}

#[test]
fn fused_obc_matches_the_section_3_3_shape() {
    // §3.3 shows the fused step of tracker: the two conditionals on x
    // merge into one, followed by the state update of pt.
    let source = std::fs::read_to_string(velus_repro::benchmark_path("tracker")).unwrap();
    let compiled = velus::compile(&source, Some("tracker")).unwrap();
    let class = compiled
        .obc_fused
        .class(Ident::new("tracker"))
        .expect("tracker class");
    let step = class
        .method(velus_obc::ast::step_name())
        .expect("step method")
        .body
        .to_string();
    // Exactly one conditional on x after fusion (unfused code has two).
    assert_eq!(step.matches("if x {").count(), 1, "{step}");
    assert!(step.contains("state(pt) := t;"), "{step}");
    // The unfused version really had two.
    let unfused = compiled
        .obc
        .class(Ident::new("tracker"))
        .unwrap()
        .method(velus_obc::ast::step_name())
        .unwrap()
        .body
        .to_string();
    assert_eq!(unfused.matches("if x {").count(), 2, "{unfused}");

    // The reset method matches the paper's listing: sub-resets plus the
    // constant state initialization.
    let reset = class
        .method(velus_obc::ast::reset_name())
        .expect("reset method")
        .body
        .to_string();
    assert!(reset.contains(".reset();"), "{reset}");
    assert!(reset.contains("state(pt) := 0;"), "{reset}");
}

#[test]
fn generated_c_matches_figure_9_structure() {
    let source = std::fs::read_to_string(velus_repro::benchmark_path("tracker")).unwrap();
    let compiled = velus::compile(&source, Some("tracker")).unwrap();
    let c = velus::emit_c(&compiled, velus::TestIo::Volatile);
    // Fig. 9's structural landmarks (names are sanitized: $ -> __).
    assert!(c.contains("struct tracker {"), "{c}");
    assert!(c.contains("struct tracker__step {"), "{c}");
    assert!(c.contains("struct d_integrator"), "{c}");
    assert!(
        c.contains("void tracker__step(struct tracker* self, struct tracker__step* out"),
        "{c}"
    );
    assert!(c.contains("d_integrator__step(&(*self)."), "{c}");
    assert!(c.contains("(*self).pt = (*out).t;"), "{c}");
}
