//! The seed corpus: every reproducer checked in under
//! `tests/diff_seeds/` — a `.lus` + `.json` pair emitted by the
//! differential campaign when it finds a divergence or a panic — is
//! replayed against the current compiler. A record is green when the
//! failure no longer manifests: the oracles may now agree, or the
//! compiler may (legitimately) reject what was once accepted; what must
//! never come back is the recorded divergence or panic.
//!
//! The directory may be empty (bugs get fixed and, eventually, stale
//! records deleted); the test tolerates that, and separately exercises
//! the write → read → replay machinery through a temporary directory so
//! the corpus workflow itself stays tested.

use std::path::{Path, PathBuf};

use rand::rngs::StdRng;
use rand::SeedableRng;

use velus_testkit::campaign::{
    record_name, replay, write_reproducer, FailureInfo, FailureKind, Reproducer, ShrinkStats,
};
use velus_testkit::gen::{gen_inputs, gen_program, GenConfig};
use velus_testkit::render::lustre_source;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/diff_seeds")
}

#[test]
fn checked_in_reproducers_no_longer_fail() {
    let dir = corpus_dir();
    if !dir.is_dir() {
        return; // An empty corpus is a healthy corpus.
    }
    let mut replayed = 0usize;
    let mut entries: Vec<PathBuf> = std::fs::read_dir(&dir)
        .expect("corpus directory is readable")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    for json_path in entries {
        let record = std::fs::read_to_string(&json_path)
            .unwrap_or_else(|e| panic!("{}: {e}", json_path.display()));
        let parsed = velus_testkit::json::parse(&record)
            .unwrap_or_else(|e| panic!("{}: malformed record: {e}", json_path.display()));
        let source_file = parsed
            .get("source_file")
            .and_then(|v| v.as_str())
            .unwrap_or_else(|| panic!("{}: record lacks source_file", json_path.display()));
        let source = std::fs::read_to_string(dir.join(source_file))
            .unwrap_or_else(|e| panic!("{}: {e}", json_path.display()));
        let outcome = replay(&record, &source)
            .unwrap_or_else(|e| panic!("{}: unreplayable record: {e}", json_path.display()));
        assert!(
            outcome.acceptable_on_replay(),
            "{}: recorded failure reproduces again: {outcome:?}",
            json_path.display()
        );
        replayed += 1;
    }
    // The corpus currently holds the seed-306 generator finding
    // (INT_MIN / -1); if records are ever pruned this assertion goes
    // with them.
    assert!(replayed >= 1, "expected at least the seed-306 record");
}

#[test]
fn reproducer_records_round_trip_through_disk_and_replay() {
    // Package a healthy program as a synthetic "divergence" record,
    // write it through the real corpus writer into a temp directory,
    // read both files back, and replay: the parsed record must drive a
    // full re-check that finds the failure gone.
    let mut rng = StdRng::seed_from_u64(41);
    let prog = gen_program(&mut rng, &GenConfig::default());
    let root = prog.nodes.last().expect("non-empty").name;
    let node = prog.node(root).expect("root exists").clone();
    let inputs = gen_inputs(&mut rng, &node, 6);
    let rep = Reproducer {
        seed: 41,
        profile: "default".to_owned(),
        gen: GenConfig::default(),
        mutated: false,
        kind: FailureKind::Divergence,
        info: Some(FailureInfo {
            oracle: "clight".to_owned(),
            instant: Some(1),
            output: Some(0),
            left: "0".to_owned(),
            right: "1".to_owned(),
        }),
        detail: "synthetic record for the disk round-trip test".to_owned(),
        source: lustre_source(&prog),
        root: Some(root.to_string()),
        steps: 6,
        inputs: Some(inputs),
        shrink: ShrinkStats::default(),
    };

    let dir = std::env::temp_dir().join(format!("velus-diff-seeds-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (lus, json) = write_reproducer(&dir, &rep).expect("corpus write");
    assert_eq!(
        lus.file_name().and_then(|n| n.to_str()),
        Some(format!("{}.lus", record_name(41)).as_str())
    );
    let record = std::fs::read_to_string(&json).unwrap();
    let source = std::fs::read_to_string(&lus).unwrap();
    let outcome = replay(&record, &source).expect("replayable");
    assert!(
        outcome.acceptable_on_replay(),
        "healthy program replayed as failing: {outcome:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
