//! Property tests for the fusion optimization (§3.3) at the Obc level:
//! on translated (hence `Fusible`) code, `fuse` preserves the big-step
//! semantics and the `Fusible` predicate, and never increases statement
//! count.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

use velus_common::Diagnostics;
use velus_obc::ast::ObcProgram;
use velus_obc::fusion::{fuse_program, fusible};
use velus_obc::sem::run_class;
use velus_ops::{CVal, ClightOps};
use velus_testkit::gen::{gen_inputs, gen_program, GenConfig};

fn translated(seed: u64) -> (ObcProgram<ClightOps>, velus::Compiled) {
    let mut rng = StdRng::seed_from_u64(seed);
    let prog = gen_program(&mut rng, &GenConfig::default());
    let root = prog.nodes.last().expect("non-empty").name;
    let compiled =
        velus::compile_program(prog, root, Diagnostics::new()).expect("generated programs compile");
    (compiled.obc.clone(), compiled)
}

fn obc_inputs(seed: u64, c: &velus::Compiled, n: usize) -> Vec<Option<Vec<CVal>>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xabcdef);
    let node = c.snlustre.node(c.root).expect("root").clone();
    let streams = gen_inputs(&mut rng, &node, n);
    (0..n)
        .map(|i| {
            Some(
                streams
                    .iter()
                    .map(|s| *s[i].value().expect("all-present"))
                    .collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn translate_output_is_fusible(seed in any::<u64>()) {
        let (obc, _) = translated(seed);
        for class in &obc.classes {
            for m in &class.methods {
                prop_assert!(fusible(&m.body), "{}.{} not fusible", class.name, m.name);
            }
        }
    }

    #[test]
    fn fuse_preserves_semantics_and_fusible(seed in any::<u64>()) {
        let (obc, compiled) = translated(seed);
        let fused = fuse_program(&obc);
        for class in &fused.classes {
            for m in &class.methods {
                prop_assert!(fusible(&m.body));
            }
        }
        let inputs = obc_inputs(seed, &compiled, 8);
        let a = run_class(&obc, compiled.root, &inputs).map_err(|e| {
            TestCaseError::fail(format!("unfused: {e}"))
        })?;
        let b = run_class(&fused, compiled.root, &inputs).map_err(|e| {
            TestCaseError::fail(format!("fused: {e}"))
        })?;
        prop_assert_eq!(a, b);
    }

    #[test]
    fn fuse_never_grows_code(seed in any::<u64>()) {
        let (obc, _) = translated(seed);
        let fused = fuse_program(&obc);
        let size = |p: &ObcProgram<ClightOps>| {
            p.classes
                .iter()
                .flat_map(|c| &c.methods)
                .map(|m| m.body.size())
                .sum::<usize>()
        };
        prop_assert!(size(&fused) <= size(&obc));
    }

    #[test]
    fn fuse_is_idempotent_on_translated_code(seed in any::<u64>()) {
        let (obc, _) = translated(seed);
        let once = fuse_program(&obc);
        let twice = fuse_program(&once);
        prop_assert_eq!(once, twice);
    }
}
