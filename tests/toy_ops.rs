//! Parametricity of the front/middle end (§4.1): the dataflow layer, the
//! translation to Obc, the fusion optimization and the Obc interpreter
//! all run over a *different* instantiation of the operator interface —
//! the toy `I64Ops` — without touching Clight.
//!
//! This keeps honest the paper's claim that the compiler "can be
//! instantiated to any suitable language or for different variations of
//! a given language".

use velus_common::Ident;
use velus_nlustre::ast::{CExpr, Equation, Expr, Node, Program, VarDecl};
use velus_nlustre::clock::Clock;
use velus_nlustre::streams::SVal;
use velus_ops::toy::{I64Ops, ToyBinOp, ToyTy, ToyVal};
use velus_ops::Ops;

fn id(s: &str) -> Ident {
    Ident::new(s)
}

/// The accumulator node over the toy interface:
/// `y = cum + x; cum = 0 fby y`.
fn toy_accumulator() -> Program<I64Ops> {
    Program::new(vec![Node {
        name: id("acc"),
        inputs: vec![VarDecl {
            name: id("x"),
            ty: ToyTy::Int,
            ck: Clock::Base,
        }],
        outputs: vec![VarDecl {
            name: id("y"),
            ty: ToyTy::Int,
            ck: Clock::Base,
        }],
        locals: vec![VarDecl {
            name: id("cum"),
            ty: ToyTy::Int,
            ck: Clock::Base,
        }],
        eqs: vec![
            Equation::Def {
                x: id("y"),
                ck: Clock::Base,
                rhs: CExpr::Expr(Expr::Binop(
                    ToyBinOp::Add,
                    Box::new(Expr::Var(id("cum"), ToyTy::Int)),
                    Box::new(Expr::Var(id("x"), ToyTy::Int)),
                    ToyTy::Int,
                )),
            },
            Equation::Fby {
                x: id("cum"),
                ck: Clock::Base,
                init: ToyVal::Int(0),
                rhs: Expr::Var(id("y"), ToyTy::Int),
            },
        ],
    }])
}

#[test]
fn the_dataflow_layer_is_parametric() {
    let prog = toy_accumulator();
    velus_nlustre::typecheck::check_program(&prog).unwrap();
    velus_nlustre::clockcheck::check_program_clocks(&prog).unwrap();
    let inputs = vec![(1..=5).map(|v| SVal::Pres(ToyVal::Int(v))).collect()];
    let outs = velus_nlustre::dataflow::run_node(&prog, id("acc"), &inputs, 5).unwrap();
    let vals: Vec<i64> = outs[0]
        .iter()
        .map(|v| match v {
            SVal::Pres(ToyVal::Int(i)) => *i,
            other => panic!("{other:?}"),
        })
        .collect();
    assert_eq!(vals, vec![1, 3, 6, 10, 15]);
}

#[test]
fn translation_and_obc_are_parametric() {
    let mut prog = toy_accumulator();
    velus_nlustre::schedule::schedule_program(&mut prog).unwrap();
    let obc = velus_obc::translate::translate_program(&prog).unwrap();
    velus_obc::typecheck::check_program(&obc).unwrap();
    let fused = velus_obc::fusion::fuse_program(&obc);

    let inputs: Vec<Option<Vec<ToyVal>>> = (1..=4).map(|v| Some(vec![ToyVal::Int(v)])).collect();
    let outs = velus_obc::sem::run_class(&fused, id("acc"), &inputs).unwrap();
    let vals: Vec<i64> = outs
        .iter()
        .map(|o| match o.as_ref().unwrap()[0] {
            ToyVal::Int(i) => i,
            ToyVal::Bool(_) => panic!("bool output"),
        })
        .collect();
    assert_eq!(vals, vec![1, 3, 6, 10]);
}

#[test]
fn the_memory_semantics_is_parametric() {
    let mut prog = toy_accumulator();
    velus_nlustre::schedule::schedule_program(&mut prog).unwrap();
    let inputs = vec![(1..=4).map(|v| SVal::Pres(ToyVal::Int(v))).collect()];
    let (outs, mem) =
        velus_nlustre::msem::run_node_with_memory(&prog, id("acc"), &inputs, 4).unwrap();
    assert_eq!(outs[0].len(), 4);
    // M.values(cum) = 0, 1, 3, 6 (the pre-instant states).
    assert_eq!(
        mem.values[&id("cum")],
        vec![
            ToyVal::Int(0),
            ToyVal::Int(1),
            ToyVal::Int(3),
            ToyVal::Int(6)
        ]
    );
}

#[test]
fn the_toy_interface_satisfies_the_laws() {
    assert_ne!(I64Ops::true_val(), I64Ops::false_val());
    for c in [ToyVal::Int(3), ToyVal::Bool(true)] {
        assert!(I64Ops::well_typed(
            &I64Ops::sem_const(&c),
            &I64Ops::type_of_const(&c)
        ));
    }
}
