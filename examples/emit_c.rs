//! Emits the C code the paper shows in Fig. 9: the `tracker$step`
//! function with its `self`/`out` pointer threading, out-structs for
//! multiple return values, and the test-mode `main`.
//!
//! ```text
//! cargo run --example emit_c [benchmark-name]
//! ```

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tracker".to_owned());
    let path = velus_repro::benchmark_path(&name);
    let source = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let compiled = velus::compile(&source, Some(&name))?;

    println!("/* ===== volatile-I/O form (the correctness statement's view) ===== */");
    println!("{}", velus::emit_c(&compiled, velus::TestIo::Volatile));
    println!("/* ===== stdio test mode (the paper's scanf/printf entry point) ===== */");
    let stdio = velus::emit_c(&compiled, velus::TestIo::Stdio);
    // Print only the main of the second form to avoid repeating the body.
    let mut in_main = false;
    for line in stdio.lines() {
        if line.starts_with("int main") {
            in_main = true;
        }
        if in_main {
            println!("{line}");
        }
    }
    Ok(())
}
