//! Simulates the cruise-control benchmark over a driving scenario using
//! the instant-by-instant memory semantics (§3.2) — the model a control
//! engineer would step through.
//!
//! ```text
//! cargo run --example cruise_sim
//! ```

use velus_common::Ident;
use velus_nlustre::msem::MSem;
use velus_nlustre::streams::SVal;
use velus_ops::{CVal, ClightOps};

fn bool_v(b: bool) -> SVal<ClightOps> {
    SVal::Pres(CVal::bool(b))
}

fn real_v(x: f64) -> SVal<ClightOps> {
    SVal::Pres(CVal::float(x))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(velus_repro::benchmark_path("cruise"))?;
    let compiled = velus::compile(&source, Some("cruise"))?;
    let mut sim = MSem::new(&compiled.snlustre, Ident::new("cruise"))?;

    println!("instant | onoff brake | speed  -> throttle active");
    let mut speed = 20.0f64;
    for i in 0..30usize {
        // Scenario: engage at 5, ask for more speed 10..14, brake at 22.
        let onoff = i == 5;
        let brake = i == 22;
        let faster = (10..14).contains(&i);
        // inputs: onoff, brake, faster, slower, speed
        let outs = sim.step(&[
            bool_v(onoff),
            bool_v(brake),
            bool_v(faster),
            bool_v(false),
            real_v(speed),
        ])?;
        let throttle = match &outs[0] {
            SVal::Pres(CVal::Float(x)) => *x,
            other => panic!("unexpected throttle {other:?}"),
        };
        let active = matches!(&outs[1], SVal::Pres(v) if *v == CVal::bool(true));
        // A toy plant: speed follows throttle with drag.
        speed += throttle * 0.05 - (speed - 18.0) * 0.02;
        println!(
            "{i:>7} | {:>5} {:>5} | {speed:>6.2} -> {throttle:>8.3} {active}",
            onoff as u8, brake as u8
        );
    }
    Ok(())
}
