//! Quickstart: compile a Lustre node to C and run its dataflow semantics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use velus_nlustre::streams::{present_streams, StreamSet};
use velus_ops::{CVal, ClightOps};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's introductory counter (§2).
    let source = "
        node counter(ini, inc: int; res: bool) returns (n: int)
        let
          n = if (true fby false) or res then ini else (0 fby n) + inc;
        tel
    ";

    // 1. Compile the whole chain: Lustre -> N-Lustre -> SN-Lustre -> Obc
    //    -> fused Obc -> Clight.
    let compiled = velus::compile(source, None)?;
    println!("== scheduled SN-Lustre ==\n{}\n", compiled.snlustre);
    println!("== fused Obc ==\n{}\n", compiled.obc_fused);

    // 2. Emit compilable C.
    let c_code = velus::emit_c(&compiled, velus::TestIo::Stdio);
    println!("== generated C ({} bytes) ==", c_code.len());
    for line in c_code.lines().take(24) {
        println!("{line}");
    }
    println!("...\n");

    // 3. Run the reference dataflow semantics on some inputs.
    let n = 8;
    let inputs: StreamSet<ClightOps> = present_streams::<ClightOps>(vec![
        (0..n).map(|_| CVal::int(100)).collect(),     // ini
        (0..n).map(CVal::int).collect(),              // inc
        (0..n).map(|i| CVal::bool(i == 5)).collect(), // res
    ]);
    let outputs =
        velus_nlustre::dataflow::run_node(&compiled.snlustre, compiled.root, &inputs, n as usize)?;
    print!("counter outputs:");
    for v in &outputs[0] {
        print!(" {v}");
    }
    println!();

    // 4. Validate the paper's correctness statement on this prefix: all
    //    semantic levels and the volatile trace agree.
    let report = velus::validate_with_report(&compiled, &inputs, n as usize)?;
    println!(
        "validated {} instants ({} MemCorres, {} staterep, {} trace events)",
        report.instants, report.memcorres_checks, report.staterep_checks, report.trace_events
    );
    Ok(())
}
