//! Drives the batch compilation service over the benchmark corpus: a
//! cold pass on the worker pool, a warm pass served entirely from the
//! content-addressed cache, and the service's latency statistics.
//!
//! ```text
//! cargo run --example batch_service
//! ```

use velus::service::{service, ServiceConfig};
use velus::CompileRequest;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let names = ["tracker", "count", "cruise", "chrono", "watchdog3", "minus"];
    let requests: Vec<CompileRequest> = names
        .iter()
        .map(|name| {
            let source = std::fs::read_to_string(velus_repro::benchmark_path(name))?;
            Ok(CompileRequest::new(*name, source).with_root(*name))
        })
        .collect::<Result<_, std::io::Error>>()?;

    let svc = service(ServiceConfig {
        workers: 4,
        caching: true,
        ..Default::default()
    });

    let cold = svc.compile_batch(requests.clone());
    println!(
        "cold pass: {} ok / {} programs in {:.2?} ({:.1} programs/s)",
        cold.ok_count(),
        cold.items.len(),
        cold.wall,
        cold.throughput()
    );

    let warm = svc.compile_batch(requests);
    println!(
        "warm pass: {} cache hits in {:.2?} ({:.1} programs/s)",
        warm.hit_count(),
        warm.wall,
        warm.throughput()
    );
    for (a, b) in cold.items.iter().zip(&warm.items) {
        let (ca, cb) = (a.primary().unwrap(), b.primary().unwrap());
        assert_eq!(
            ca.c_code(),
            cb.c_code(),
            "{}: warm C must be byte-identical",
            a.name
        );
    }
    println!("warm C is byte-identical to the cold pass for all programs\n");
    println!("{}", svc.stats());
    Ok(())
}
