//! Reproduces the semantic table of §2.2 for the `tracker` node of
//! Fig. 3, including the *internal* streams (s, x, c, t, pt) that the
//! paper prints.
//!
//! ```text
//! cargo run --example tracker
//! ```

use velus_common::Ident;
use velus_nlustre::dataflow::Dataflow;
use velus_nlustre::streams::{SVal, StreamSet};
use velus_ops::{CVal, ClightOps};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let source = std::fs::read_to_string(velus_repro::benchmark_path("tracker"))?;
    let compiled = velus::compile(&source, Some("tracker"))?;

    // The paper's inputs: acc as below, limit constantly 5.
    let acc = [0, 2, 4, -2, 0, 3, -3, 2];
    let n = acc.len();
    let inputs: StreamSet<ClightOps> = vec![
        acc.iter().map(|&v| SVal::Pres(CVal::int(v))).collect(),
        (0..n).map(|_| SVal::Pres(CVal::int(5))).collect(),
    ];

    let mut eval = Dataflow::new(&compiled.snlustre, Ident::new("tracker"), inputs.clone())?;
    let mut table: Vec<(String, Vec<String>)> = Vec::new();
    for var in ["acc", "limit", "s", "p", "x", "c", "t", "pt"] {
        let mut row = Vec::new();
        for i in 0..n {
            row.push(eval.var(Ident::new(var), i)?.to_string());
        }
        table.push((var.to_owned(), row));
    }

    println!("The semantic table of §2.2 (absent values print as '.'):\n");
    for (name, row) in &table {
        print!("{name:>6}");
        for v in row {
            print!(" {v:>4}");
        }
        println!();
    }

    // And the correctness statement holds on this prefix.
    velus::validate(&compiled, &inputs, n)?;
    println!("\nvalidated: dataflow ≡ memory semantics ≡ Obc ≡ Clight trace");
    Ok(())
}
