//! Compares step-function WCET estimates across compilation schemes for
//! one benchmark — a single row of the reproduced Fig. 12, with the
//! intermediate programs' sizes to show *why* the numbers differ.
//!
//! ```text
//! cargo run --example wcet_compare [benchmark-name]
//! ```

use velus_baselines::{heptagon_obc, lustre_v6_obc};
use velus_obc::ast::ObcProgram;
use velus_ops::ClightOps;
use velus_wcet::{wcet_step, CostModel};

fn obc_size(p: &ObcProgram<ClightOps>) -> usize {
    p.classes
        .iter()
        .flat_map(|c| &c.methods)
        .map(|m| m.body.size())
        .sum()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "tracker".to_owned());
    let source = std::fs::read_to_string(velus_repro::benchmark_path(&name))?;
    let compiled = velus::compile(&source, Some(&name))?;
    let root = compiled.root;

    let hept = heptagon_obc::<ClightOps>(&compiled.nlustre)?;
    let lus6 = lustre_v6_obc::<ClightOps>(&compiled.nlustre)?;
    let hept_cl = velus_clight::generate::generate(&hept, root)?;
    let lus6_cl = velus_clight::generate::generate(&lus6, root)?;

    println!("benchmark {name}: Obc statement counts");
    println!("  velus (fused):   {}", obc_size(&compiled.obc_fused));
    println!("  heptagon-style:  {}", obc_size(&hept));
    println!("  lustre-v6-style: {}", obc_size(&lus6));
    println!();
    println!("WCET of {root}$step (cycles):");
    println!(
        "  velus + CompCert-model:     {}",
        wcet_step(&compiled.clight, root, CostModel::CompCert)?
    );
    for (label, prog) in [("heptagon", &hept_cl), ("lustre-v6", &lus6_cl)] {
        for model in [CostModel::CompCert, CostModel::Gcc, CostModel::GccInline] {
            println!(
                "  {label:<10} + {model:?}: {}",
                wcet_step(prog, root, model)?
            );
        }
    }
    Ok(())
}
